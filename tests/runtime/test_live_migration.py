"""Live key migration under load: no state loss, same results as unmigrated.

The satellite acceptance: a key moved between worker processes mid-stream must
lose no windowed state, and the windowed-aggregate outcome must equal that of
a run where the key never moved.
"""

from types import SimpleNamespace

import pytest

from repro.baselines.base import Partitioner
from repro.core.migration import KeyMove, MigrationPlan
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.runtime.local import LocalRuntime, RuntimeConfig


class ForcedMovePartitioner(Partitioner):
    """Modulo routing that migrates ``move_key`` to ``target`` after ``move_at``.

    A minimal rebalancing strategy: it exercises the live pause → ship →
    install → resume machinery deterministically, independent of any planner.
    """

    name = "forced-move"

    def __init__(self, num_tasks: int, move_key, move_at: int, target: int) -> None:
        super().__init__(num_tasks)
        self.move_key = move_key
        self.move_at = int(move_at)
        self.target = int(target)
        self.moved = False

    def route(self, key) -> int:
        if self.moved and key == self.move_key:
            return self.target
        return key % self.num_tasks

    def on_interval_end(self, stats):
        if self.moved or stats.interval != self.move_at:
            return None
        source = self.move_key % self.num_tasks
        self.moved = True
        self.invalidate_route_cache()
        plan = MigrationPlan([KeyMove(key=self.move_key, source=source, target=self.target)])
        return SimpleNamespace(
            migration_plan=plan,
            generation_time=0.0,
            migration_fraction=1.0,
            table_size=1,
        )


def _stream(intervals=4, keys=8, repeats=30):
    """Every key appears ``repeats`` times per interval, value 1.0."""
    return [
        [(key, 1.0) for key in range(keys) for _ in range(repeats)]
        for _ in range(intervals)
    ]


def _run(partitioner, parallelism, stream):
    runtime = LocalRuntime(
        WindowedAggregate(window=16),  # wider than the run: nothing expires
        partitioner,
        RuntimeConfig(
            parallelism=parallelism,
            batch_size=32,
            queue_capacity=4,
            service_time_us=20.0,
            collect_final_state=True,
        ),
    )
    return runtime.run(stream)


MOVE_KEY = 0  # routed to task 0 by modulo, migrated to task 1 mid-stream


class TestLiveMigrationUnderLoad:
    @pytest.fixture(scope="class")
    def migrated(self):
        partitioner = ForcedMovePartitioner(2, MOVE_KEY, move_at=1, target=1)
        return _run(partitioner, 2, _stream())

    def test_migration_actually_happened(self, migrated):
        assert len(migrated.migrations) == 1
        report = migrated.migrations[0]
        assert report.interval == 1
        assert report.moved_keys == 1
        assert report.moved_state > 0
        assert report.pause_seconds > 0
        assert report.source_workers == [0]
        assert report.target_workers == [1]
        assert migrated.final_reports[0].migrations_out == 1
        assert migrated.final_reports[1].migrations_in == 1

    def test_no_tuple_lost(self, migrated):
        total = 4 * 8 * 30
        assert migrated.tuples_processed == total
        assert migrated.tuples_shed == 0

    def test_per_interval_attribution_stays_exact(self, migrated):
        # Tuples buffered during the hand-off are released before their
        # interval's marker, so the per-interval rows still add up.
        processed = migrated.metrics.series("processed_tuples")
        assert sum(processed) == migrated.tuples_processed
        assert all(count == 8 * 30 for count in processed)

    def test_moved_key_keeps_full_windowed_state(self, migrated):
        # The aggregate sums value=1.0 per tuple: each interval contributes 30.
        payloads = migrated.final_state[MOVE_KEY]
        assert payloads == [30.0, 30.0, 30.0, 30.0]

    def test_moved_key_state_lives_on_target_worker(self):
        partitioner = ForcedMovePartitioner(2, MOVE_KEY, move_at=1, target=1)
        result = _run(partitioner, 2, _stream(intervals=3))
        # Worker 1 holds the moved key plus the odd keys; worker 0 lost it.
        worker0_keys = 8 // 2 - 1  # even keys minus the migrated one
        assert result.final_reports[0].state_keys == worker0_keys
        assert result.final_reports[1].state_keys == 8 - worker0_keys

    def test_same_result_as_unmigrated_run(self, migrated):
        class StaticModulo(Partitioner):
            def route(self, key):
                return key % self.num_tasks

        baseline = _run(StaticModulo(2), 2, _stream())
        assert baseline.migrations == []
        assert migrated.final_state == baseline.final_state

    def test_latency_of_paused_tuples_includes_the_pause(self, migrated):
        # Buffered tuples are stamped before the pause, so the merged
        # histogram's max must be at least the measured pause.
        pause_us = migrated.migrations[0].pause_seconds * 1e6
        assert migrated.latency.max_us >= pause_us
