"""End-to-end tests of the multi-process LocalRuntime (small streams)."""

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.operators.wordcount import WordCountOperator
from repro.runtime.local import LocalRuntime, RuntimeConfig


def _stream(intervals=2, keys=40, repeats=25):
    """Deterministic stream: every key appears ``repeats`` times per interval."""
    return [
        [(key, None) for key in range(keys) for _ in range(repeats)]
        for _ in range(intervals)
    ]


def _run(stream, parallelism=2, **config):
    defaults = dict(
        parallelism=parallelism,
        batch_size=64,
        queue_capacity=4,
        service_time_us=5.0,
    )
    defaults.update(config)
    runtime = LocalRuntime(
        WordCountOperator(emit_updates=False),
        HashPartitioner(parallelism, seed=0),
        RuntimeConfig(**defaults),
        label="hash",
    )
    return runtime.run(stream)


class TestConservation:
    def test_every_offered_tuple_is_processed(self):
        stream = _stream(intervals=2, keys=40, repeats=25)
        total = sum(len(interval) for interval in stream)
        result = _run(stream)
        assert result.tuples_offered == total
        assert result.tuples_processed == total
        assert result.tuples_shed == 0
        assert result.latency.total == total

    def test_per_interval_reports_sum_to_total(self):
        stream = _stream(intervals=3, keys=30, repeats=20)
        result = _run(stream)
        processed = result.metrics.series("processed_tuples")
        assert len(processed) == 3
        assert sum(processed) == result.tuples_processed
        # FIFO markers make the per-interval accounting exact.
        assert all(count == len(stream[0]) for count in processed)

    def test_worker_counts_match_dispatch(self):
        result = _run(_stream())
        per_worker = {
            worker_id: report.processed
            for worker_id, report in result.final_reports.items()
        }
        assert sum(per_worker.values()) == result.tuples_processed
        assert set(per_worker) == {0, 1}


class TestMeasurements:
    def test_throughput_and_latency_are_positive(self):
        result = _run(_stream())
        assert result.wall_seconds > 0
        assert result.tuples_per_second > 0
        assert result.latency.p50_us > 0
        assert result.latency.p99_us >= result.latency.p50_us
        summary = result.summary()
        assert summary["tuples_per_second"] == pytest.approx(
            result.tuples_per_second
        )
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"]

    def test_metrics_records_per_task_load(self):
        result = _run(_stream())
        for record in result.metrics:
            assert set(record.per_task_load) == {0, 1}
            assert sum(record.per_task_load.values()) == pytest.approx(
                record.offered_tuples
            )
            assert record.num_tasks == 2
            assert record.skewness >= 1.0

    def test_final_state_collection(self):
        result = _run(_stream(intervals=1, keys=10, repeats=5), collect_final_state=True)
        # Word count keeps one counter per key; every key appeared 5 times.
        assert sum(payload[-1] for payload in result.final_state.values()) == 50
        assert set(result.final_state) == set(range(10))


class TestShedding:
    def test_overload_with_shed_timeout_drops_and_records(self):
        # One slow worker (1 ms/tuple), tiny queues, and a dispatch timeout:
        # the router must shed batches and charge them to the task.
        stream = _stream(intervals=1, keys=30, repeats=40)
        result = _run(
            stream,
            batch_size=32,
            queue_capacity=1,
            service_time_us=1000.0,
            shed_timeout_seconds=0.002,
        )
        assert result.tuples_shed > 0
        assert result.tuples_processed == result.tuples_offered - result.tuples_shed
        assert result.shed_by_task
        assert sum(result.shed_by_task.values()) == pytest.approx(result.tuples_shed)
        # The shed totals are observable per interval in the metrics too.
        assert result.metrics.total_shed_tuples == pytest.approx(result.tuples_shed)
        assert result.metrics.shed_by_task() == result.shed_by_task


class TestValidation:
    def test_parallelism_must_match_partitioner(self):
        with pytest.raises(ValueError):
            LocalRuntime(
                WordCountOperator(),
                HashPartitioner(3),
                RuntimeConfig(parallelism=2),
            )

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RuntimeConfig(parallelism=0)
        with pytest.raises(ValueError):
            RuntimeConfig(batch_size=0)
        with pytest.raises(ValueError):
            RuntimeConfig(service_time_us=-1.0)
