"""Multi-stage process topologies: chaining, re-keying, failure handling."""

import time

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.engine.operator import OperatorLogic
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.operators.wordcount import WordCountOperator
from repro.runtime.topology import (
    RuntimeConfig,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
)


def _bucket(key):
    """Module-level key mapper (picklable under any start method)."""
    return key % 5


def _stream(intervals=3, keys=40, repeats=25):
    return [
        [(key, None) for key in range(keys) for _ in range(repeats)]
        for _ in range(intervals)
    ]


def _config(**overrides):
    defaults = dict(
        parallelism=2,
        batch_size=64,
        queue_capacity=4,
        service_time_us=5.0,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


def _two_stage_spec():
    return TopologySpec(
        "two-stage",
        [
            StageSpec(
                name="counter",
                logic=WordCountOperator(emit_updates=True),
                partitioner=HashPartitioner(2, seed=0),
                key_mapper=_bucket,
            ),
            StageSpec(
                name="agg",
                logic=WindowedAggregate(window=16),
                partitioner=HashPartitioner(2, seed=1),
            ),
        ],
    )


class TestChainedExecution:
    @pytest.fixture(scope="class")
    def outcome(self):
        runtime = TopologyRuntime(
            _two_stage_spec(), _config(collect_final_state=True)
        )
        return runtime.run(_stream())

    def test_every_stage_processes_every_tuple(self, outcome):
        total = 3 * 40 * 25
        assert outcome.tuples_offered == total
        for stage in outcome.stages.values():
            # Selectivity 1 everywhere: counter emits one update per input.
            assert stage.tuples_offered == total
            assert stage.tuples_processed == total
            assert stage.latency.total == total

    def test_stage_order_and_names(self, outcome):
        assert outcome.stage_names == ["counter", "agg"]
        assert outcome.first.label == "counter"
        assert outcome.final.label == "agg"
        assert outcome.tuples_processed == outcome.final.tuples_processed

    def test_key_mapper_rekeys_between_stages(self, outcome):
        # The counter's output is re-keyed modulo 5, so the aggregation
        # stage's state lives entirely in the mapped key domain.
        assert set(outcome.final.final_state) == set(range(5))
        assert set(outcome.first.final_state) == set(range(40))

    def test_end_to_end_latency_measured_at_final_stage_only(self, outcome):
        assert outcome.first.e2e_latency.total == 0
        assert outcome.final.e2e_latency.total == 3 * 40 * 25
        # End-to-end spans both stages, so it dominates the final stage's
        # own dispatch-to-completion latency.
        assert (
            outcome.e2e_latency.mean_us
            >= outcome.final.latency.mean_us
        )

    def test_per_stage_interval_accounting(self, outcome):
        for stage in outcome.stages.values():
            processed = stage.metrics.series("processed_tuples")
            assert len(processed) == 3
            assert sum(processed) == stage.tuples_processed

    def test_chain_summary_has_bench_row_shape(self, outcome):
        summary = outcome.summary()
        for key in (
            "tuples",
            "wall_seconds",
            "tuples_per_second",
            "latency_p50_ms",
            "latency_p99_ms",
            "rebalances",
            "shed_tuples",
        ):
            assert key in summary
        assert summary["tuples"] == 3 * 40 * 25
        assert summary["tuples_per_second"] > 0


class TestSpecValidation:
    def test_rejects_empty_topology(self):
        with pytest.raises(ValueError):
            TopologySpec("empty", [])

    def test_rejects_duplicate_stage_names(self):
        stage = StageSpec(
            name="same",
            logic=WordCountOperator(),
            partitioner=HashPartitioner(2),
        )
        with pytest.raises(ValueError, match="duplicate"):
            TopologySpec("dupes", [stage, stage])

    def test_rejects_empty_stage_name(self):
        with pytest.raises(ValueError):
            StageSpec(
                name="", logic=WordCountOperator(), partitioner=HashPartitioner(2)
            )

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RuntimeConfig(offered_rate=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(calibration_headroom=0.0)


def _crashing_source(*args, **kwargs):
    """Source entry point that dies immediately (module-level: picklable)."""
    raise RuntimeError("source boom")


class _PoisonOperator(OperatorLogic):
    """Raises on one key — simulates an operator bug in a worker process."""

    name = "poison"
    stateful = True

    def process(self, tup, state, task_id):
        if tup.key == 13:
            raise ValueError("poisoned tuple")
        return []


class TestFailurePaths:
    def test_worker_crash_surfaces_clean_error_without_hanging(self):
        spec = TopologySpec(
            "crash",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(emit_updates=True),
                    partitioner=HashPartitioner(2, seed=0),
                ),
                StageSpec(
                    name="poison",
                    logic=_PoisonOperator(),
                    partitioner=HashPartitioner(2, seed=1),
                ),
            ],
        )
        runtime = TopologyRuntime(
            spec, _config(queue_capacity=2, join_timeout_seconds=30.0)
        )
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="poison"):
            runtime.run(_stream(intervals=4))
        # The whole topology (source, both stages) must shut down promptly:
        # no hang on a queue nobody drains anymore.
        assert time.monotonic() - started < 25.0

    def test_source_crash_surfaces_instead_of_hanging(self, monkeypatch):
        # A source process that dies before its end-of-stream mark must trip
        # the stage-0 watchdog; without it the ingress poll waits forever.
        import repro.runtime.topology as topology_module

        monkeypatch.setattr(topology_module, "source_main", _crashing_source)
        spec = TopologySpec(
            "dead-source",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(emit_updates=False),
                    partitioner=HashPartitioner(2, seed=0),
                )
            ],
        )
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="source process died"):
            TopologyRuntime(
                spec, _config(join_timeout_seconds=30.0)
            ).run(_stream(intervals=1))
        assert time.monotonic() - started < 25.0

    def test_single_stage_crash_reports_worker_traceback(self):
        spec = TopologySpec(
            "solo-crash",
            [
                StageSpec(
                    name="poison",
                    logic=_PoisonOperator(),
                    partitioner=HashPartitioner(2, seed=0),
                )
            ],
        )
        with pytest.raises(RuntimeError, match="poisoned tuple"):
            TopologyRuntime(spec, _config(join_timeout_seconds=30.0)).run(
                _stream(intervals=2)
            )


class TestOpenLoopSource:
    def test_paced_source_slows_the_run_to_the_offered_rate(self):
        total = 3 * 40 * 25  # 3000 tuples
        rate = 4000.0
        spec = TopologySpec(
            "paced",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(emit_updates=False),
                    partitioner=HashPartitioner(2, seed=0),
                )
            ],
        )
        outcome = TopologyRuntime(spec, _config(offered_rate=rate)).run(_stream())
        stage = outcome.stages["counter"]
        assert stage.tuples_processed == total
        # Open loop: the wall clock is set by the offered rate, not the drain.
        assert outcome.wall_seconds >= (total / rate) * 0.8
        # Below saturation the measured end-to-end latency stays far under
        # the closed-loop queue-bound latency (which is ~queue-depth × pace).
        assert stage.e2e_latency.p50_us < 0.25e6


class TestBackpressureChaining:
    def test_slow_final_stage_throttles_the_whole_chain(self):
        # The aggregation is paced ~10× slower than stage 0 can produce;
        # bounded queues must stall the chain down to the sink's rate rather
        # than buffer unboundedly (offered == processed everywhere, and the
        # wall clock is set by the slow stage's service demand).
        spec = _two_stage_spec()
        total = 2 * 40 * 25
        service_us = 400.0
        outcome = TopologyRuntime(
            spec, _config(service_time_us=service_us, queue_capacity=2)
        ).run(_stream(intervals=2))
        for stage in outcome.stages.values():
            assert stage.tuples_processed == total
        # Each agg worker owes ~(total/2)×service of sleep; the chain cannot
        # finish faster than that floor.
        floor_seconds = (total / 2) * service_us / 1e6
        assert outcome.wall_seconds >= floor_seconds * 0.8
