"""Resilience subsystem: checkpoint round-trips, supervised recovery, elasticity.

The equality tests compare an injected run against an uninjected base run on
the *same* stream.  Final tuple counts are deterministic everywhere; per-key
final state is compared on the **counter** stage only — the second (windowed
agg) stage's retained payloads depend on upstream worker interleaving and
differ even between two clean runs.
"""

import os
import random
import tempfile

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.operators.wordcount import WordCountOperator
from repro.runtime.resilience.checkpoint import (
    CheckpointCorrupt,
    CheckpointStore,
    atomic_write_bytes,
    atomic_write_json,
)
from repro.runtime.resilience.scaling import ScaleDirective, parse_scale_spec
from repro.runtime.resilience.supervisor import KillDirective, parse_kill_spec
from repro.runtime.topology import (
    RuntimeConfig,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
)


def _bucket(key):
    """Module-level key mapper (picklable under any start method)."""
    return key % 5


def _stream(intervals=5, keys=40, repeats=25):
    return [
        [(key, None) for key in range(keys) for _ in range(repeats)]
        for _ in range(intervals)
    ]


def _config(**overrides):
    defaults = dict(
        parallelism=2,
        batch_size=64,
        queue_capacity=4,
        service_time_us=5.0,
        collect_final_state=True,
        sanitize=True,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


def _two_stage_spec():
    return TopologySpec(
        "two-stage",
        [
            StageSpec(
                name="counter",
                logic=WordCountOperator(emit_updates=True),
                partitioner=HashPartitioner(2, seed=0),
                key_mapper=_bucket,
            ),
            StageSpec(
                name="agg",
                logic=WindowedAggregate(window=16),
                partitioner=HashPartitioner(2, seed=1),
            ),
        ],
    )


@pytest.fixture(scope="module")
def base_run():
    """The uninjected reference run every injected run must reproduce."""
    run = TopologyRuntime(_two_stage_spec(), _config()).run(_stream())
    assert run.sanitizer["violations"] == []
    return run


def _assert_matches_base(run, base):
    assert run.sanitizer["violations"] == []
    assert run.final.tuples_processed == base.final.tuples_processed
    for stage in ("counter", "agg"):
        assert (
            run.stages[stage].tuples_processed
            == base.stages[stage].tuples_processed
        )
    # Per-key equality on the deterministic stage (see module docstring).
    assert run.stages["counter"].final_state == base.stages["counter"].final_state
    # The sanitizer's per-producer watermark check fired and stayed clean —
    # interval marks never regressed through the injection.
    assert run.sanitizer["checks"].get("watermark", 0) > 0


# -- checkpoint store --------------------------------------------------------------


class TestCheckpointRoundTrip:
    def test_round_trip_property(self, tmp_path):
        """save → latest is the identity for arbitrary entries/counters."""
        rng = random.Random(7)
        store = CheckpointStore(str(tmp_path), "stage-a")
        for round_index in range(10):
            task = rng.randrange(4)
            interval = round_index
            entries = [
                (
                    rng.randrange(1000),
                    [rng.random() for _ in range(rng.randrange(1, 6))],
                )
                for _ in range(rng.randrange(0, 20))
            ]
            counters = {
                "processed": float(rng.randrange(10_000)),
                "emit_seq": float(rng.randrange(500)),
                "watermark": float(interval),
            }
            store.save(task, interval, entries, counters)
            loaded = store.latest(task)
            assert loaded is not None
            assert loaded.task == task
            assert loaded.interval == interval
            assert loaded.entries == entries
            assert loaded.counters == counters

    def test_latest_returns_none_without_checkpoint(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "stage-a")
        assert store.latest(0) is None

    def test_corruption_is_detected(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "stage-a")
        record = store.save(0, 3, [(1, ["x"])], {"processed": 1.0})
        with open(record.path, "rb") as handle:
            blob = handle.read()
        atomic_write_bytes(record.path, blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        with pytest.raises(CheckpointCorrupt):
            store.latest(0)

    def test_save_keeps_one_blob_per_task(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "stage-a")
        for interval in range(3):
            store.save(0, interval, [(interval, ["v"])], {})
        blobs = [name for name in os.listdir(store.root) if name.endswith(".ckpt")]
        assert len(blobs) == 1
        assert store.latest(0).interval == 2
        assert store.checkpoint_count == 3
        assert store.bytes_written > 0

    def test_atomic_writes_leave_no_tmp_files(self, tmp_path):
        path = str(tmp_path / "checkpoint.bin")
        atomic_write_bytes(path, b"payload")
        atomic_write_json(str(tmp_path / "manifest.json"), {"tasks": {}})
        names = os.listdir(str(tmp_path))
        assert sorted(names) == ["checkpoint.bin", "manifest.json"]
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"


# -- directive parsing -------------------------------------------------------------


class TestDirectiveParsing:
    def test_kill_spec_round_trip(self):
        directive = parse_kill_spec("revenue-agg:0@3")
        assert directive == KillDirective(stage="revenue-agg", task=0, interval=3)
        assert parse_kill_spec(directive.spec()) == directive

    @pytest.mark.parametrize("spec", ["", "agg", "agg:x@1", "agg:1", "a:b:c@1"])
    def test_bad_kill_spec_raises(self, spec):
        with pytest.raises(ValueError):
            parse_kill_spec(spec)

    def test_scale_spec_round_trip(self):
        directive = parse_scale_spec("2:order-join:+1")
        assert directive == ScaleDirective(interval=2, stage="order-join", delta=1)
        assert parse_scale_spec("3:agg:-2").delta == -2
        assert parse_scale_spec(directive.spec()) == directive

    @pytest.mark.parametrize("spec", ["", "order-join:+1", "2:agg:0", "2:agg:x"])
    def test_bad_scale_spec_raises(self, spec):
        with pytest.raises(ValueError):
            parse_scale_spec(spec)

    def test_env_var_supplies_kill_directive(self, monkeypatch):
        monkeypatch.setenv("REPRO_KILL", "counter:1@2")
        runtime = TopologyRuntime(_two_stage_spec(), _config())
        kill, scale = runtime._directives()
        assert kill == KillDirective(stage="counter", task=1, interval=2)
        assert scale is None

    def test_unknown_stage_in_directive_raises(self):
        runtime = TopologyRuntime(
            _two_stage_spec(), _config(kill_worker=("nope", 0, 1))
        )
        with pytest.raises(ValueError, match="unknown stage"):
            runtime._directives()


# -- supervised recovery -----------------------------------------------------------


class TestSupervisedRecovery:
    @pytest.mark.parametrize("kill", [("counter", 1, 1), ("agg", 0, 2)])
    def test_crash_at_interval_matches_uninjected_run(self, base_run, kill):
        """A SIGKILLed worker is respawned, restored and replayed losslessly."""
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            run = TopologyRuntime(
                _two_stage_spec(),
                _config(checkpoint_dir=checkpoint_dir, kill_worker=kill),
            ).run(_stream())
        _assert_matches_base(run, base_run)
        resilience = run.resilience
        assert len(resilience["incidents"]) == 1
        incident = resilience["incidents"][0]
        assert incident["stage"] == kill[0]
        assert incident["task"] == kill[1]
        assert incident["recovery_pause_seconds"] > 0
        assert incident["restore_seconds"] >= 0
        # The kill landed after at least one boundary checkpoint, so the
        # restore really exercised the durable path.
        assert incident["checkpoint_interval"] >= 0
        assert incident["restored_keys"] > 0
        assert resilience["checkpoints"]["bytes_written"] > 0


# -- elastic scaling ---------------------------------------------------------------


class TestElasticScaling:
    @pytest.mark.parametrize(
        "scale_at", [(2, "counter", 1), (3, "agg", -1)]
    )
    def test_resize_preserves_state_and_counts(self, base_run, scale_at):
        """Scale-out and scale-in re-route keys without losing per-key state."""
        run = TopologyRuntime(
            _two_stage_spec(), _config(scale_at=scale_at)
        ).run(_stream())
        _assert_matches_base(run, base_run)
        resilience = run.resilience
        assert resilience is not None and len(resilience["scale_events"]) == 1
        event = resilience["scale_events"][0]
        assert event["stage"] == scale_at[1]
        assert event["interval"] == scale_at[0]
        assert event["to_tasks"] == event["from_tasks"] + scale_at[2]
        assert event["moved_keys"] > 0
        assert event["rebalance_pause_seconds"] > 0

    def test_kill_after_scale_out_recovers_new_task(self, base_run):
        """A task created by an elastic resize is itself supervised."""
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            run = TopologyRuntime(
                _two_stage_spec(),
                _config(
                    checkpoint_dir=checkpoint_dir,
                    scale_at=(1, "counter", 1),
                    kill_worker=("counter", 2, 3),
                ),
            ).run(_stream())
        _assert_matches_base(run, base_run)
        resilience = run.resilience
        assert len(resilience["scale_events"]) == 1
        assert len(resilience["incidents"]) == 1
        assert resilience["incidents"][0]["task"] == 2
