"""Abort-aware queue operations and the wedged-coordinator regression.

Before the abort-aware rework, a worker whose coordinator crashed sat
forever in a bare ``in_queue.get()`` — the run hung instead of failing.
These tests pin the fix: the sanctioned wrappers unwind with
:class:`QueueAborted`, and a full ``worker_main`` stuck on an empty inbound
queue exits promptly once its abort predicate trips.
"""

import queue
import threading
import time

import pytest

from repro.operators.wordcount import WordCountOperator
from repro.runtime.queues import (
    POLL_SECONDS,
    QueueAborted,
    abortable_get,
    abortable_put,
    parent_process_died,
)
from repro.runtime.worker import worker_main


class TestAbortableGet:
    def test_returns_available_item_immediately(self):
        inbound = queue.Queue()
        inbound.put("payload")
        assert abortable_get(inbound, lambda: False) == "payload"

    def test_empty_queue_with_tripped_abort_raises(self):
        start = time.monotonic()
        with pytest.raises(QueueAborted):
            abortable_get(queue.Queue(), lambda: True, poll_seconds=0.01)
        assert time.monotonic() - start < 1.0

    def test_item_arriving_during_poll_wins_over_abort(self):
        # The predicate is only consulted on Empty: an item that lands
        # before the poll expires is delivered even if abort is pending.
        inbound = queue.Queue()
        inbound.put("late")
        assert abortable_get(inbound, lambda: True) == "late"


class TestAbortablePut:
    def test_puts_when_capacity_available(self):
        outbound = queue.Queue(maxsize=1)
        abortable_put(outbound, "item", lambda: False)
        assert outbound.get_nowait() == "item"

    def test_full_queue_with_tripped_abort_raises(self):
        outbound = queue.Queue(maxsize=1)
        outbound.put("blocker")
        start = time.monotonic()
        with pytest.raises(QueueAborted):
            abortable_put(outbound, "stuck", lambda: True, poll_seconds=0.01)
        assert time.monotonic() - start < 1.0

    def test_full_queue_unblocks_when_drained(self):
        outbound = queue.Queue(maxsize=1)
        outbound.put("blocker")
        drainer = threading.Timer(0.05, outbound.get)
        drainer.start()
        try:
            abortable_put(outbound, "item", lambda: False, poll_seconds=0.01)
        finally:
            drainer.join()
        assert outbound.get_nowait() == "item"


def test_parent_process_died_is_false_in_the_main_process():
    # The test process was launched by pytest, not via multiprocessing, so
    # it has no multiprocessing parent at all: the predicate must not
    # misfire and kill healthy workers.
    assert parent_process_died() is False


class TestWedgedCoordinatorRegression:
    def test_worker_stuck_on_empty_inbound_queue_exits_on_abort(self):
        # The pre-fix hang: coordinator wedges before sending anything, the
        # worker blocks in in_queue.get() forever.  With the abort-aware
        # loop the worker must unwind within a few poll periods.
        abort = threading.Event()
        worker = threading.Thread(
            target=worker_main,
            kwargs=dict(
                worker_id=0,
                logic=WordCountOperator(),
                in_queue=queue.Queue(),
                out_queue=queue.Queue(),
                service_time_us=0.0,
                should_abort=abort.is_set,
            ),
            daemon=True,
        )
        worker.start()
        time.sleep(POLL_SECONDS)  # let it reach the blocking get
        assert worker.is_alive(), "worker should be waiting for input"
        abort.set()
        worker.join(timeout=20 * POLL_SECONDS)
        assert not worker.is_alive(), "worker wedged on a dead coordinator"

    def test_worker_blocked_on_full_out_queue_exits_on_abort(self):
        # Symmetric hazard: the downstream stage died, the egress queue
        # stays full, and the worker blocks in put().  Feed one batch into
        # a worker whose out_queue has zero spare capacity.
        from repro.runtime.messages import EndOfStream, TupleBatch

        abort = threading.Event()
        in_queue = queue.Queue()
        out_queue = queue.Queue(maxsize=1)
        out_queue.put("blocker")  # nobody will ever drain this
        in_queue.put(
            TupleBatch(interval=0, sent_at=0.0, keys=[1, 2], values=[None, None])
        )
        in_queue.put(EndOfStream())
        worker = threading.Thread(
            target=worker_main,
            kwargs=dict(
                worker_id=0,
                logic=WordCountOperator(),
                in_queue=in_queue,
                out_queue=out_queue,
                service_time_us=0.0,
                should_abort=abort.is_set,
            ),
            daemon=True,
        )
        worker.start()
        time.sleep(2 * POLL_SECONDS)
        assert worker.is_alive(), "worker should be blocked on the full queue"
        abort.set()
        worker.join(timeout=20 * POLL_SECONDS)
        assert not worker.is_alive(), "worker wedged on a full egress queue"
