"""Fluid-simulator vs process-runtime parity on strategy ordering.

The two engines measure different things (modelled load vs wall clock), but
for a fig07-style skew sweep they must agree on the *ordering* of strategies:
under heavy Zipf skew the mixed controller loses less throughput than static
hashing in the fluid model, and it must also sustain higher measured
throughput on the real worker processes; under near-uniform load the two
strategies are equivalent in both engines.
"""

import numpy as np
import pytest

from repro.core.strategy import get_strategy
from repro.experiments.harness import run_simulation
from repro.operators.wordcount import WordCountOperator
from repro.runtime.bench import _expand_snapshots
from repro.runtime.local import LocalRuntime, RuntimeConfig
from repro.workloads.zipf import ZipfWorkload

PARALLELISM = 4
NUM_KEYS = 500
TUPLES = 8_000
INTERVALS = 4
STRATEGIES = ("storm", "mixed")


def _snapshots(skew):
    return ZipfWorkload(
        num_keys=NUM_KEYS,
        skew=skew,
        tuples_per_interval=TUPLES,
        fluctuation=0.1,
        num_tasks=PARALLELISM,
        intervals=INTERVALS,
        seed=3,
    ).take(INTERVALS)


def _fluid_loss(strategy, snapshots):
    """Throughput loss fraction in the fluid simulator (capacity ~ saturation)."""
    collector = run_simulation(
        strategy,
        snapshots,
        WordCountOperator(emit_updates=False),
        num_tasks=PARALLELISM,
        theta_max=0.08,
        max_table_size=200,
        capacity_factor=1.05,
        seed=0,
    )
    offered = sum(collector.series("offered_tuples"))
    processed = sum(collector.series("processed_tuples"))
    return 1.0 - processed / offered


def _runtime_throughput(strategy, snapshots):
    """Measured tuples/sec on live worker processes (paced service)."""
    partitioner = get_strategy(strategy).build(
        PARALLELISM, theta_max=0.08, max_table_size=200, window=1, seed=0
    )
    runtime = LocalRuntime(
        WordCountOperator(emit_updates=False),
        partitioner,
        RuntimeConfig(
            parallelism=PARALLELISM,
            batch_size=128,
            queue_capacity=2,
            service_time_us=40.0,
        ),
        label=strategy,
    )
    result = runtime.run(_expand_snapshots(snapshots, np.random.default_rng(7)))
    assert result.tuples_processed == result.tuples_offered
    return result.tuples_per_second


class TestSkewSweepOrderingParity:
    @pytest.fixture(scope="class")
    def measurements(self):
        rows = {}
        for skew in (0.1, 1.2):
            snapshots = _snapshots(skew)
            rows[skew] = {
                name: (
                    _fluid_loss(name, snapshots),
                    _runtime_throughput(name, snapshots),
                )
                for name in STRATEGIES
            }
        return rows

    def test_fluid_prefers_mixed_under_heavy_skew(self, measurements):
        losses = {name: loss for name, (loss, _) in measurements[1.2].items()}
        assert losses["storm"] > 0.05  # hashing visibly saturates a task
        assert losses["mixed"] < losses["storm"]

    def test_runtime_ordering_matches_fluid_under_heavy_skew(self, measurements):
        skewed = measurements[1.2]
        by_fluid = sorted(STRATEGIES, key=lambda name: skewed[name][0])
        by_runtime = sorted(STRATEGIES, key=lambda name: -skewed[name][1])
        assert by_fluid == by_runtime == ["mixed", "storm"]
        # The measured gap must be material, not a timing accident.
        assert skewed["mixed"][1] > skewed["storm"][1] * 1.05

    def test_both_engines_see_no_material_gap_under_uniform_load(self, measurements):
        uniform = measurements[0.1]
        assert uniform["storm"][0] == pytest.approx(0.0, abs=0.02)
        assert uniform["mixed"][0] == pytest.approx(0.0, abs=0.02)
        fast = max(throughput for _, throughput in uniform.values())
        slow = min(throughput for _, throughput in uniform.values())
        assert slow > fast * 0.75

    def test_runtime_throughput_degrades_with_skew_for_hashing(self, measurements):
        # The fig07 shape, measured: static hashing slows down as z grows.
        assert measurements[1.2]["storm"][1] < measurements[0.1]["storm"][1] * 0.9
