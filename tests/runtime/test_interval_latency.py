"""Per-interval latency histogram deltas (Fig. 13(b) from measured data)."""

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.operators.wordcount import WordCountOperator
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.local import LocalRuntime, RuntimeConfig


def _stream(intervals=4, keys=30, repeats=20):
    return [
        [(key, None) for key in range(keys) for _ in range(repeats)]
        for _ in range(intervals)
    ]


@pytest.fixture(scope="module")
def result():
    runtime = LocalRuntime(
        WordCountOperator(emit_updates=False),
        HashPartitioner(2, seed=0),
        RuntimeConfig(
            parallelism=2, batch_size=64, queue_capacity=4, service_time_us=10.0
        ),
    )
    return runtime.run(_stream())


class TestIntervalHistogramDeltas:
    def test_one_delta_histogram_per_interval(self, result):
        assert sorted(result.interval_latency) == [0, 1, 2, 3]
        for histogram in result.interval_latency.values():
            assert isinstance(histogram, LatencyHistogram)
            assert histogram.total == 30 * 20

    def test_deltas_sum_to_the_lifetime_histogram(self, result):
        merged = LatencyHistogram()
        for histogram in result.interval_latency.values():
            merged.merge(histogram)
        assert merged.total == result.latency.total
        assert merged.counts == result.latency.counts
        assert merged.sum_us == pytest.approx(result.latency.sum_us)

    def test_interval_metrics_carry_measured_percentiles(self, result):
        for record in result.metrics:
            assert record.latency_p99_ms >= record.latency_p50_ms > 0
            histogram = result.interval_latency[record.interval]
            assert record.latency_p50_ms == pytest.approx(
                histogram.p50_us / 1000.0
            )
            assert record.latency_p99_ms == pytest.approx(
                histogram.p99_us / 1000.0
            )

    def test_latency_over_time_series_is_plottable(self, result):
        # The Fig. 13(b) view: one measured p99 value per interval.
        series = result.metrics.series("latency_p99_ms")
        assert len(series) == 4
        assert all(value > 0 for value in series)
