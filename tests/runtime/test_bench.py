"""RuntimeSpec serialisation, run_bench persistence and the `repro bench` CLI."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.config import get_scale
from repro.experiments.store import ResultsStore
from repro.runtime.bench import (
    BENCH_DEFAULT_OVERRIDES,
    BENCH_TOPOLOGY_WORKLOADS,
    BENCH_WORKLOADS,
    Q5_CHAIN_STAGES,
    RuntimeSpec,
    run_bench,
)
from repro.runtime.topology import TopologyResult

#: A bench configuration small enough for tier-1 (two strategies, ~20k tuples).
TINY = dict(
    scale="tiny",
    overrides={"tuples_per_interval": 5_000, "sim_intervals": 2, "num_keys": 300},
    parallelism=2,
    service_time_us=10.0,
)


def _load_validate_bench():
    """Import scripts/validate_bench.py (not a package) by file path."""
    path = Path(__file__).resolve().parents[2] / "scripts" / "validate_bench.py"
    spec = importlib.util.spec_from_file_location("validate_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRuntimeSpec:
    def test_defaults_apply_the_bench_stream_regime(self):
        spec = RuntimeSpec()
        assert spec.overrides["skew"] == BENCH_DEFAULT_OVERRIDES["skew"]
        assert spec.resolve_scale().skew == BENCH_DEFAULT_OVERRIDES["skew"]
        assert spec.resolve_scale().fluctuation == BENCH_DEFAULT_OVERRIDES["fluctuation"]

    def test_user_overrides_win_over_bench_defaults(self):
        spec = RuntimeSpec(overrides={"skew": 0.5})
        assert spec.resolve_scale().skew == 0.5
        assert spec.resolve_scale().fluctuation == BENCH_DEFAULT_OVERRIDES["fluctuation"]

    def test_round_trip(self):
        spec = RuntimeSpec(
            workload="windowed_aggregate",
            strategies=["storm", "readj"],
            parallelism=3,
            scale="small",
            overrides={"num_keys": 1234},
            seed=7,
            service_time_us=20.0,
            shed_timeout_seconds=0.5,
        )
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_with_explicit_scale(self):
        spec = RuntimeSpec(scale=get_scale("tiny"))
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec

    def test_resilience_specs_round_trip_in_canonical_form(self):
        spec = RuntimeSpec(
            workload="tpch_q5_chain",
            kill_worker="revenue-agg:0@3",
            scale_at="2:order-join:1",
            checkpoint_dir="/tmp/ckpt",
            checkpoint_every=2,
        )
        assert spec.scale_at == "2:order-join:+1"  # normalised sign
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec
        config = spec.runtime_config()
        assert config.kill_worker == ("revenue-agg", 0, 3)
        assert config.scale_at == (2, "order-join", 1)
        assert config.checkpoint_every == 2

    def test_resilience_specs_fail_fast(self):
        with pytest.raises(ValueError):
            RuntimeSpec(workload="wordcount", kill_worker="a:0@1")
        with pytest.raises(KeyError):
            RuntimeSpec(workload="tpch_q5_chain", kill_worker="nope:0@1")
        with pytest.raises(KeyError):
            RuntimeSpec(workload="tpch_q5_chain", scale_at="2:nope:+1")
        with pytest.raises(ValueError):
            RuntimeSpec(workload="tpch_q5_chain", kill_worker="bad-spec")
        with pytest.raises(ValueError):
            RuntimeSpec(workload="tpch_q5_chain", checkpoint_every=0)

    def test_rejects_unknown_workload(self):
        with pytest.raises(KeyError):
            RuntimeSpec(workload="nope")

    def test_rejects_unknown_strategy_up_front(self):
        # A typo must fail at spec construction, not after earlier strategies
        # already ran to completion.
        with pytest.raises(KeyError, match="bogus"):
            RuntimeSpec(strategies=["storm", "bogus"])

    def test_rejects_unknown_scale_up_front(self):
        with pytest.raises(KeyError):
            RuntimeSpec(scale="huge")
        with pytest.raises(TypeError):
            RuntimeSpec(overrides={"not_a_field": 1})

    def test_every_registered_workload_builds_a_stream(self):
        scale = get_scale("tiny").scaled(
            num_keys=50, tuples_per_interval=200, sim_intervals=2
        )
        for name, builder in BENCH_WORKLOADS.items():
            logic, stream = builder(scale, 2, seed=0)
            assert len(stream) == 2, name
            assert all(len(interval) > 0 for interval in stream), name
            key, _ = stream[0][0]
            assert logic.tuple_cost(key) > 0

    def test_every_topology_workload_builds_a_stream_and_topology(self):
        scale = get_scale("tiny").scaled(
            num_keys=50, tuples_per_interval=200, sim_intervals=2
        )
        spec = RuntimeSpec(workload="tpch_q5_chain", parallelism=2, scale="tiny")
        for name, workload in BENCH_TOPOLOGY_WORKLOADS.items():
            stream = workload.build_stream(scale, 0)
            assert len(stream) == 2, name
            assert all(len(interval) > 0 for interval in stream), name

            def build(strategy, parallelism):
                from repro.baselines.hash_only import HashPartitioner

                return HashPartitioner(parallelism, seed=0)

            topology = workload.build_topology(scale, spec, "storm", build)
            assert topology.stage_names() == list(workload.stages)

    def test_stage_parallelism_validation(self):
        spec = RuntimeSpec(
            workload="tpch_q5_chain",
            parallelism=2,
            stage_parallelism={"order-join": 4},
        )
        assert spec.stage_parallelism == {"order-join": 4}
        with pytest.raises(KeyError, match="bogus-stage"):
            RuntimeSpec(
                workload="tpch_q5_chain", stage_parallelism={"bogus-stage": 2}
            )
        with pytest.raises(ValueError, match="positive"):
            RuntimeSpec(
                workload="tpch_q5_chain", stage_parallelism={"order-join": 0}
            )
        with pytest.raises(ValueError, match="topology"):
            RuntimeSpec(workload="wordcount", stage_parallelism={"order-join": 2})

    def test_offered_rate_validation_and_round_trip(self):
        with pytest.raises(ValueError):
            RuntimeSpec(offered_rate=-1.0)
        spec = RuntimeSpec(
            workload="tpch_q5_chain",
            offered_rate=5_000.0,
            calibrate_pacing=True,
            stage_parallelism={"revenue-agg": 1},
        )
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec

    def test_rate_sweep_validation_and_round_trip(self):
        # One-point sweeps are rejected everywhere (spec, CLI, validator).
        with pytest.raises(ValueError, match="at least two"):
            RuntimeSpec(rate_sweep=[])
        with pytest.raises(ValueError, match="at least two"):
            RuntimeSpec(rate_sweep=[1_000.0])
        with pytest.raises(ValueError, match="positive"):
            RuntimeSpec(rate_sweep=[-5.0, 10.0])
        with pytest.raises(ValueError, match="ascending"):
            RuntimeSpec(rate_sweep=[10_000.0, 5_000.0])
        with pytest.raises(ValueError, match="ascending"):
            RuntimeSpec(rate_sweep=[5_000.0, 5_000.0])
        with pytest.raises(ValueError, match="mutually exclusive"):
            RuntimeSpec(offered_rate=1_000.0, rate_sweep=[1_000.0, 2_000.0])
        spec = RuntimeSpec(rate_sweep=[1_000, 2_000.5])
        assert spec.rate_sweep == [1_000.0, 2_000.5]
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec


class TestRunBench:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("bench")
        spec = RuntimeSpec(workload="wordcount", strategies=["storm", "mixed"], **TINY)
        store = ResultsStore(root / "results")
        run, results = run_bench(
            spec, store=store, output_path=root / "BENCH_runtime.json"
        )
        return spec, store, run, results, root

    def test_rows_carry_measured_numbers(self, outcome):
        _, _, run, results, _ = outcome
        assert [row["strategy"] for row in run.result.rows] == ["storm", "mixed"]
        for row in run.result.rows:
            assert row["tuples"] == 10_000
            assert row["tuples_per_second"] > 0
            assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        assert set(results) == {"storm", "mixed"}

    def test_metadata_records_process_engine_and_host(self, outcome):
        _, _, run, _, _ = outcome
        assert run.metadata.engine == "process"
        assert run.metadata.host_cpu_count >= 1
        assert run.metadata.figure == "bench"

    def test_persisted_run_reloads_with_artifacts(self, outcome):
        spec, store, run, _, _ = outcome
        loaded = store.load(run.metadata.run_id)
        assert loaded.metadata.engine == "process"
        assert RuntimeSpec.from_dict(loaded.spec.params["runtime_spec"]) == spec
        names = store.artifact_names(run.metadata.run_id)
        assert "mixed.latency" in names and "storm.metrics" in names
        histogram = store.load_artifact(run.metadata.run_id, "mixed.latency")
        assert histogram.total == 10_000

    def test_bench_report_file(self, outcome):
        _, _, run, _, root = outcome
        payload = json.loads((root / "BENCH_runtime.json").read_text())
        assert payload["metadata"]["engine"] == "process"
        assert payload["spec"]["workload"] == "wordcount"
        assert len(payload["rows"]) == 2
        assert set(payload["per_strategy"]) == {"storm", "mixed"}


class TestChainBench:
    """run_bench on the multi-stage Q5 topology (structure, not speed)."""

    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("chain-bench")
        spec = RuntimeSpec(
            workload="tpch_q5_chain",
            strategies=["storm", "mixed"],
            **TINY,
        )
        store = ResultsStore(root / "results")
        run, results = run_bench(
            spec, store=store, output_path=root / "BENCH_runtime.json"
        )
        return spec, store, run, results, root

    def test_rows_cover_chain_and_every_stage(self, outcome):
        _, _, run, results, _ = outcome
        for name in ("storm", "mixed"):
            stages = [
                row["stage"] for row in run.result.rows if row["strategy"] == name
            ]
            assert stages == ["chain", *Q5_CHAIN_STAGES]
        for row in run.result.rows:
            assert row["tuples"] > 0
            assert row["tuples_per_second"] > 0
            assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        assert all(
            isinstance(result, TopologyResult) for result in results.values()
        )

    def test_chain_conserves_tuples_across_stages(self, outcome):
        _, _, _, results, _ = outcome
        total = TINY["overrides"]["tuples_per_interval"] * TINY["overrides"]["sim_intervals"]
        for result in results.values():
            assert result.tuples_offered == total
            for stage in result.stages.values():
                assert stage.tuples_processed == total

    def test_revenue_lands_in_the_nation_domain(self, outcome):
        _, _, _, results, _ = outcome
        # The final stage is keyed by nation (25 keys) after two re-keyings.
        final = results["storm"].final
        total_keys = sum(
            report.state_keys for report in final.final_reports.values()
        )
        assert 0 < total_keys <= 25

    def test_report_passes_the_ci_schema_validation(self, outcome):
        _, _, _, _, root = outcome
        validate_bench = _load_validate_bench()
        payload = json.loads((root / "BENCH_runtime.json").read_text())
        assert validate_bench.validate_report(payload) == 8  # 2 strategies × 4 rows

    def test_per_stage_artifacts_are_stored(self, outcome):
        _, store, run, _, _ = outcome
        names = store.artifact_names(run.metadata.run_id)
        for strategy in ("storm", "mixed"):
            for stage in Q5_CHAIN_STAGES:
                assert f"{strategy}.{stage}.metrics" in names
                assert f"{strategy}.{stage}.latency" in names
            assert f"{strategy}.e2e_latency" in names
        e2e = store.load_artifact(run.metadata.run_id, "storm.e2e_latency")
        assert e2e.total == 10_000


class TestRateSweep:
    """run_bench with a rate_sweep: one measured row per offered rate."""

    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sweep-bench")
        spec = RuntimeSpec(
            workload="wordcount",
            strategies=["storm"],
            rate_sweep=[20_000.0, 80_000.0],
            **TINY,
        )
        run, results = run_bench(spec, output_path=root / "BENCH_sweep.json")
        return spec, run, results, root

    def test_one_row_per_rate_with_ascending_rates(self, outcome):
        _, run, results, _ = outcome
        rows = run.result.rows
        assert [row["offered_rate"] for row in rows] == [20_000.0, 80_000.0]
        for row in rows:
            assert row["strategy"] == "storm"
            assert row["tuples"] == 10_000
            assert row["tuples_per_second"] > 0
            assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        # Outcomes are keyed by rate under each strategy.
        assert set(results["storm"]) == {20_000.0, 80_000.0}

    def test_open_loop_pacing_caps_measured_throughput(self, outcome):
        _, _, results, _ = outcome
        slow = results["storm"][20_000.0]
        # 10k tuples offered at 20k/s must take at least ~0.5 s of schedule.
        assert slow.wall_seconds > 0.4
        assert slow.summary()["tuples_per_second"] < 25_000

    def test_sweep_report_passes_the_ci_schema_validation(self, outcome):
        _, _, _, root = outcome
        validate_bench = _load_validate_bench()
        payload = json.loads((root / "BENCH_sweep.json").read_text())
        assert payload["spec"]["rate_sweep"] == [20_000.0, 80_000.0]
        assert validate_bench.validate_report(payload) == 2
        sweep = payload["per_strategy"]["storm"]["rate_sweep"]
        assert [entry["offered_rate"] for entry in sweep] == [20_000.0, 80_000.0]

    def test_validator_rejects_unordered_sweep_rows(self, outcome):
        _, _, _, root = outcome
        validate_bench = _load_validate_bench()
        payload = json.loads((root / "BENCH_sweep.json").read_text())
        payload["rows"] = list(reversed(payload["rows"]))
        with pytest.raises(SystemExit):
            validate_bench.validate_report(payload)


class TestSanitizerSectionValidation:
    """validate_bench on the optional 'sanitizer' report section."""

    def _clean_section(self):
        return {
            "enabled": True,
            "ok": True,
            "checks": {"message_type": 100, "watermark": 10, "conservation": 2},
            "violations": [],
        }

    def test_clean_section_passes(self):
        validate_bench = _load_validate_bench()
        validate_bench._validate_sanitizer(self._clean_section())

    def test_violations_fail(self):
        validate_bench = _load_validate_bench()
        section = self._clean_section()
        section["ok"] = False
        section["violations"] = [
            {"check": "watermark", "stage": "agg", "message": "went backwards"}
        ]
        with pytest.raises(SystemExit):
            validate_bench._validate_sanitizer(section)

    def test_zero_checks_fail_even_when_clean(self):
        # All-zero counters mean the hooks never fired: a wiring regression
        # masquerading as a clean run.
        validate_bench = _load_validate_bench()
        section = self._clean_section()
        section["checks"] = {}
        with pytest.raises(SystemExit):
            validate_bench._validate_sanitizer(section)


class TestBenchCli:
    def test_bench_command_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench",
                "wordcount",
                "--parallelism",
                "2",
                "--scale",
                "tiny",
                "--set",
                "tuples_per_interval=3000",
                "--set",
                "sim_intervals=2",
                "--set",
                "num_keys=200",
                "--service-time-us",
                "10",
                "--strategies",
                "storm",
                "--results-dir",
                str(tmp_path / "results"),
                "--output",
                str(tmp_path / "BENCH_runtime.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuples/s" in out
        assert "engine=process" in out
        assert (tmp_path / "BENCH_runtime.json").is_file()
        store = ResultsStore(tmp_path / "results")
        assert len(store) == 1
        assert store.list_runs()[0].engine == "process"

    def test_bench_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["bench", "nope"])

    def test_bench_rejects_unknown_strategy_before_running(self):
        with pytest.raises(SystemExit, match="bogus"):
            main(["bench", "wordcount", "--strategies", "storm,bogus"])

    def test_bench_rejects_malformed_parallelism(self):
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--parallelism", "0"])
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--parallelism", "-3"])
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--parallelism", "two"])

    def test_bench_rejects_malformed_stage_parallelism(self):
        # Missing '=', non-integer count, non-positive count, unknown stage,
        # and stage overrides on a single-stage workload — all must exit
        # cleanly before any worker process is spawned.
        with pytest.raises(SystemExit, match="STAGE=COUNT"):
            main(["bench", "tpch_q5_chain", "--stage-parallelism", "order-join"])
        with pytest.raises(SystemExit, match="integer"):
            main(
                ["bench", "tpch_q5_chain", "--stage-parallelism", "order-join=x"]
            )
        with pytest.raises(SystemExit, match="positive"):
            main(
                ["bench", "tpch_q5_chain", "--stage-parallelism", "order-join=0"]
            )
        with pytest.raises(SystemExit, match="unknown stage"):
            main(["bench", "tpch_q5_chain", "--stage-parallelism", "bogus=2"])
        with pytest.raises(SystemExit, match="topology"):
            main(["bench", "wordcount", "--stage-parallelism", "order-join=2"])

    def test_bench_rejects_malformed_service_time_and_rate(self):
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--service-time-us", "fast"])
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--service-time-us", "-5"])
        with pytest.raises(SystemExit):
            main(["bench", "wordcount", "--rate", "-100"])

    def test_bench_rejects_malformed_rate_sweep(self):
        for bad in ("1000", "1000:2000", "a:b:3", "2000:1000:3", "1000:2000:1"):
            with pytest.raises(SystemExit):
                main(["bench", "wordcount", "--rate-sweep", bad])
        # --rate and --rate-sweep are mutually exclusive (spec-level check).
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "bench",
                    "wordcount",
                    "--rate",
                    "1000",
                    "--rate-sweep",
                    "1000:2000:2",
                ]
            )

    def test_stored_bench_run_is_rerunnable(self, tmp_path, capsys):
        spec = RuntimeSpec(workload="wordcount", strategies=["storm"], **TINY)
        store = ResultsStore(tmp_path / "results")
        run, _ = run_bench(spec, store=store, output_path=None)
        run_json = tmp_path / "results" / run.metadata.run_id / "run.json"
        assert run_json.is_file()
        code = main(
            [
                "run",
                str(run_json),
                "--results-dir",
                str(tmp_path / "results"),
                "--quiet",
            ]
        )
        assert code == 0
        assert "engine=process" in capsys.readouterr().out
        assert len(store) == 2  # the original bench run plus the re-run
