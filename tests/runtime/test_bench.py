"""RuntimeSpec serialisation, run_bench persistence and the `repro bench` CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments.config import get_scale
from repro.experiments.store import ResultsStore
from repro.runtime.bench import (
    BENCH_DEFAULT_OVERRIDES,
    BENCH_WORKLOADS,
    RuntimeSpec,
    run_bench,
)

#: A bench configuration small enough for tier-1 (two strategies, ~20k tuples).
TINY = dict(
    scale="tiny",
    overrides={"tuples_per_interval": 5_000, "sim_intervals": 2, "num_keys": 300},
    parallelism=2,
    service_time_us=10.0,
)


class TestRuntimeSpec:
    def test_defaults_apply_the_bench_stream_regime(self):
        spec = RuntimeSpec()
        assert spec.overrides["skew"] == BENCH_DEFAULT_OVERRIDES["skew"]
        assert spec.resolve_scale().skew == BENCH_DEFAULT_OVERRIDES["skew"]
        assert spec.resolve_scale().fluctuation == BENCH_DEFAULT_OVERRIDES["fluctuation"]

    def test_user_overrides_win_over_bench_defaults(self):
        spec = RuntimeSpec(overrides={"skew": 0.5})
        assert spec.resolve_scale().skew == 0.5
        assert spec.resolve_scale().fluctuation == BENCH_DEFAULT_OVERRIDES["fluctuation"]

    def test_round_trip(self):
        spec = RuntimeSpec(
            workload="windowed_aggregate",
            strategies=["storm", "readj"],
            parallelism=3,
            scale="small",
            overrides={"num_keys": 1234},
            seed=7,
            service_time_us=20.0,
            shed_timeout_seconds=0.5,
        )
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_with_explicit_scale(self):
        spec = RuntimeSpec(scale=get_scale("tiny"))
        assert RuntimeSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_workload(self):
        with pytest.raises(KeyError):
            RuntimeSpec(workload="nope")

    def test_rejects_unknown_strategy_up_front(self):
        # A typo must fail at spec construction, not after earlier strategies
        # already ran to completion.
        with pytest.raises(KeyError, match="bogus"):
            RuntimeSpec(strategies=["storm", "bogus"])

    def test_rejects_unknown_scale_up_front(self):
        with pytest.raises(KeyError):
            RuntimeSpec(scale="huge")
        with pytest.raises(TypeError):
            RuntimeSpec(overrides={"not_a_field": 1})

    def test_every_registered_workload_builds_a_stream(self):
        scale = get_scale("tiny").scaled(
            num_keys=50, tuples_per_interval=200, sim_intervals=2
        )
        for name, builder in BENCH_WORKLOADS.items():
            logic, stream = builder(scale, 2, seed=0)
            assert len(stream) == 2, name
            assert all(len(interval) > 0 for interval in stream), name
            key, _ = stream[0][0]
            assert logic.tuple_cost(key) > 0


class TestRunBench:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("bench")
        spec = RuntimeSpec(workload="wordcount", strategies=["storm", "mixed"], **TINY)
        store = ResultsStore(root / "results")
        run, results = run_bench(
            spec, store=store, output_path=root / "BENCH_runtime.json"
        )
        return spec, store, run, results, root

    def test_rows_carry_measured_numbers(self, outcome):
        _, _, run, results, _ = outcome
        assert [row["strategy"] for row in run.result.rows] == ["storm", "mixed"]
        for row in run.result.rows:
            assert row["tuples"] == 10_000
            assert row["tuples_per_second"] > 0
            assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        assert set(results) == {"storm", "mixed"}

    def test_metadata_records_process_engine_and_host(self, outcome):
        _, _, run, _, _ = outcome
        assert run.metadata.engine == "process"
        assert run.metadata.host_cpu_count >= 1
        assert run.metadata.figure == "bench"

    def test_persisted_run_reloads_with_artifacts(self, outcome):
        spec, store, run, _, _ = outcome
        loaded = store.load(run.metadata.run_id)
        assert loaded.metadata.engine == "process"
        assert RuntimeSpec.from_dict(loaded.spec.params["runtime_spec"]) == spec
        names = store.artifact_names(run.metadata.run_id)
        assert "mixed.latency" in names and "storm.metrics" in names
        histogram = store.load_artifact(run.metadata.run_id, "mixed.latency")
        assert histogram.total == 10_000

    def test_bench_report_file(self, outcome):
        _, _, run, _, root = outcome
        payload = json.loads((root / "BENCH_runtime.json").read_text())
        assert payload["metadata"]["engine"] == "process"
        assert payload["spec"]["workload"] == "wordcount"
        assert len(payload["rows"]) == 2
        assert set(payload["per_strategy"]) == {"storm", "mixed"}


class TestBenchCli:
    def test_bench_command_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench",
                "wordcount",
                "--parallelism",
                "2",
                "--scale",
                "tiny",
                "--set",
                "tuples_per_interval=3000",
                "--set",
                "sim_intervals=2",
                "--set",
                "num_keys=200",
                "--service-time-us",
                "10",
                "--strategies",
                "storm",
                "--results-dir",
                str(tmp_path / "results"),
                "--output",
                str(tmp_path / "BENCH_runtime.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuples/s" in out
        assert "engine=process" in out
        assert (tmp_path / "BENCH_runtime.json").is_file()
        store = ResultsStore(tmp_path / "results")
        assert len(store) == 1
        assert store.list_runs()[0].engine == "process"

    def test_bench_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["bench", "nope"])

    def test_bench_rejects_unknown_strategy_before_running(self):
        with pytest.raises(SystemExit, match="bogus"):
            main(["bench", "wordcount", "--strategies", "storm,bogus"])

    def test_stored_bench_run_is_rerunnable(self, tmp_path, capsys):
        spec = RuntimeSpec(workload="wordcount", strategies=["storm"], **TINY)
        store = ResultsStore(tmp_path / "results")
        run, _ = run_bench(spec, store=store, output_path=None)
        run_json = tmp_path / "results" / run.metadata.run_id / "run.json"
        assert run_json.is_file()
        code = main(
            [
                "run",
                str(run_json),
                "--results-dir",
                str(tmp_path / "results"),
                "--quiet",
            ]
        )
        assert code == 0
        assert "engine=process" in capsys.readouterr().out
        assert len(store) == 2  # the original bench run plus the re-run
