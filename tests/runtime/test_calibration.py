"""Adaptive pacing calibration: saturation across machines of any speed."""

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.operators.wordcount import WordCountOperator
from repro.runtime.topology import (
    RuntimeConfig,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
    calibrated_service_time_us,
)


class TestCalibrationFormula:
    def test_scales_with_measured_drain_time(self):
        # A machine that drains 10k cost units in 1 s with 2 workers gets
        # service_time = headroom × 1s × 2 / 10k = headroom × 200 µs.
        assert calibrated_service_time_us(10_000, 1.0, 2, headroom=1.0) == (
            pytest.approx(200.0)
        )
        # Twice as slow a machine → twice the service time: the bench stays
        # equally saturated.
        assert calibrated_service_time_us(10_000, 2.0, 2, headroom=1.0) == (
            pytest.approx(400.0)
        )

    def test_headroom_multiplies_the_pacing(self):
        base = calibrated_service_time_us(5_000, 0.5, 4, headroom=1.0)
        assert calibrated_service_time_us(5_000, 0.5, 4, headroom=2.0) == (
            pytest.approx(2.0 * base)
        )

    def test_degenerate_measurements_disable_pacing(self):
        assert calibrated_service_time_us(0.0, 1.0, 2) == 0.0
        assert calibrated_service_time_us(100.0, 0.0, 2) == 0.0


class TestCalibratedRun:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = TopologySpec(
            "calibrated",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(emit_updates=False),
                    partitioner=HashPartitioner(2, seed=0),
                )
            ],
        )
        config = RuntimeConfig(
            parallelism=2,
            batch_size=64,
            queue_capacity=4,
            service_time_us=123.0,  # must be ignored when calibrating
            calibrate_pacing=True,
            calibration_headroom=2.0,
        )
        stream = [
            [(key, None) for key in range(40) for _ in range(25)]
            for _ in range(4)
        ]
        return TopologyRuntime(spec, config).run(stream)

    def test_calibrated_pacing_is_recorded(self, outcome):
        stage = outcome.stages["counter"]
        assert stage.calibrated_service_time_us is not None
        assert stage.calibrated_service_time_us > 0
        assert stage.calibrated_service_time_us != 123.0

    def test_every_worker_applied_the_calibrated_pacing(self, outcome):
        stage = outcome.stages["counter"]
        for report in stage.final_reports.values():
            assert report.service_time_us == pytest.approx(
                stage.calibrated_service_time_us
            )

    def test_calibration_does_not_lose_tuples(self, outcome):
        stage = outcome.stages["counter"]
        assert stage.tuples_processed == 4 * 40 * 25
        assert stage.tuples_shed == 0
