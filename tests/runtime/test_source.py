"""The source producer protocol and its open-loop pacing."""

import time

import pytest

from repro.runtime.messages import EmittedBatch, UpstreamDone, UpstreamMark
from repro.runtime.source import SOURCE_PRODUCER_ID, source_main


class _ListQueue:
    """Queue stub capturing puts in order (source_main only needs .put)."""

    def __init__(self):
        self.items = []

    def put(self, item, timeout=None):
        self.items.append(item)


def _run_source(stream, batch_size=3, rate=None):
    queue = _ListQueue()
    source_main(stream, queue, batch_size, rate)
    return queue.items


class TestProducerProtocol:
    def test_batches_then_mark_per_interval_then_done(self):
        stream = [[("a", 1)] * 5, [("b", 2)] * 2]
        messages = _run_source(stream, batch_size=3)
        kinds = [type(message).__name__ for message in messages]
        assert kinds == [
            "EmittedBatch",  # a ×3
            "EmittedBatch",  # a ×2
            "UpstreamMark",  # interval 0
            "EmittedBatch",  # b ×2
            "UpstreamMark",  # interval 1
            "UpstreamDone",
        ]
        marks = [m for m in messages if isinstance(m, UpstreamMark)]
        assert [m.interval for m in marks] == [0, 1]
        assert all(m.producer_id == SOURCE_PRODUCER_ID for m in marks)
        assert isinstance(messages[-1], UpstreamDone)

    def test_batches_carry_interval_and_full_payload(self):
        stream = [[(k, k * 10) for k in range(7)]]
        messages = _run_source(stream, batch_size=4)
        batches = [m for m in messages if isinstance(m, EmittedBatch)]
        assert [len(b) for b in batches] == [4, 3]
        assert all(b.interval == 0 for b in batches)
        replayed = [key for b in batches for key in b.keys]
        assert replayed == list(range(7))
        # The columnar layout keeps keys and values aligned.
        values = [value for b in batches for value in b.values]
        assert values == [key * 10 for key in range(7)]

    def test_empty_stream_emits_only_done(self):
        messages = _run_source([])
        assert len(messages) == 1
        assert isinstance(messages[0], UpstreamDone)


class TestOpenLoopPacing:
    def test_origin_stamps_follow_the_offer_schedule(self):
        # 30 tuples at 300/s in batches of 10: offers scheduled 33 ms apart.
        stream = [[("k", None)] * 30]
        started = time.monotonic()
        messages = _run_source(stream, batch_size=10, rate=300.0)
        elapsed = time.monotonic() - started
        batches = [m for m in messages if isinstance(m, EmittedBatch)]
        assert len(batches) == 3
        gaps = [b.origin_at - a.origin_at for a, b in zip(batches, batches[1:])]
        for gap in gaps:
            assert gap == pytest.approx(10 / 300.0, rel=1e-6)
        # The run really is paced (last batch scheduled at 20/300 s).
        assert elapsed >= (20 / 300.0) * 0.8

    def test_closed_loop_stamps_put_time(self):
        stream = [[("k", None)] * 4]
        messages = _run_source(stream, batch_size=2, rate=None)
        batches = [m for m in messages if isinstance(m, EmittedBatch)]
        # Monotonic stamps taken at put time, no schedule.
        assert batches[0].origin_at <= batches[1].origin_at
