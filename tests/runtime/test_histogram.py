"""Unit tests of the mergeable latency histogram."""

import pytest

from repro.runtime.histogram import LatencyHistogram


class TestRecording:
    def test_empty_histogram_reports_zero(self):
        histogram = LatencyHistogram()
        assert len(histogram) == 0
        assert histogram.p50_us == 0.0
        assert histogram.p99_us == 0.0
        assert histogram.mean_us == 0.0

    def test_counts_and_mean(self):
        histogram = LatencyHistogram()
        histogram.record(100.0, count=3)
        histogram.record(200.0)
        assert histogram.total == 4
        assert histogram.mean_us == pytest.approx((3 * 100 + 200) / 4)
        assert histogram.max_us == 200.0

    def test_negative_and_zero_counts_are_ignored(self):
        histogram = LatencyHistogram()
        histogram.record(100.0, count=0)
        histogram.record(100.0, count=-5)
        assert histogram.total == 0

    def test_negative_latency_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.total == 1
        assert histogram.p50_us <= 2.0  # lands in the first bucket


class TestQuantiles:
    def test_quantile_bounds_relative_error(self):
        histogram = LatencyHistogram()
        for value in (50.0, 100.0, 150.0, 1000.0):
            histogram.record(value, count=25)
        p50 = histogram.quantile(0.5)
        # Bucketed estimate: within one growth factor of the true median (100).
        assert 100.0 <= p50 <= 100.0 * 1.25 * 1.25
        p99 = histogram.quantile(0.99)
        assert 1000.0 * 0.8 <= p99 <= 1000.0 * 1.25

    def test_quantile_never_exceeds_max(self):
        histogram = LatencyHistogram()
        histogram.record(777.0, count=10)
        assert histogram.quantile(1.0) <= 777.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestMergeAndPersistence:
    def test_merge_adds_counts(self):
        left = LatencyHistogram()
        right = LatencyHistogram()
        left.record(100.0, count=10)
        right.record(10_000.0, count=10)
        left.merge(right)
        assert left.total == 20
        assert left.max_us == 10_000.0
        assert left.quantile(0.9) >= 10_000.0 * 0.8

    def test_round_trip(self):
        histogram = LatencyHistogram()
        for value in (3.0, 47.0, 9_000.0):
            histogram.record(value, count=7)
        clone = LatencyHistogram.from_dict(histogram.to_dict())
        assert clone.counts == histogram.counts
        assert clone.total == histogram.total
        assert clone.sum_us == histogram.sum_us
        assert clone.max_us == histogram.max_us
        assert clone.p99_us == histogram.p99_us

    def test_summary_ms_units(self):
        histogram = LatencyHistogram()
        histogram.record(2_000.0, count=100)  # 2 ms
        summary = histogram.summary_ms()
        assert summary["samples"] == 100.0
        assert 1.5 <= summary["latency_p50_ms"] <= 3.2
        assert summary["latency_mean_ms"] == pytest.approx(2.0)
