"""Vectorized-dispatch parity: the chunk-level router accounting must equal
the per-tuple scalar reference exactly.

``StreamRouter._dispatch_chunk`` replaced per-tuple dict updates with one
Counter/``np.bincount``/batched-cost pass per chunk; these property tests pin
the refactor to a faithful scalar port of the old loop — same freqs, same
per-task offered tuples/cost, same shed charges and the same per-task batch
streams (including under pause/resume, mixed interval tags and shedding).

Costs in these tests are dyadic rationals (multiples of 0.25), so scalar
repeated addition and the vectorized ``counts × cost`` / ``bincount`` sums
are bit-identical, and the comparisons below are exact ``==``, not approx.
"""

import queue as queue_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_only import HashPartitioner
from repro.engine.operator import OperatorLogic
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.runtime.router import StreamRouter


class VaryingCostOperator(OperatorLogic):
    """Per-key (dyadic) costs: exercises the array branch of batch_cost."""

    name = "varying-cost"
    stateful = True

    def tuple_cost(self, key, value=None):
        return 0.25 * ((hash(key) & 3) + 1)


class _CaptureQueue:
    """Worker-queue stub recording every batch (accepts the shed timeout)."""

    def __init__(self):
        self.items = []

    def put(self, item, timeout=None):
        self.items.append(item)


class _FullQueue:
    """Worker-queue stub that is permanently full (forces shedding)."""

    def put(self, item, timeout=None):
        raise queue_module.Full


class ScalarReference:
    """Faithful per-tuple port of the pre-vectorization dispatch accounting.

    One dict update per tuple for freqs / offered tuples / offered cost, a
    per-tuple paused-key test, ``setdefault`` grouping — plus the *intended*
    resume semantics (buffer grouped by interval tag before re-dispatch).
    """

    def __init__(self, partitioner, logic, num_tasks, batch_size, failing=()):
        self.partitioner = partitioner
        self.logic = logic
        self.num_tasks = num_tasks
        self.batch_size = batch_size
        self.failing = set(failing)
        self.accounts = {}
        self.batches = {task: [] for task in range(num_tasks)}
        self.paused = set()
        self.buffer = []

    def account(self, tag):
        account = self.accounts.get(tag)
        if account is None:
            account = self.accounts[tag] = {
                "freqs": {},
                "offered_tuples": {t: 0.0 for t in range(self.num_tasks)},
                "offered_cost": {t: 0.0 for t in range(self.num_tasks)},
                "shed": {},
            }
        return account

    def dispatch(self, keys, values, interval):
        pairs = list(zip(keys, values))
        for start in range(0, len(pairs), self.batch_size):
            self._chunk(pairs[start : start + self.batch_size], interval)

    def _chunk(self, chunk, tag):
        account = self.account(tag)
        destinations = self.partitioner.assign_batch([key for key, _ in chunk])
        tuple_cost = self.logic.tuple_cost
        per_task = {}
        for (key, value), task in zip(chunk, destinations):
            account["freqs"][key] = account["freqs"].get(key, 0.0) + 1.0
            account["offered_tuples"][task] += 1.0
            account["offered_cost"][task] += tuple_cost(key, value)
            if key in self.paused:
                self.buffer.append((key, value, tag))
                continue
            per_task.setdefault(task, []).append((key, value))
        for task, batch in per_task.items():
            self._put(task, tag, batch)

    def _put(self, task, tag, batch):
        if task in self.failing:
            shed = self.account(tag)["shed"]
            shed[task] = shed.get(task, 0.0) + len(batch)
            return
        self.batches[task].append(
            (tag, [key for key, _ in batch], [value for _, value in batch])
        )

    def pause(self, keys):
        self.paused.update(keys)

    def resume(self):
        self.paused.clear()
        buffered, self.buffer = self.buffer, []
        by_tag = {}
        for entry in buffered:
            by_tag.setdefault(entry[2], []).append(entry)
        for tag in sorted(by_tag):
            entries = by_tag[tag]
            for start in range(0, len(entries), self.batch_size):
                chunk = entries[start : start + self.batch_size]
                destinations = self.partitioner.assign_batch(
                    [key for key, _, _ in chunk]
                )
                per_task = {}
                for (key, value, _), task in zip(chunk, destinations):
                    per_task.setdefault(task, []).append((key, value))
                for task, batch in per_task.items():
                    self._put(task, tag, batch)
        return len(buffered)


def _captured(queues):
    return {
        task: [(batch.interval, batch.keys, batch.values) for batch in queue.items]
        for task, queue in enumerate(queues)
        if isinstance(queue, _CaptureQueue)
    }


def _assert_account_parity(router, reference, tags):
    for tag in tags:
        account = router.pop_interval(tag)
        expected = reference.account(tag)
        # dict == compares 2 and 2.0 equal, so Counter-vs-float is exact here.
        assert account.freqs == expected["freqs"], f"freqs of interval {tag}"
        assert account.freqs_dict() == {
            key: float(count) for key, count in expected["freqs"].items()
        }
        assert account.offered_tuples == expected["offered_tuples"]
        assert account.offered_cost == expected["offered_cost"]
        assert account.shed == expected["shed"]


#: Key pool mixing types: homogeneous chunks take the bulk route memo,
#: mixed chunks the memo_key fallback — parity must hold either way.
KEYS = st.one_of(
    st.integers(min_value=0, max_value=12),
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    st.booleans(),
)

SEGMENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.lists(KEYS, min_size=1, max_size=20),
    ),
    min_size=1,
    max_size=6,
)


class TestDispatchParity:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_accounting_equals_scalar_reference(self, data):
        num_tasks = data.draw(st.integers(1, 4), label="num_tasks")
        batch_size = data.draw(st.integers(1, 7), label="batch_size")
        constant_cost = data.draw(st.booleans(), label="constant_cost")
        segments = data.draw(SEGMENTS, label="segments")
        pause_after = data.draw(
            st.integers(0, len(segments)), label="pause_after"
        )
        paused_keys = data.draw(st.sets(KEYS, max_size=4), label="paused_keys")
        failing = data.draw(
            st.sets(st.integers(0, num_tasks - 1), max_size=1), label="failing"
        )

        logic = (
            WindowedAggregate(window=2, cost_per_tuple=0.75)
            if constant_cost
            else VaryingCostOperator()
        )
        partitioner = HashPartitioner(num_tasks, seed=3)
        queues = [
            _FullQueue() if task in failing else _CaptureQueue()
            for task in range(num_tasks)
        ]
        router = StreamRouter(
            partitioner,
            logic,
            queues,
            batch_size=batch_size,
            shed_timeout_seconds=0.001 if failing else None,
        )
        router.begin_interval(0)
        reference = ScalarReference(
            partitioner, logic, num_tasks, batch_size, failing
        )

        for index, (tag, keys) in enumerate(segments):
            if index == pause_after:
                router.pause(paused_keys)
                reference.pause(paused_keys)
            values = [f"v{index}.{offset}" for offset in range(len(keys))]
            router.dispatch(keys, values, interval=tag)
            reference.dispatch(keys, values, tag)

        assert router.resume() == reference.resume()
        assert router.paused_keys == frozenset()
        assert _captured(queues) == {
            task: stream
            for task, stream in reference.batches.items()
            if task not in failing
        }
        _assert_account_parity(router, reference, range(4))


class TestResumeIntervalGrouping:
    """Regression: a pause buffer spanning intervals re-tags per interval."""

    def _router(self, num_tasks=1, batch_size=16):
        queues = [_CaptureQueue() for _ in range(num_tasks)]
        router = StreamRouter(
            HashPartitioner(num_tasks, seed=0),
            WindowedAggregate(),
            queues,
            batch_size=batch_size,
        )
        router.begin_interval(0)
        return router, queues

    def test_released_batches_keep_their_interval_tags(self):
        router, queues = self._router()
        router.pause(["hot"])
        router.dispatch(["hot", "hot"], ["a", "b"], interval=3)
        router.dispatch(["hot"], ["c"], interval=5)
        assert queues[0].items == []  # everything buffered
        assert router.resume() == 3
        released = [(b.interval, b.keys, b.values) for b in queues[0].items]
        # One batch per buffered interval — NOT one mixed batch tagged 3.
        assert released == [
            (3, ["hot", "hot"], ["a", "b"]),
            (5, ["hot"], ["c"]),
        ]

    def test_released_batches_chunk_within_an_interval(self):
        router, queues = self._router(batch_size=2)
        router.pause(["hot"])
        router.dispatch(["hot"] * 5, list(range(5)), interval=1)
        assert router.resume() == 5
        sizes = [len(batch.keys) for batch in queues[0].items]
        assert sizes == [2, 2, 1]
        assert all(batch.interval == 1 for batch in queues[0].items)

    def test_resume_with_empty_buffer_is_a_noop(self):
        router, queues = self._router()
        router.pause(["cold"])
        assert router.resume() == 0
        assert queues[0].items == []


class TestBulkRouteMemoSafety:
    """The raw-key bulk memo must never conflate equal-but-differently-typed
    keys (1 / True / 1.0) — the very collisions memo_key exists to avoid."""

    def test_mixed_type_batch_matches_scalar_route(self):
        partitioner = HashPartitioner(7, seed=11)
        tricky = [True, 1, 1.0, 0.0, -0.0, "1", b"1", False, 0, (1,)]
        assert partitioner.assign_batch(tricky) == [
            partitioner.route(key) for key in tricky
        ]
        assert partitioner.assign_batch_array(tricky).tolist() == [
            partitioner.route(key) for key in tricky
        ]

    def test_homogeneous_batch_hits_the_bulk_memo(self):
        partitioner = HashPartitioner(5, seed=2)
        keys = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        expected = [partitioner.route(key) for key in keys]
        # Twice: the second call answers purely from the raw-key memo.
        assert partitioner.assign_batch(keys) == expected
        assert partitioner.assign_batch(keys) == expected
        assert partitioner.assign_batch_array(keys).tolist() == expected

    def test_bulk_memo_survives_type_flips_between_batches(self):
        partitioner = HashPartitioner(5, seed=2)
        ints = [1, 2, 3]
        texts = ["1", "2", "3"]
        assert partitioner.assign_batch(ints) == [
            partitioner.route(key) for key in ints
        ]
        assert partitioner.assign_batch(texts) == [
            partitioner.route(key) for key in texts
        ]
        assert partitioner.assign_batch(ints) == [
            partitioner.route(key) for key in ints
        ]

    def test_invalidate_drops_the_typed_memos(self):
        partitioner = HashPartitioner(5, seed=2)
        keys = [1, 2, 3, 4]
        before = partitioner.assign_batch(keys)
        partitioner.invalidate_route_cache()
        assert partitioner.assign_batch(keys) == before
