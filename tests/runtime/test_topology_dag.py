"""DAG topologies: fan-in mark barrier, spec validation, diamond execution.

The :class:`~repro.runtime.topology.MarkBarrier` is the protocol heart of
multi-upstream stages — an interval may close only once *every* upstream
origin's expected producers marked it — so it gets property tests driving
arbitrary mark/replay/resize interleavings, alongside an end-to-end diamond
(source → split-agg ×2 → merge) on real worker processes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_only import HashPartitioner
from repro.operators.windowed_aggregate import (
    MergeOperator,
    PartialWindowedAggregate,
    WindowedAggregate,
)
from repro.operators.wordcount import WordCountOperator
from repro.runtime.topology import (
    MarkBarrier,
    RuntimeConfig,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
)

INTERVALS = 3
KEYS = 40
REPEATS = 25


def _stream():
    return [
        [(key, None) for key in range(KEYS) for _ in range(REPEATS)]
        for _ in range(INTERVALS)
    ]


def _config(**overrides):
    defaults = dict(
        parallelism=2,
        batch_size=64,
        queue_capacity=4,
        service_time_us=5.0,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


def _diamond_spec():
    return TopologySpec(
        "diamond",
        [
            StageSpec(
                name="branch-a",
                logic=PartialWindowedAggregate(window=16, source_tag="a"),
                partitioner=HashPartitioner(2, seed=0),
                upstream=(),
            ),
            StageSpec(
                name="branch-b",
                logic=PartialWindowedAggregate(window=16, source_tag="b"),
                partitioner=HashPartitioner(2, seed=1),
                upstream=(),
            ),
            StageSpec(
                name="merge",
                logic=MergeOperator(window=16),
                partitioner=HashPartitioner(2, seed=2),
                upstream=("branch-a", "branch-b"),
            ),
        ],
    )


class TestMarkBarrier:
    def test_closes_only_after_every_origin_marked(self):
        barrier = MarkBarrier({"a": 2, "b": 1})
        assert barrier.observe_mark("a", 0, 0) == (True, False)
        assert barrier.observe_mark("b", 0, 0) == (True, False)
        # The last missing producer completes the interval.
        assert barrier.observe_mark("a", 1, 0) == (True, True)

    def test_replayed_mark_is_deduped(self):
        barrier = MarkBarrier({"a": 1, "b": 1})
        assert barrier.observe_mark("a", 0, 0) == (True, False)
        # A replay at (or below) the edge's floor is not accepted and can
        # never double-count toward the close.
        assert barrier.observe_mark("a", 0, 0) == (False, False)
        assert barrier.observe_mark("b", 0, 0) == (True, True)

    def test_unknown_origin_raises(self):
        barrier = MarkBarrier({"a": 1})
        with pytest.raises(KeyError):
            barrier.observe_mark("ghost", 0, 0)
        with pytest.raises(KeyError):
            barrier.observe_done("ghost")
        with pytest.raises(KeyError):
            barrier.resize("ghost", 1, 2, done_delta=1)

    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            MarkBarrier({})
        with pytest.raises(ValueError):
            MarkBarrier({"a": 0})

    def test_resize_changes_expectation_from_interval(self):
        barrier = MarkBarrier({"a": 1, "b": 1})
        barrier.resize("a", from_interval=1, count=2, done_delta=1)
        assert barrier.expected_marks("a", 0) == 1
        assert barrier.expected_marks("a", 1) == 2
        assert barrier.expected_marks("b", 1) == 1
        assert barrier.observe_mark("a", 0, 0) == (True, False)
        assert barrier.observe_mark("b", 0, 0) == (True, True)
        # Interval 1 now needs both of a's producers plus b's.
        assert barrier.observe_mark("a", 0, 1) == (True, False)
        assert barrier.observe_mark("b", 0, 1) == (True, False)
        assert barrier.observe_mark("a", 1, 1) == (True, True)

    def test_finished_counts_done_across_origins_and_resizes(self):
        barrier = MarkBarrier({"a": 2, "b": 1})
        barrier.observe_done("a")
        barrier.observe_done("a")
        assert not barrier.finished
        barrier.observe_done("b")
        assert barrier.finished
        grown = MarkBarrier({"a": 1})
        grown.resize("a", from_interval=1, count=2, done_delta=1)
        grown.observe_done("a")
        assert not grown.finished
        grown.observe_done("a")
        assert grown.finished

    @settings(max_examples=200, deadline=None)
    @given(
        producers_a=st.integers(min_value=1, max_value=3),
        producers_b=st.integers(min_value=1, max_value=3),
        intervals=st.integers(min_value=1, max_value=4),
        order_seed=st.randoms(use_true_random=False),
        duplicates=st.booleans(),
    )
    def test_property_interval_closes_exactly_once_all_marked(
        self, producers_a, producers_b, intervals, order_seed, duplicates
    ):
        """Any interleaving of per-edge FIFO mark streams closes every
        interval exactly once, in order, and never before all origins marked."""
        barrier = MarkBarrier({"a": producers_a, "b": producers_b})
        edges = [("a", producer) for producer in range(producers_a)]
        edges += [("b", producer) for producer in range(producers_b)]
        # Per-edge FIFO streams (each producer marks in increasing order,
        # optionally replaying its previous mark), interleaved at random.
        pending = {
            edge: [
                interval
                for interval in range(intervals)
                for _ in range(2 if duplicates else 1)
            ]
            for edge in edges
        }
        seen = {edge: -1 for edge in edges}
        closed = []
        while any(pending.values()):
            edge = order_seed.choice([e for e, left in pending.items() if left])
            interval = pending[edge].pop(0)
            accepted, closable = barrier.observe_mark(edge[0], edge[1], interval)
            assert accepted == (interval > seen[edge])
            if accepted:
                seen[edge] = interval
            if closable:
                closed.append(interval)
                # Close fires only when EVERY edge already marked it.
                assert all(marked >= interval for marked in seen.values())
        assert closed == list(range(intervals))

    @settings(max_examples=200, deadline=None)
    @given(
        before=st.integers(min_value=1, max_value=3),
        delta=st.integers(min_value=-2, max_value=2),
        resize_at=st.integers(min_value=1, max_value=3),
        intervals=st.integers(min_value=2, max_value=5),
        order_seed=st.randoms(use_true_random=False),
    )
    def test_property_close_tracks_resized_producer_count(
        self, before, delta, resize_at, intervals, order_seed
    ):
        """With origin `a` resized mid-run, each interval closes exactly when
        the count *in effect for that interval* has marked on every origin."""
        after = before + delta
        if after < 1:
            after = 1
        barrier = MarkBarrier({"a": before, "b": 1})
        barrier.resize(
            "a", from_interval=resize_at, count=after, done_delta=max(delta, 0)
        )
        closed = []
        for interval in range(intervals):
            expected_a = before if interval < resize_at else after
            marks = [("a", producer) for producer in range(expected_a)]
            marks.append(("b", 0))
            order_seed.shuffle(marks)
            for position, (origin, producer) in enumerate(marks):
                _, closable = barrier.observe_mark(origin, producer, interval)
                if closable:
                    closed.append(interval)
                    assert position == len(marks) - 1, (
                        "interval closed before its last expected mark"
                    )
        assert closed == list(range(intervals))


class TestDagSpecValidation:
    def test_default_wiring_is_a_chain(self):
        spec = TopologySpec(
            "chain",
            [
                StageSpec("one", WordCountOperator(), HashPartitioner(2)),
                StageSpec("two", WindowedAggregate(), HashPartitioner(2)),
            ],
        )
        assert spec.is_chain
        assert spec.upstreams_of("one") == ("source",)
        assert spec.upstreams_of("two") == ("one",)
        assert spec.consumers_of("one") == ["two"]
        assert spec.consumers_of("two") == []

    def test_diamond_wiring(self):
        spec = _diamond_spec()
        assert not spec.is_chain
        assert spec.upstreams_of("branch-a") == ("source",)
        assert spec.upstreams_of("branch-b") == ("source",)
        assert spec.upstreams_of("merge") == ("branch-a", "branch-b")
        assert spec.consumers_of("branch-a") == ["merge"]

    def test_upstream_must_name_an_earlier_stage(self):
        with pytest.raises(ValueError, match="earlier stage"):
            TopologySpec(
                "bad",
                [
                    StageSpec(
                        "one",
                        WordCountOperator(),
                        HashPartitioner(2),
                        upstream=("two",),
                    ),
                    StageSpec("two", WindowedAggregate(), HashPartitioner(2)),
                ],
            )

    def test_duplicate_upstream_rejected(self):
        with pytest.raises(ValueError, match="duplicate upstream"):
            TopologySpec(
                "bad",
                [
                    StageSpec("one", WordCountOperator(), HashPartitioner(2)),
                    StageSpec(
                        "two",
                        WindowedAggregate(),
                        HashPartitioner(2),
                        upstream=("one", "one"),
                    ),
                ],
            )

    def test_source_is_a_reserved_stage_name(self):
        with pytest.raises(ValueError, match="reserved"):
            TopologySpec(
                "bad", [StageSpec("source", WordCountOperator(), HashPartitioner(2))]
            )

    def test_unconsumed_stage_rejected(self):
        with pytest.raises(ValueError, match="no downstream consumer"):
            TopologySpec(
                "bad",
                [
                    StageSpec(
                        "one",
                        WordCountOperator(),
                        HashPartitioner(2),
                        upstream=(),
                    ),
                    StageSpec(
                        "two",
                        WindowedAggregate(),
                        HashPartitioner(2),
                        upstream=(),
                    ),
                ],
            )


class TestMergeContract:
    def test_default_operator_is_not_mergeable(self):
        logic = WordCountOperator()
        assert logic.mergeable is False
        with pytest.raises(NotImplementedError):
            logic.merge("key", [1, 2])

    def test_partial_aggregate_merges_with_its_reducer(self):
        logic = PartialWindowedAggregate(source_tag="a")
        assert logic.mergeable
        assert logic.merge("key", [3.0, 4.0]) == 7.0

    def test_merge_operator_combines_partials(self):
        logic = MergeOperator()
        assert logic.mergeable
        assert logic.merge("key", [2.0, 5.0, 1.0]) == 8.0


class TestDiamondExecution:
    @pytest.fixture(scope="class")
    def outcome(self):
        runtime = TopologyRuntime(
            _diamond_spec(), _config(collect_final_state=True, sanitize=True)
        )
        return runtime.run(_stream())

    def test_source_share_splits_and_merge_sees_everything(self, outcome):
        total = INTERVALS * KEYS * REPEATS
        branches = [outcome.stages["branch-a"], outcome.stages["branch-b"]]
        # The source round-robins chunks: each branch gets a non-empty,
        # disjoint share summing to the full stream.
        assert all(branch.tuples_offered > 0 for branch in branches)
        assert sum(branch.tuples_offered for branch in branches) == total
        assert outcome.tuples_offered == total
        merge = outcome.stages["merge"]
        assert merge.tuples_offered == total
        assert merge.tuples_processed == total

    def test_fan_in_edge_counts(self, outcome):
        assert outcome.stages["branch-a"].upstreams == 1
        assert outcome.stages["branch-b"].upstreams == 1
        assert outcome.stages["merge"].upstreams == 2

    def test_merge_state_shape(self, outcome):
        # Each merge-task payload is a {(tag, task): partial} slot dict; in a
        # multi-interval run the slow branch's tail batches may be clamped to
        # the worker's interval watermark (see worker.py), so exact per-
        # interval recombination is asserted on the single-interval run
        # below — here we check the slots themselves and the branch tags.
        final_state = outcome.stages["merge"].final_state
        assert set(final_state) == set(range(KEYS))
        tags = set()
        for payloads in final_state.values():
            for partials in payloads:
                for source, partial in partials.items():
                    tag, task = source
                    tags.add(tag)
                    assert isinstance(task, int)
                    assert 1 <= partial <= REPEATS
        # Both branches' partials reached the merged state.
        assert tags == {"a", "b"}

    def test_single_interval_recombines_split_partials_exactly(self):
        # One interval = no cross-interval watermark clamping: the last
        # partial stored per (branch, task) slot is that slot's final count,
        # so summing a key's slots must reconstruct its full tuple count.
        runtime = TopologyRuntime(
            _diamond_spec(), _config(collect_final_state=True)
        )
        outcome = runtime.run(_stream()[:1])
        final_state = outcome.stages["merge"].final_state
        assert set(final_state) == set(range(KEYS))
        split = 0
        for key, payloads in final_state.items():
            assert len(payloads) == 1
            assert sum(payloads[0].values()) == REPEATS, key
            if len({tag for tag, _ in payloads[0]}) == 2:
                split += 1
        # The source round-robins chunks, so some keys straddle a chunk
        # boundary and genuinely recombine partials from both branches.
        assert split > 0

    def test_sanitizer_fan_in_checks_fired_clean(self, outcome):
        report = outcome.sanitizer
        assert report is not None
        assert report["violations"] == []
        assert report["checks"]["fan_in_watermark"] > 0
        assert report["checks"]["fan_in_conservation"] >= 4

    def test_per_stage_interval_accounting(self, outcome):
        for stage in outcome.stages.values():
            processed = stage.metrics.series("processed_tuples")
            assert len(processed) == INTERVALS
            assert sum(processed) == stage.tuples_processed


class TestDiamondElasticResize:
    @pytest.fixture(scope="class")
    def outcome(self):
        # Grow one branch mid-run: the merge stage's barrier must track the
        # resized producer count from the next interval on.
        runtime = TopologyRuntime(
            _diamond_spec(),
            _config(
                collect_final_state=True,
                sanitize=True,
                scale_at=(1, "branch-a", 1),
            ),
        )
        return runtime.run(_stream())

    def test_resize_happened_on_the_branch(self, outcome):
        events = outcome.resilience["scale_events"]
        assert len(events) == 1
        assert events[0]["stage"] == "branch-a"
        assert events[0]["to_tasks"] == events[0]["from_tasks"] + 1

    def test_merge_conserves_through_the_resize(self, outcome):
        # Every tuple still reaches the merge stage exactly once: the fan-in
        # barrier keeps closing intervals with the grown producer count.
        total = INTERVALS * KEYS * REPEATS
        merge = outcome.stages["merge"]
        assert merge.tuples_offered == total
        assert merge.tuples_processed == total
        assert set(merge.final_state) == set(range(KEYS))

    def test_sanitizer_clean_through_the_resize(self, outcome):
        report = outcome.sanitizer
        assert report is not None
        assert report["violations"] == []
        assert report["checks"]["fan_in_watermark"] > 0
