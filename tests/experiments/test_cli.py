"""End-to-end tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.cli import main
from repro.experiments import ResultsStore


def _run(args):
    return main(args)


@pytest.fixture
def results_dir(tmp_path):
    return str(tmp_path / "results")


#: Small enough for the fast test subset: a 3-interval planner figure.
RUN_ARGS = [
    "run",
    "fig18",
    "--scale",
    "tiny",
    "--set",
    "num_keys=400",
    "--set",
    "tuples_per_interval=5000",
    "--set",
    "num_tasks=4",
    "--param",
    "adjustments=3",
    "--param",
    "thetas=[0.08]",
]


class TestRunCommand:
    def test_run_writes_loadable_run_dir(self, results_dir, capsys):
        assert _run(RUN_ARGS + ["--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "Fig. 18" in out
        store = ResultsStore(results_dir)
        run_ids = store.run_ids()
        assert len(run_ids) == 1
        loaded = store.load(run_ids[0])
        assert loaded.metadata.scale == "tiny"
        assert len(loaded.result.rows) == 3
        assert loaded.spec.params["adjustments"] == 3

    def test_run_no_save(self, results_dir, capsys):
        assert _run(RUN_ARGS + ["--results-dir", results_dir, "--no-save"]) == 0
        assert "Fig. 18" in capsys.readouterr().out
        assert ResultsStore(results_dir).run_ids() == []

    def test_run_spec_file(self, tmp_path, results_dir, capsys):
        spec_path = tmp_path / "myspec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "experiment": "fig18",
                    "scale": "tiny",
                    "overrides": {
                        "num_keys": 400,
                        "tuples_per_interval": 5000,
                        "num_tasks": 4,
                    },
                    "params": {"adjustments": 3, "thetas": [0.08]},
                    "seed": 4,
                }
            )
        )
        assert _run(["run", str(spec_path), "--results-dir", results_dir]) == 0
        store = ResultsStore(results_dir)
        loaded = store.load(store.run_ids()[0])
        assert loaded.metadata.seed == 4
        # CLI flags override the file.
        assert (
            _run(
                ["run", str(spec_path), "--seed", "9", "--results-dir", results_dir]
            )
            == 0
        )
        seeds = {meta.seed for meta in store.list_runs()}
        assert seeds == {4, 9}

    def test_rerun_stored_run_json(self, results_dir):
        """The advertised `repro run <run-dir>/run.json` re-run workflow."""
        _run(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
        store = ResultsStore(results_dir)
        first_id = store.run_ids()[0]
        run_json = str(store.run_dir(first_id) / "run.json")
        assert _run(["run", run_json, "--results-dir", results_dir, "--quiet"]) == 0
        runs = store.run_ids()
        assert len(runs) == 2
        rerun_id = next(run_id for run_id in runs if run_id != first_id)
        assert store.load(rerun_id).result.rows == store.load(first_id).result.rows

    def test_run_unknown_experiment(self, results_dir):
        with pytest.raises(SystemExit, match="unknown experiment"):
            _run(["run", "fig99", "--results-dir", results_dir])

    def test_run_bad_assignment(self, results_dir):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            _run(["run", "fig18", "--param", "broken", "--results-dir", results_dir])


class TestReportCommand:
    def test_report_latest_renders_stored_run(self, results_dir, capsys):
        _run(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
        capsys.readouterr()
        assert _run(["report", "--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "Fig. 18" in out
        assert "routing_table_size" in out
        assert "scale=tiny" in out

    def test_report_by_id(self, results_dir, capsys):
        _run(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
        run_id = ResultsStore(results_dir).latest_run_id()
        capsys.readouterr()
        assert _run(["report", run_id, "--results-dir", results_dir]) == 0
        assert run_id in capsys.readouterr().out

    def test_report_empty_store(self, results_dir):
        with pytest.raises(SystemExit, match="no stored runs"):
            _run(["report", "--results-dir", results_dir])

    def test_report_unknown_id(self, results_dir):
        _run(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
        with pytest.raises(SystemExit, match="no run"):
            _run(["report", "nope", "--results-dir", results_dir])


class TestListCommand:
    def test_list_shows_experiments_and_strategies(self, results_dir, capsys):
        assert _run(["list", "--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig21" in out
        assert "mixed" in out and "storm" in out
        assert "no stored runs" in out

    def test_list_runs(self, results_dir, capsys):
        _run(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
        capsys.readouterr()
        assert _run(["list", "--runs", "--results-dir", results_dir]) == 0
        out = capsys.readouterr().out
        assert "fig18-" in out
        assert "experiments:" not in out
