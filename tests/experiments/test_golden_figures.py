"""Golden comparison: the spec-based figure drivers reproduce the pre-refactor
output row for row.

The JSON files under ``golden/`` were captured from the hand-written drivers
(as of the PR that introduced the ExperimentSpec runner) at the ``tiny``
scale.  Every figure must produce the same rows, in the same order, with the
same values — except wall-clock timing columns, which are inherently
non-deterministic and are excluded from the comparison.  Golden files store
columns alphabetically (``sort_keys``), so column *sets* are compared rather
than column order.
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments import figures

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Wall-clock measurements: real on every run, but never reproducible.
TIMING_COLUMNS = {"avg_generation_time_ms"}

#: Figures cheap enough to golden-check in the fast CI subset; the rest of
#: the suite (simulations, brute-force planners) runs with the slow marker.
FAST_FIGURES = {"fig07", "fig08", "fig10", "fig17", "fig18", "fig19", "fig20", "fig21"}

ALL_PARAMS = [
    pytest.param(fig_id, marks=() if fig_id in FAST_FIGURES else pytest.mark.slow)
    for fig_id in sorted(figures.ALL_FIGURES)
]


def _strip_timing(rows):
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in rows
    ]


def _values_match(expected, actual) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        expected_f, actual_f = float(expected), float(actual)
        if math.isnan(expected_f) or math.isnan(actual_f):
            return math.isnan(expected_f) and math.isnan(actual_f)
        return math.isclose(expected_f, actual_f, rel_tol=1e-9, abs_tol=1e-12)
    return expected == actual


@pytest.mark.parametrize("fig_id", ALL_PARAMS)
def test_figure_matches_golden(fig_id):
    golden = json.loads((GOLDEN_DIR / f"{fig_id}.json").read_text())
    result = figures.ALL_FIGURES[fig_id]("tiny")

    assert result.figure == golden["figure"]
    assert result.title == golden["title"]
    assert result.parameters == golden["parameters"]

    expected_rows = _strip_timing(golden["rows"])
    actual_rows = _strip_timing(result.rows)
    assert len(actual_rows) == len(expected_rows), (
        f"{fig_id}: {len(actual_rows)} rows, golden has {len(expected_rows)}"
    )
    for index, (expected, actual) in enumerate(zip(expected_rows, actual_rows)):
        assert set(actual) == set(expected), f"{fig_id} row {index}: column mismatch"
        for column in expected:
            assert _values_match(expected[column], actual[column]), (
                f"{fig_id} row {index} column {column!r}: "
                f"golden {expected[column]!r} != actual {actual[column]!r}"
            )


def test_every_figure_has_a_golden():
    missing = [
        fig_id
        for fig_id in figures.ALL_FIGURES
        if not (GOLDEN_DIR / f"{fig_id}.json").is_file()
    ]
    assert not missing, f"golden files missing for: {missing}"
