"""Tests for the experiment harness, scale presets and reporting."""

import pytest

from repro.experiments import (
    ExperimentResult,
    build_partitioner,
    format_table,
    get_scale,
    run_planner_sequence,
    run_simulation,
)
from repro.experiments.config import SCALES
from repro.experiments.harness import STRATEGY_NAMES
from repro.operators import WordCountOperator
from repro.workloads import ZipfWorkload


def _workload(intervals=4, num_keys=800, fluctuation=0.8, num_tasks=5):
    return ZipfWorkload(
        num_keys=num_keys,
        tuples_per_interval=20_000,
        fluctuation=fluctuation,
        num_tasks=num_tasks,
        intervals=intervals,
        seed=0,
    ).take(intervals)


class TestScales:
    def test_presets_exist(self):
        for name in ("tiny", "small", "paper"):
            assert name in SCALES
            scale = get_scale(name)
            assert scale.num_keys > 0 and scale.num_tasks > 0

    def test_paper_defaults_match_table2(self):
        paper = get_scale("paper")
        assert paper.num_keys == 100_000
        assert paper.skew == 0.85
        assert paper.theta_max == 0.08
        assert paper.beta == 1.5
        assert paper.max_table_size == 3_000
        assert paper.num_tasks == 10

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_scaled_override(self):
        tiny = get_scale("tiny").scaled(num_keys=123)
        assert tiny.num_keys == 123
        assert get_scale(tiny) is tiny


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_experiment_result_helpers(self):
        result = ExperimentResult(figure="Fig. X", title="demo")
        result.add_row(series="s1", x=1, y=10)
        result.add_row(series="s1", x=2, y=20)
        result.add_row(series="s2", x=1, y=5)
        assert len(result) == 3
        assert result.column("y") == [10, 20, 5]
        assert result.filter(series="s2") == [{"series": "s2", "x": 1, "y": 5}]
        series = result.series("series", "x", "y")
        assert series["s1"] == [(1, 10), (2, 20)]
        text = result.to_text()
        assert "Fig. X" in text and "demo" in text


class TestBuildPartitioner:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_every_strategy_constructible(self, name):
        partitioner = build_partitioner(name, 4, theta_max=0.1, max_table_size=100)
        assert partitioner.num_tasks == 4
        assert 0 <= partitioner.route("some-key") < 4

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            build_partitioner("bogus", 4)


class TestRunPlannerSequence:
    def test_core_algorithm_run(self):
        run = run_planner_sequence(
            "mixed",
            _workload(),
            num_tasks=5,
            theta_max=0.05,
            max_table_size=200,
        )
        assert run.rebalances >= 1
        assert run.avg_generation_time > 0
        assert 0 <= run.avg_migration_fraction <= 1
        assert run.avg_table_size > 0

    def test_readj_run(self):
        run = run_planner_sequence(
            "readj", _workload(intervals=3), num_tasks=5, theta_max=0.05
        )
        assert run.algorithm == "readj"
        assert run.rebalances >= 1

    def test_compact_run_records_estimation_error(self):
        run = run_planner_sequence(
            "mixed",
            _workload(intervals=3),
            num_tasks=5,
            theta_max=0.05,
            use_compact=True,
            discretization_degree=8,
        )
        assert run.algorithm == "compact-mixed"
        assert run.load_estimation_errors
        assert all(error < 0.1 for error in run.load_estimation_errors)

    def test_force_every_interval(self):
        workload = _workload(intervals=3, fluctuation=0.0)
        lazy = run_planner_sequence(
            "minmig", workload, num_tasks=5, theta_max=10.0
        )
        forced = run_planner_sequence(
            "minmig", workload, num_tasks=5, theta_max=10.0, force_every_interval=True
        )
        assert lazy.rebalances == 0
        assert forced.rebalances == 3


class TestRunSimulation:
    def test_simulation_produces_metrics(self):
        collector = run_simulation(
            "mixed",
            _workload(intervals=4),
            WordCountOperator(),
            num_tasks=5,
            theta_max=0.1,
            max_table_size=200,
        )
        assert len(collector) == 4
        assert collector.mean_throughput > 0
        assert collector.label == "mixed"

    def test_ideal_never_rebalances(self):
        collector = run_simulation(
            "ideal", _workload(intervals=3), WordCountOperator(), num_tasks=5
        )
        assert collector.rebalance_count == 0
        assert collector.mean_skewness == pytest.approx(1.0)
