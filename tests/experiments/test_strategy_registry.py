"""Tests for the strategy registry and its parity with the legacy shim."""

import warnings

import pytest

from repro.core.statistics import IntervalStats
from repro.core.strategy import (
    STANDARD_TUNABLES,
    StrategySpec,
    get_strategy,
    has_strategy,
    list_strategies,
    register_strategy,
    strategy_names,
)
from repro.core.strategy import _REGISTRY
from repro.experiments.harness import STRATEGY_NAMES, build_partitioner

TUNING = dict(
    theta_max=0.07, max_table_size=150, beta=1.6, window=2, seed=3, readj_sigma=2.5
)


def _route_trace(partitioner, keys, intervals):
    """Routes before and after every rebalancing round (same call sequence)."""
    trace = [partitioner.assign_batch(keys)]
    for index, snapshot in enumerate(intervals):
        partitioner.on_interval_end(IntervalStats.from_frequencies(index, snapshot))
        trace.append(partitioner.assign_batch(keys))
    return trace


class TestRegistryParity:
    """Every evaluation label builds the same-routing partitioner via the old
    ``build_partitioner`` shim and the new ``StrategySpec`` path."""

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_same_routing(self, name, skewed_frequencies):
        keys = sorted(skewed_frequencies)
        intervals = [skewed_frequencies] * 2
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = build_partitioner(name, 5, **TUNING)
        modern = get_strategy(name).build(5, **TUNING)
        assert type(legacy) is type(modern)
        assert _route_trace(legacy, keys, intervals) == _route_trace(
            modern, keys, intervals
        )

    def test_shim_is_deprecated(self):
        with pytest.deprecated_call():
            build_partitioner("storm", 4)

    def test_every_evaluation_label_registered(self):
        for name in STRATEGY_NAMES:
            assert has_strategy(name)
        assert set(STRATEGY_NAMES) <= set(strategy_names())


class TestStrategySpec:
    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("bogus")
        assert not has_strategy("bogus")

    def test_case_insensitive_lookup(self):
        assert get_strategy("MIXED") is get_strategy("mixed")

    def test_standard_tunables_are_filtered(self):
        # Static hashing ignores theta_max instead of crashing on it.
        partitioner = get_strategy("storm").build(4, theta_max=0.01, seed=1)
        assert partitioner.num_tasks == 4

    def test_non_standard_tunable_rejected(self):
        with pytest.raises(TypeError, match="unknown tunables"):
            get_strategy("mixed").build(4, not_a_knob=1)

    def test_spec_rejects_undeclared_tunable_names(self):
        with pytest.raises(ValueError, match="non-standard tunables"):
            StrategySpec(name="x", builder=lambda n: None, tunables=("bogus_knob",))

    def test_metadata_flags(self):
        assert get_strategy("mixed").core_algorithm == "mixed"
        assert get_strategy("mixed").rebalancing
        assert get_strategy("readj").core_algorithm is None
        assert get_strategy("readj").rebalancing
        assert not get_strategy("storm").rebalancing
        assert not get_strategy("storm").theta_sensitive
        assert get_strategy("mintable").theta_sensitive

    def test_third_party_registration_plugs_into_harness(self):
        from repro.baselines import HashPartitioner
        from repro.experiments.sweeps import simulate
        from repro.experiments.config import get_scale

        @register_strategy(
            "test-hash2", tunables=("seed",), description="test-only strategy"
        )
        def _build(num_tasks, *, seed=0):
            return HashPartitioner(num_tasks, seed=seed + 1)

        try:
            spec = get_strategy("test-hash2")
            assert spec.description == "test-only strategy"
            # Usable by the simulation harness without touching harness code.
            scale = get_scale("tiny").scaled(num_tasks=4)
            from repro.operators import WordCountOperator
            from repro.workloads import ZipfWorkload

            workload = ZipfWorkload(
                num_keys=300, tuples_per_interval=5_000, num_tasks=4, intervals=2
            ).take(2)
            collector = simulate(
                scale, "test-hash2", workload, WordCountOperator(), seed=0
            )
            assert collector.mean_throughput > 0
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("test-hash2")(_build)
        finally:
            _REGISTRY.pop("test-hash2", None)

    def test_listing_includes_descriptions(self):
        specs = {spec.name: spec for spec in list_strategies()}
        assert "mixed" in specs and specs["mixed"].description
        assert set(spec.name for spec in list_strategies()) == set(strategy_names())

    def test_standard_tunables_cover_harness_kwargs(self):
        for knob in ("theta_max", "max_table_size", "beta", "window", "seed", "readj_sigma"):
            assert knob in STANDARD_TUNABLES


class TestPlannerSequenceDispatch:
    def test_static_strategy_rejected(self):
        from repro.experiments.harness import run_planner_sequence

        with pytest.raises(KeyError, match="never rebalances"):
            run_planner_sequence("storm", [], num_tasks=4)

    def test_compact_strategy_streams(self):
        from repro.experiments.harness import run_planner_sequence
        from repro.workloads import ZipfWorkload

        workload = ZipfWorkload(
            num_keys=400,
            tuples_per_interval=10_000,
            fluctuation=0.8,
            num_tasks=4,
            intervals=3,
        ).take(3)
        run = run_planner_sequence(
            "compact", workload, num_tasks=4, theta_max=0.05, max_table_size=100
        )
        assert run.rebalances >= 1
