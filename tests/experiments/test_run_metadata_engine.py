"""Engine/host provenance on stored runs (satellite).

Every run must record which execution engine produced it (fluid simulator vs
process runtime) and the producing host's CPU count, so stored wall-clock
numbers are comparable across machines.
"""

import os

from repro.experiments.specs import ExperimentSpec, RunMetadata, run
from repro.experiments.store import ResultsStore


def _tiny_spec():
    return ExperimentSpec(
        "fig07",
        scale="tiny",
        overrides={"num_keys": 200, "tuples_per_interval": 2_000, "intervals": 2},
        params={"task_counts": [4], "key_domains": [200]},
    )


class TestEngineMetadata:
    def test_fluid_runs_are_tagged(self):
        outcome = run(_tiny_spec())
        assert outcome.metadata.engine == "fluid"
        assert outcome.metadata.host_cpu_count == os.cpu_count()

    def test_round_trips_through_the_store(self, tmp_path):
        store = ResultsStore(tmp_path)
        outcome = run(_tiny_spec(), store=store)
        loaded = store.load(outcome.metadata.run_id)
        assert loaded.metadata.engine == "fluid"
        assert loaded.metadata.host_cpu_count == outcome.metadata.host_cpu_count

    def test_legacy_payloads_without_engine_default_to_fluid(self):
        legacy = {
            "run_id": "r",
            "experiment": "fig07",
            "figure": "fig07",
            "scale": "tiny",
            "seed": 0,
            "wall_time_seconds": 1.0,
            "created_at": "2026-01-01T00:00:00+00:00",
        }
        metadata = RunMetadata.from_dict(legacy)
        assert metadata.engine == "fluid"
        assert metadata.host_cpu_count is None
