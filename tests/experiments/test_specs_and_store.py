"""Tests for the ExperimentSpec runner and the ResultsStore."""

import json
import math

import pytest

from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    PlannerRun,
    ResultsStore,
    run,
    run_batch,
)
from repro.experiments.config import get_scale
from repro.experiments.reporting import format_table, mean
from repro.experiments.specs import (
    ExperimentRun,
    RunMetadata,
    experiment_names,
    get_experiment,
)

TINY_OVERRIDES = {
    "num_keys": 400,
    "tuples_per_interval": 5_000,
    "intervals": 3,
    "num_tasks": 4,
}


def _quick_spec(**kwargs) -> ExperimentSpec:
    return ExperimentSpec(
        "fig18",
        scale="tiny",
        overrides=TINY_OVERRIDES,
        params={"adjustments": 3, "thetas": (0.08,)},
        **kwargs,
    )


class TestSpecRunner:
    def test_all_figures_registered(self):
        assert experiment_names() == [f"fig{index:02d}" for index in range(7, 22)]
        assert get_experiment("fig07").description

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run(ExperimentSpec("fig99"))

    def test_run_produces_result_and_metadata(self):
        outcome = _quick_spec(seed=5).run()
        assert isinstance(outcome, ExperimentRun)
        assert outcome.result.figure == "Fig. 18"
        assert len(outcome.result.rows) == 3
        meta = outcome.metadata
        assert meta.experiment == "fig18"
        assert meta.scale == "tiny"
        assert meta.seed == 5
        assert meta.run_id.startswith("fig18-")
        assert meta.wall_time_seconds > 0
        assert meta.created_at

    def test_overrides_reach_the_driver(self):
        spec = _quick_spec()
        assert spec.resolve_scale().num_keys == 400
        outcome = spec.run()
        assert outcome.result.parameters["K"] == 400

    def test_strategies_field_merges_into_params(self):
        spec = ExperimentSpec(
            "fig19",
            scale="tiny",
            overrides=TINY_OVERRIDES,
            strategies=["mixed"],
            sweep={"windows": [1, 2]},
        )
        result = spec.run().result
        assert {row["algorithm"] for row in result.rows} == {"mixed"}
        assert {row["window"] for row in result.rows} == {1, 2}

    def test_run_accepts_bare_name(self):
        outcome = run(
            ExperimentSpec(
                "fig20",
                scale="tiny",
                overrides=TINY_OVERRIDES,
                params={"betas": (1.5,), "thetas": (0.08,)},
            )
        )
        assert len(outcome.result.rows) == 1

    def test_run_batch_preserves_order(self):
        seen = []
        outcomes = run_batch(
            [_quick_spec(seed=0), _quick_spec(seed=1)],
            on_result=lambda outcome: seen.append(outcome.metadata.seed),
        )
        assert seen == [0, 1]
        assert [o.metadata.seed for o in outcomes] == [0, 1]

    def test_spec_json_round_trip(self):
        spec = ExperimentSpec(
            "fig09",
            scale=get_scale("tiny").scaled(num_keys=123),
            overrides={"num_tasks": 3},
            seed=7,
            strategies=("mixed",),
            sweep={"thetas": (0.02, 0.3)},
            params={"windows": (1,)},
        )
        reloaded = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reloaded.experiment == "fig09"
        assert reloaded.resolve_scale() == spec.resolve_scale()
        assert reloaded.seed == 7
        assert tuple(reloaded.strategies) == ("mixed",)
        assert reloaded.driver_params()["thetas"] == [0.02, 0.3]


class TestResultsStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        outcome = run(_quick_spec(seed=2), store=store)
        run_id = outcome.metadata.run_id

        assert store.run_ids() == [run_id]
        loaded = store.load(run_id)
        assert loaded.metadata == outcome.metadata
        assert loaded.result.figure == outcome.result.figure
        assert loaded.result.rows == outcome.result.rows
        assert loaded.result.parameters == outcome.result.parameters
        assert loaded.spec == outcome.spec

        run_dir = tmp_path / "results" / run_id
        assert (run_dir / "run.json").is_file()
        assert (run_dir / "report.txt").read_text().startswith("Fig. 18")

    def test_reloaded_spec_reruns_identically(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        outcome = run(_quick_spec(), store=store)
        rerun = store.load(outcome.metadata.run_id).spec.run()
        assert rerun.result.rows == outcome.result.rows

    def test_collision_gets_suffixed(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        first = run(_quick_spec())
        second = ExperimentRun(
            spec=first.spec,
            result=first.result,
            metadata=RunMetadata.from_dict(first.metadata.to_dict()),
        )
        store.save(first)
        store.save(second)
        assert second.metadata.run_id == f"{first.metadata.run_id}-2"
        assert len(store.run_ids()) == 2

    def test_latest_and_list(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        assert store.latest_run_id() is None
        assert store.list_runs() == []
        run(_quick_spec(seed=0), store=store)
        latest = run(_quick_spec(seed=1), store=store)
        assert store.latest_run_id() == latest.metadata.run_id
        assert [meta.seed for meta in store.list_runs()] == [0, 1]

    def test_missing_run(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        with pytest.raises(KeyError, match="no run"):
            store.load("nope")

    def test_planner_run_artifact_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        outcome = run(_quick_spec(), store=store)
        planner = PlannerRun(
            algorithm="mixed",
            rebalances=2,
            generation_times=[0.1, 0.2],
            migration_fractions=[0.3, 0.1],
            table_sizes=[10, 12],
            max_thetas=[0.05, 0.02],
        )
        store.save_artifact(outcome.metadata.run_id, "mixed", planner)
        assert store.artifact_names(outcome.metadata.run_id) == ["mixed"]
        loaded = store.load_artifact(outcome.metadata.run_id, "mixed")
        assert isinstance(loaded, PlannerRun)
        assert loaded == planner
        assert loaded.avg_migration_fraction == pytest.approx(0.2)

    def test_metrics_collector_artifact_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        outcome = run(_quick_spec(), store=store)
        collector = MetricsCollector(label="mixed")
        collector.record(
            IntervalMetrics(
                interval=0,
                throughput=10.0,
                latency_ms=1.5,
                rebalanced=True,
                per_task_load={0: 1.0, 1: 2.0},
            )
        )
        store.save_artifact(outcome.metadata.run_id, "sim.mixed", collector)
        loaded = store.load_artifact(outcome.metadata.run_id, "sim.mixed")
        assert isinstance(loaded, MetricsCollector)
        assert loaded.label == "mixed"
        assert len(loaded) == 1
        assert loaded.intervals[0].per_task_load == {0: 1.0, 1: 2.0}
        assert loaded.intervals[0].rebalanced is True

    def test_missing_artifact(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        outcome = run(_quick_spec(), store=store)
        with pytest.raises(KeyError, match="no artifact"):
            store.load_artifact(outcome.metadata.run_id, "nope")


class TestNanAggregates:
    def test_planner_run_distinguishes_no_rebalances(self):
        empty = PlannerRun(algorithm="mixed")
        assert math.isnan(empty.avg_migration_fraction)
        assert math.isnan(empty.avg_generation_time)
        assert math.isnan(empty.avg_table_size)
        assert empty.final_table_size == 0

        zero = PlannerRun(algorithm="mixed", migration_fractions=[0.0])
        assert zero.avg_migration_fraction == 0.0

    def test_mean_helper(self):
        assert mean([1.0, 3.0]) == 2.0
        assert math.isnan(mean([]))
        assert mean([], empty=0.0) == 0.0

    def test_format_table_renders_nan_as_dash(self):
        text = format_table([{"x": float("nan"), "y": 1.0}])
        assert "—" in text

    def test_experiment_result_nan_round_trips_through_store(self, tmp_path):
        result = ExperimentResult(figure="Fig. X", title="nan demo")
        result.add_row(metric=float("nan"))
        spec = _quick_spec()
        meta = RunMetadata(
            run_id="x-1",
            experiment="fig18",
            figure="Fig. X",
            scale="tiny",
            seed=0,
            wall_time_seconds=0.0,
            created_at="2026-07-27T00:00:00+00:00",
        )
        store = ResultsStore(tmp_path / "results")
        store.save(ExperimentRun(spec=spec, result=result, metadata=meta))
        loaded = store.load("x-1")
        assert math.isnan(loaded.result.rows[0]["metric"])
        assert "—" in loaded.result.to_text()
