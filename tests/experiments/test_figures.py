"""Shape tests for the figure drivers (run at a reduced scale).

These are the integration tests that tie the reproduction together: each driver
must produce the series the corresponding figure plots, and the headline
qualitative claims of the paper — who wins, and in which direction the curves
move — must hold even at the reduced scale.
"""

import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentScale

#: An extra-small preset so the full figure suite stays fast under pytest.
TEST_SCALE = ExperimentScale(
    name="test",
    num_keys=1_500,
    tuples_per_interval=15_000,
    intervals=4,
    sim_intervals=6,
    num_tasks=6,
    max_table_size=300,
)


def _mean(values):
    values = [value for value in values if value is not None]
    return sum(values) / len(values) if values else 0.0


class TestFig07:
    def test_skewness_grows_with_tasks_and_shrinks_with_keys(self):
        result = figures.fig07_hash_skewness(
            TEST_SCALE, task_counts=(5, 20), key_domains=(500, 20_000)
        )
        assert len(result) == 4 * 5  # 4 series x 5 percentiles
        few_tasks = _mean(
            [row["skewness"] for row in result.filter(panel="a", series="ND=5")]
        )
        many_tasks = _mean(
            [row["skewness"] for row in result.filter(panel="a", series="ND=20")]
        )
        assert many_tasks > few_tasks
        small_domain = _mean(
            [row["skewness"] for row in result.filter(panel="b", series="K=500")]
        )
        large_domain = _mean(
            [row["skewness"] for row in result.filter(panel="b", series="K=20000")]
        )
        assert small_domain > large_domain

    def test_cdf_is_monotone(self):
        result = figures.fig07_hash_skewness(TEST_SCALE, task_counts=(10,), key_domains=(1_500,))
        for series in {row["series"] for row in result.rows}:
            rows = [row for row in result.rows if row["series"] == series]
            values = [row["skewness"] for row in sorted(rows, key=lambda r: r["percentile"])]
            assert values == sorted(values)


class TestPlannerSweeps:
    def test_fig08_mixed_cheaper_migration_than_mintable(self):
        result = figures.fig08_vary_task_instances(
            TEST_SCALE, task_counts=(5, 10), windows=(1,)
        )
        mixed = _mean([row["migration_cost_pct"] for row in result.filter(algorithm="mixed")])
        mintable = _mean(
            [row["migration_cost_pct"] for row in result.filter(algorithm="mintable")]
        )
        assert mixed <= mintable + 1e-9

    def test_fig09_migration_cost_decreases_with_theta(self):
        result = figures.fig09_vary_theta(TEST_SCALE, thetas=(0.02, 0.3), windows=(1,))
        tight = _mean(
            [row["migration_cost_pct"] for row in result.filter(theta_max=0.02, algorithm="mixed")]
        )
        loose = _mean(
            [row["migration_cost_pct"] for row in result.filter(theta_max=0.3, algorithm="mixed")]
        )
        assert loose <= tight + 1e-9

    def test_fig10_has_both_algorithms_per_domain(self):
        result = figures.fig10_vary_key_domain(
            TEST_SCALE, key_domains=(500, 1_500), windows=(1,)
        )
        assert {row["algorithm"] for row in result.rows} == {"mixed", "mintable"}
        assert {row["num_keys"] for row in result.rows} == {500, 1_500}

    def test_fig12_readj_slower_than_mixed(self):
        result = figures.fig12_vary_fluctuation(
            TEST_SCALE, fluctuations=(0.5,), algorithms=("mixed", "readj")
        )
        mixed_time = _mean(
            [row["avg_generation_time_ms"] for row in result.filter(algorithm="mixed")]
        )
        readj_time = _mean(
            [row["avg_generation_time_ms"] for row in result.filter(algorithm="readj")]
        )
        assert readj_time > mixed_time

    def test_fig17_loose_cap_cheaper_than_tight_cap(self):
        result = figures.fig17_table_cap(
            TEST_SCALE, cap_exponents=(1, 11), thetas=(0.08,)
        )
        tight = _mean([row["migration_cost_pct"] for row in result.filter(cap_exponent=1)])
        loose = _mean([row["migration_cost_pct"] for row in result.filter(cap_exponent=11)])
        assert loose <= tight + 1e-9

    def test_fig18_table_grows_with_adjustments(self):
        result = figures.fig18_table_growth(TEST_SCALE, adjustments=5, thetas=(0.02,))
        sizes = [row["routing_table_size"] for row in result.rows]
        assert sizes == sorted(sizes)
        bound = result.parameters["convergence_bound"]
        assert all(size <= bound for size in sizes)

    def test_fig19_mixed_below_mintable(self):
        result = figures.fig19_window_size(TEST_SCALE, windows=(1, 3))
        for window in (1, 3):
            mixed = _mean(
                [
                    row["migration_cost_pct"]
                    for row in result.filter(window=window, algorithm="mixed")
                ]
            )
            mintable = _mean(
                [
                    row["migration_cost_pct"]
                    for row in result.filter(window=window, algorithm="mintable")
                ]
            )
            assert mixed <= mintable + 1e-9

    def test_fig20_21_beta_direction(self):
        table = figures.fig20_beta_table_size(TEST_SCALE, betas=(1.0, 2.0), thetas=(0.08,))
        small_beta = _mean([row["routing_table_size"] for row in table.filter(beta=1.0)])
        large_beta = _mean([row["routing_table_size"] for row in table.filter(beta=2.0)])
        assert large_beta <= small_beta + 1e-9
        migration = figures.fig21_beta_migration(
            TEST_SCALE, betas=(1.0, 2.0), thetas=(0.08,)
        )
        assert len(migration) == 2


class TestFig11:
    def test_compaction_panel_a_series(self):
        """Panel (a) contains the uncompacted baseline plus one point per R, and
        the estimation error grows with coarser discretisation.

        The order-of-magnitude *time* gap of the paper only materialises for
        key domains far larger than this test scale (see EXPERIMENTS.md note 3),
        so the timing is only checked for presence, not for ordering.
        """
        result = figures.fig11_discretization(
            TEST_SCALE, degrees=(8, 64), thetas=(0.08,)
        )
        panel_a = result.filter(panel="a")
        degrees = [row["degree"] for row in panel_a]
        assert "original-key-space" in degrees and 8 in degrees and 64 in degrees
        assert all(row["avg_generation_time_ms"] > 0 for row in panel_a)
        fine = [row for row in panel_a if row["degree"] == 8][0]
        coarse = [row for row in panel_a if row["degree"] == 64][0]
        assert coarse["load_estimation_error_pct"] >= fine["load_estimation_error_pct"]

    def test_estimation_error_small(self):
        result = figures.fig11_discretization(TEST_SCALE, degrees=(8,), thetas=(0.08,))
        errors = [
            row["load_estimation_error_pct"] for row in result.filter(panel="b")
        ]
        assert all(error < 5.0 for error in errors)


@pytest.mark.slow
class TestSimulationFigures:
    def test_fig13_ideal_bounds_and_mixed_close(self):
        # Small fluctuation: the regime where the paper's ordering is sharpest.
        result = figures.fig13_throughput_latency(
            TEST_SCALE, fluctuations=(0.1,), strategies=("storm", "mixed", "ideal")
        )
        rows = {row["strategy"]: row for row in result.filter(fluctuation=0.1)}
        assert rows["ideal"]["throughput"] >= rows["mixed"]["throughput"] - 1e-6
        assert rows["mixed"]["throughput"] >= rows["storm"]["throughput"] - 1e-6
        assert rows["mixed"]["latency_ms"] <= rows["storm"]["latency_ms"]
        assert rows["ideal"]["skewness"] == pytest.approx(1.0)

    def test_fig14_mixed_beats_storm_on_social(self):
        result = figures.fig14_real_world_throughput(TEST_SCALE, thetas=(0.08,))
        social = result.filter(panel="a-social", theta_max=0.08)
        throughput = {row["strategy"]: row["throughput"] for row in social}
        assert throughput["mixed"] >= throughput["storm"]
        stock = result.filter(panel="b-stock", theta_max=0.08)
        assert {row["strategy"] for row in stock} == {"storm", "readj", "mixed", "mintable"}

    def test_fig15_mixed_recovers_after_scale_out(self):
        result = figures.fig15_scale_out(
            TEST_SCALE, thetas=(0.1,), strategies=("mixed", "storm")
        )
        rows = result.filter(panel="a-social", strategy="mixed", theta_max=0.1)
        add_at = result.parameters["added_at_interval"]
        before = _mean([row["throughput"] for row in rows if row["interval"] < add_at])
        after = _mean(
            [row["throughput"] for row in rows if row["interval"] > add_at + 1]
        )
        assert after >= before * 0.9  # no lasting collapse after the scale-out

    def test_fig16_mixed_best_throughput(self):
        result = figures.fig16_tpch_q5(
            TEST_SCALE, thetas=(0.1,), strategies=("mixed", "storm")
        )
        mixed = _mean(
            [row["throughput"] for row in result.filter(strategy="mixed", theta_max=0.1)]
        )
        storm = _mean(
            [row["throughput"] for row in result.filter(strategy="storm", theta_max=0.1)]
        )
        assert mixed > storm
