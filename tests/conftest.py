"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.core.assignment import AssignmentFunction
from repro.core.statistics import IntervalStats, StatisticsStore


@pytest.fixture
def skewed_frequencies() -> Dict[str, float]:
    """A 200-key snapshot with three dominant hot keys (deterministic)."""
    rng = random.Random(0)
    freqs = {f"k{i}": float(rng.randint(1, 20)) for i in range(200)}
    freqs["k0"] = 1000.0
    freqs["k1"] = 800.0
    freqs["k2"] = 600.0
    return freqs


@pytest.fixture
def skewed_store(skewed_frequencies) -> StatisticsStore:
    """A one-interval statistics store built from the skewed snapshot."""
    store = StatisticsStore(window=1)
    store.push(IntervalStats.from_frequencies(1, skewed_frequencies))
    return store


@pytest.fixture
def hashed_assignment() -> AssignmentFunction:
    """A fresh mixed assignment over 5 tasks with an empty routing table."""
    return AssignmentFunction.hashed(5, seed=42)
