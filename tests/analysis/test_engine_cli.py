"""The lint engine plumbing: suppressions, baseline, CLI, repo cleanliness."""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import lint_paths
from repro.analysis.findings import Baseline, Finding, parse_suppressions
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = """\
def pump(in_queue, out_queue):
    item = in_queue.get()
    out_queue.put({"k": 1})
"""


@pytest.fixture
def bad_file(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SOURCE)
    return target


class TestSuppressions:
    def test_parse_named_and_bare(self):
        source = (
            "x = 1  # repro-lint: ignore[RPL001, RPL002]\n"
            "y = 2  # repro-lint: ignore\n"
            "z = 3\n"
        )
        suppressions = parse_suppressions(source)
        assert suppressions[1] == {"RPL001", "RPL002"}
        assert suppressions[2] == {"*"}
        assert 3 not in suppressions

    def test_named_suppression_silences_only_that_rule(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def pump(in_queue, out_queue):\n"
            "    item = in_queue.get()  # repro-lint: ignore[RPL002]\n"
            '    out_queue.put({"k": 1})  # repro-lint: ignore[RPL002]\n'
        )
        findings = lint_paths([target], root=tmp_path)
        # RPL002 silenced on both lines; the dict payload (RPL001) survives.
        assert [finding.rule for finding in findings] == ["RPL001"]

    def test_bare_suppression_silences_everything(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def pump(in_queue, out_queue):\n"
            '    out_queue.put({"k": 1})  # repro-lint: ignore\n'
        )
        assert lint_paths([target], root=tmp_path) == []


class TestBaseline:
    def _finding(self, message="m", line=1):
        return Finding(
            rule="RPL001", path="a.py", line=line, col=0, message=message
        )

    def test_round_trip_filters_known_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        loaded = Baseline.load(path)
        assert loaded.filter_new([self._finding(line=99)]) == []

    def test_extra_instances_of_a_known_key_still_fail(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        fresh = Baseline.load(path).filter_new(
            [self._finding(line=1), self._finding(line=2)]
        )
        assert len(fresh) == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestLintCli:
    def test_findings_exit_nonzero_and_render(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL002" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def add(a, b):\n    return a + b\n")
        assert main(["lint", str(clean)]) == 0

    def test_rule_selection(self, bad_file, capsys):
        assert main(["lint", "--rules", "RPL001", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL002" not in out

    def test_unknown_rule_id_fails_loudly(self, bad_file):
        with pytest.raises(SystemExit, match="unknown rule id"):
            main(["lint", "--rules", "RPL999", str(bad_file)])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert rule_id in out

    def test_json_format(self, bad_file, capsys):
        assert main(["lint", "--format", "json", str(bad_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {finding["rule"] for finding in payload["findings"]} == {
            "RPL001",
            "RPL002",
        }

    def test_baseline_grandfathers_then_strict_ignores_it(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                    str(bad_file),
                ]
            )
            == 0
        )
        assert baseline.is_file()
        # Grandfathered: same findings, exit 0.
        assert main(["lint", "--baseline", str(baseline), str(bad_file)]) == 0
        # Strict ignores the baseline: the CI gate demands a clean tree.
        assert (
            main(
                ["lint", "--strict", "--baseline", str(baseline), str(bad_file)]
            )
            == 1
        )

    def test_missing_path_fails_loudly(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["lint", "no/such/dir"])


class TestRepoIsClean:
    def test_src_has_zero_unsuppressed_findings(self):
        findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert findings == [], "\n".join(
            finding.render() for finding in findings
        )
