"""The runtime protocol sanitizer: clean runs stay clean, broken fakes don't."""

import pytest

from repro.analysis.sanitizer import SanitizerReport, StageSanitizer
from repro.baselines.hash_only import HashPartitioner
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.operators.wordcount import WordCountOperator
from repro.runtime.bench import RuntimeSpec, merged_sanitizer_report, run_bench
from repro.runtime.messages import (
    EndInterval,
    EndOfStream,
    TupleBatch,
)
from repro.runtime.topology import (
    RuntimeConfig,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
)


def _batch(keys, interval=0):
    return TupleBatch(
        interval=interval, sent_at=0.0, keys=list(keys), values=[None] * len(keys)
    )


@pytest.fixture
def sanitizer():
    report = SanitizerReport()
    return StageSanitizer("stage", report), report


class TestViolationDetection:
    """Deliberately-broken fakes: each violation class must be caught."""

    def test_unregistered_message_type(self, sanitizer):
        monitor, report = sanitizer

        class Rogue:
            pass

        monitor.on_send(0, Rogue())
        assert [v.check for v in report.violations] == ["message_type"]
        assert "Rogue" in report.violations[0].message

    def test_put_after_close(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_send(0, EndOfStream())
        monitor.on_send(1, _batch([1]))  # other task: still open
        monitor.on_send(0, _batch([2]))  # closed task: violation
        assert [v.check for v in report.violations] == ["put_after_close"]

    def test_non_monotone_interval_marker(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_send(0, EndInterval(interval=0))
        monitor.on_send(0, EndInterval(interval=1))
        monitor.on_send(1, EndInterval(interval=0))  # per-task, still fine
        monitor.on_send(0, EndInterval(interval=1))  # repeat: violation
        assert [v.check for v in report.violations] == ["watermark"]

    def test_non_monotone_interval_close(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_close(0)
        monitor.on_close(1)
        monitor.on_close(0)
        assert [v.check for v in report.violations] == ["watermark"]

    def test_resume_without_pause(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_resume()
        assert [v.check for v in report.violations] == ["pause_resume"]

    def test_missing_resume_caught_at_finalize(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_pause([1, 2])
        monitor.finalize(offered=0.0, processed=0.0, shed=0.0)
        checks = [v.check for v in report.violations]
        assert "pause_resume" in checks

    def test_conservation_imbalance(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_send(0, _batch(range(10)))
        monitor.finalize(offered=12.0, processed=8.0, shed=0.0)
        conservation = [
            v for v in report.violations if v.check == "conservation"
        ]
        assert len(conservation) == 2  # offered != enqueued+shed, processed != enqueued

    def test_balanced_books_pass(self, sanitizer):
        monitor, report = sanitizer
        monitor.on_send(0, _batch(range(10)))
        monitor.on_pause([1])
        monitor.on_resume()
        monitor.finalize(offered=12.0, processed=10.0, shed=2.0)
        assert report.ok
        assert report.to_dict()["checks"]["conservation"] == 2

    def test_wrapped_router_pause_resume_pairs(self, sanitizer):
        monitor, report = sanitizer

        class FakeRouter:
            def __init__(self):
                self.calls = []

            def pause(self, keys):
                self.calls.append(("pause", tuple(keys)))

            def resume(self):
                self.calls.append(("resume",))
                return 0

        router = FakeRouter()
        monitor.wrap_router(router)
        router.pause([1, 2])
        router.resume()
        monitor.finalize(offered=0.0, processed=0.0, shed=0.0)
        assert report.ok
        assert router.calls == [("pause", (1, 2)), ("resume",)]


class TestSanitizedTopologyRun:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = TopologySpec(
            "sanitized",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(emit_updates=True),
                    partitioner=HashPartitioner(2, seed=0),
                    key_mapper=_bucket,
                ),
                StageSpec(
                    name="agg",
                    logic=WindowedAggregate(window=16),
                    partitioner=HashPartitioner(2, seed=1),
                ),
            ],
        )
        stream = [
            [(key, None) for key in range(40) for _ in range(10)]
            for _ in range(2)
        ]
        config = RuntimeConfig(
            parallelism=2, batch_size=64, queue_capacity=4,
            service_time_us=0.0, sanitize=True,
        )
        return TopologyRuntime(spec, config).run(stream)

    def test_clean_run_has_empty_violation_report(self, outcome):
        assert outcome.sanitizer is not None
        assert outcome.sanitizer["ok"] is True
        assert outcome.sanitizer["violations"] == []

    def test_checks_actually_ran(self, outcome):
        checks = outcome.sanitizer["checks"]
        assert checks["message_type"] > 0
        assert checks["watermark"] > 0
        assert checks["conservation"] >= 4  # two stages, two books each

    def test_report_attached_to_every_stage(self, outcome):
        for stage in outcome.stages.values():
            assert stage.sanitizer is outcome.sanitizer

    def test_sanitizer_off_by_default(self):
        spec = TopologySpec(
            "plain",
            [
                StageSpec(
                    name="counter",
                    logic=WordCountOperator(),
                    partitioner=HashPartitioner(2, seed=0),
                )
            ],
        )
        outcome = TopologyRuntime(
            spec,
            RuntimeConfig(
                parallelism=2, batch_size=64, queue_capacity=4,
                service_time_us=0.0,
            ),
        ).run([[(key, None) for key in range(50)]])
        assert outcome.sanitizer is None


def _bucket(key):
    """Module-level key mapper (picklable under any start method)."""
    return key % 5


class TestSanitizedChainBench:
    def test_tiny_tpch_q5_chain_under_sanitize_is_clean(self):
        # The satellite acceptance run: the full 3-stage Q5 chain with live
        # migration (mixed strategy) under the sanitizer, zero violations.
        spec = RuntimeSpec(
            workload="tpch_q5_chain",
            strategies=["mixed"],
            scale="tiny",
            overrides={"tuples_per_interval": 4000, "sim_intervals": 3},
            service_time_us=0.0,
            sanitize=True,
        )
        _, outcomes = run_bench(spec, output_path=None)
        report = merged_sanitizer_report(outcomes)
        assert report is not None and report["enabled"]
        assert report["violations"] == []
        assert report["checks"]["message_type"] > 0
