"""The six protocol lint rules: one positive and one negative per hazard."""

import ast
from pathlib import Path

from repro.analysis.engine import ModuleContext, Project
from repro.analysis.findings import parse_suppressions
from repro.analysis.rules import (
    AtomicCheckpointWriteRule,
    BlockingCallRule,
    ForkSafetyRule,
    LoadRatioRule,
    MessageDisciplineRule,
    PauseResumePairingRule,
)


def run_rule(rule_cls, source, relpath="pkg/mod.py"):
    """Lint one source string with one rule; return its findings."""
    source = source.strip() + "\n"
    tree = ast.parse(source)
    module = ModuleContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    rule = rule_cls(module, Project([module], Path(".")))
    rule.visit(tree)
    return rule.findings


class TestRPL001MessageDiscipline:
    def test_flags_raw_dict_payload(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
def go(out_queue):
    out_queue.put({"kind": "done"})
""",
        )
        assert len(findings) == 1
        assert findings[0].rule == "RPL001"
        assert "dict" in findings[0].message

    def test_flags_lambda_and_traced_dict_name(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
def go(out_queue):
    out_queue.put(lambda x: x)
    payload = {"a": 1}
    out_queue.put(payload)
""",
        )
        assert len(findings) == 2

    def test_flags_locally_defined_class(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
def go(out_queue):
    class Inner:
        pass
    out_queue.put(Inner())
""",
        )
        assert len(findings) == 1
        assert "Inner" in findings[0].message

    def test_flags_closure_reference(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
def go(out_queue):
    def callback():
        return 1
    out_queue.put(callback)
""",
        )
        assert len(findings) == 1
        assert "closure" in findings[0].message

    def test_flags_unregistered_type_in_runtime_modules(self):
        source = """
def go(out_queue):
    out_queue.put(SomethingElse(x=1))
"""
        inside = run_rule(
            MessageDisciplineRule, source, relpath="src/repro/runtime/new.py"
        )
        outside = run_rule(MessageDisciplineRule, source, relpath="pkg/mod.py")
        assert len(inside) == 1 and "not registered" in inside[0].message
        assert outside == []

    def test_registered_types_pass(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
from repro.runtime.messages import TupleBatch, EndInterval
from repro.runtime.queues import abortable_put

def go(out_queue, should_abort):
    out_queue.put(TupleBatch(interval=0, sent_at=0.0, keys=[], values=[]))
    abortable_put(out_queue, EndInterval(interval=0), should_abort)
""",
            relpath="src/repro/runtime/new.py",
        )
        assert findings == []

    def test_untraceable_names_get_benefit_of_the_doubt(self):
        findings = run_rule(
            MessageDisciplineRule,
            """
def forward(out_queue, item):
    out_queue.put(item)
""",
        )
        assert findings == []


class TestRPL002BlockingCalls:
    def test_flags_bare_get_and_put(self):
        findings = run_rule(
            BlockingCallRule,
            """
def pump(in_queue, out_queue):
    item = in_queue.get()
    out_queue.put(item)
""",
        )
        assert [f.rule for f in findings] == ["RPL002", "RPL002"]

    def test_flags_egress_receivers_too(self):
        findings = run_rule(
            BlockingCallRule,
            """
def emit(egress, batch):
    egress.put(batch)
""",
        )
        assert len(findings) == 1

    def test_timeout_and_nowait_variants_pass(self):
        findings = run_rule(
            BlockingCallRule,
            """
def pump(in_queue, out_queue):
    item = in_queue.get(timeout=0.1)
    out_queue.put(item, timeout=0.1)
    out_queue.put_nowait(item)
    return in_queue.get_nowait()
""",
        )
        assert findings == []

    def test_abort_aware_receivers_are_exempt(self):
        findings = run_rule(
            BlockingCallRule,
            """
def dispatch(self, task, batch):
    self.abortable_queues[task].put(batch)
    for guarded_queue in self.guarded_queues:
        guarded_queue.put(batch)
""",
        )
        assert findings == []

    def test_sanctioned_wrapper_module_is_exempt(self):
        findings = run_rule(
            BlockingCallRule,
            """
def abortable_get(queue):
    return queue.get()
""",
            relpath="src/repro/runtime/queues.py",
        )
        assert findings == []

    def test_non_queueish_receivers_pass(self):
        findings = run_rule(
            BlockingCallRule,
            """
def lookup(marks):
    return marks.get()
""",
        )
        assert findings == []


class TestRPL003PauseResumePairing:
    def test_flags_pause_then_return(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(router, keys):
    router.pause(keys)
    return keys
""",
        )
        assert len(findings) == 1
        assert "returns" in findings[0].message

    def test_flags_pause_falling_off_function_end(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(self, keys):
    self._paused_keys.update(keys)
""",
        )
        assert len(findings) == 1
        assert "falls off" in findings[0].message

    def test_pause_then_resume_passes(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(router, keys):
    router.pause(keys)
    ship(keys)
    router.resume()
""",
        )
        assert findings == []

    def test_pending_migration_handoff_passes(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def begin(self, router, keys):
    router.pause(keys)
    self._pending = object()
""",
        )
        assert findings == []

    def test_try_finally_resume_passes(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(router, keys):
    try:
        router.pause(keys)
        ship(keys)
    finally:
        router.resume()
""",
        )
        assert findings == []

    def test_raise_counts_as_abort_path(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(router, keys):
    router.pause(keys)
    raise RuntimeError("abort")
""",
        )
        assert findings == []

    def test_pause_primitive_itself_is_exempt(self):
        findings = run_rule(
            PauseResumePairingRule,
            """
def pause(self, keys):
    self._paused_keys.update(keys)
""",
        )
        assert findings == []

    def test_report_accounting_field_is_not_a_trigger(self):
        # The simulator's MigrationReport.paused_keys bookkeeping set is not
        # the runtime's _paused_keys pause buffer.
        findings = run_rule(
            PauseResumePairingRule,
            """
def migrate(report, moves):
    for move in moves:
        report.paused_keys.add(move.key)
""",
        )
        assert findings == []


class TestRPL004ForkSafety:
    def test_flags_global_and_module_mutable_and_rng(self):
        findings = run_rule(
            ForkSafetyRule,
            """
import random
_CACHE = {}

def worker_main(worker_id):
    global _MODE
    _CACHE[worker_id] = random.random()
""",
        )
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "global _MODE" in messages
        assert "_CACHE" in messages
        assert "random.random" in messages

    def test_operators_modules_are_in_scope(self):
        findings = run_rule(
            ForkSafetyRule,
            """
_SEEN = []

def record(key):
    _SEEN.append(key)
""",
            relpath="src/repro/operators/custom.py",
        )
        assert len(findings) == 1

    def test_non_worker_modules_are_out_of_scope(self):
        findings = run_rule(
            ForkSafetyRule,
            """
import random
_CACHE = {}

def coordinator():
    _CACHE["x"] = random.random()
""",
            relpath="src/repro/experiments/driver.py",
        )
        assert findings == []

    def test_explicit_generators_and_local_state_pass(self):
        findings = run_rule(
            ForkSafetyRule,
            """
import numpy as np

def worker_main(worker_id, seed):
    rng = np.random.default_rng(seed)
    local = {}
    local[worker_id] = rng.normal()
    return local
""",
        )
        assert findings == []


class TestRPL005LoadRatios:
    def test_flags_division_by_average_load_call(self):
        findings = run_rule(
            LoadRatioRule,
            """
from repro.core.load import average_load

def skewness(loads):
    return max(loads.values()) / average_load(loads)
""",
        )
        assert len(findings) == 1
        assert "average_load" in findings[0].message

    def test_flags_division_by_traced_mean_name(self):
        findings = run_rule(
            LoadRatioRule,
            """
from repro.core.load import safe_mean

def ratio(samples, x):
    mean = safe_mean(samples)
    return x / mean
""",
        )
        assert len(findings) == 1

    def test_core_load_module_is_exempt(self):
        findings = run_rule(
            LoadRatioRule,
            """
def max_skewness(loads):
    return max(loads.values()) / average_load(loads)
""",
            relpath="src/repro/core/load.py",
        )
        assert findings == []

    def test_total_based_forms_pass(self):
        findings = run_rule(
            LoadRatioRule,
            """
def max_skewness(loads):
    total = sum(loads.values())
    if total <= 0:
        return 0.0
    return max(loads.values()) / total * len(loads)
""",
        )
        assert findings == []


class TestRPL006AtomicCheckpointWrite:
    def test_flags_bare_open_write_on_checkpoint_path(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
def save(checkpoint_path, blob):
    with open(checkpoint_path, "wb") as handle:
        handle.write(blob)
""",
        )
        assert len(findings) == 1
        assert findings[0].rule == "RPL006"
        assert "atomic_write" in findings[0].message

    def test_flags_manifest_join_and_fstring_paths(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
import json
import os

def save(root, task, payload):
    with open(os.path.join(root, "manifest.json"), "w") as handle:
        json.dump(payload, handle)
    with open(f"{root}/ckpt-{task}.bin", "wb") as handle:
        handle.write(b"x")
""",
        )
        assert len(findings) == 2

    def test_flags_pathlib_write_methods(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
def save(ckpt_path, manifest_path):
    ckpt_path.write_bytes(b"x")
    manifest_path.write_text("{}")
""",
        )
        assert len(findings) == 2

    def test_flags_pathlib_open_in_write_mode(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
def save(checkpoint_path):
    with checkpoint_path.open("w") as handle:
        handle.write("{}")
""",
        )
        assert len(findings) == 1

    def test_reads_and_unrelated_writes_pass(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
def load(checkpoint_path, report_path):
    with open(checkpoint_path, "rb") as handle:
        blob = handle.read()
    with open(report_path, "w") as handle:
        handle.write("ok")
    return blob
""",
        )
        assert findings == []

    def test_checkpoint_module_is_exempt(self):
        findings = run_rule(
            AtomicCheckpointWriteRule,
            """
import os

def atomic_write_bytes(path, blob):
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)
""",
            relpath="src/repro/runtime/resilience/checkpoint.py",
        )
        assert findings == []
