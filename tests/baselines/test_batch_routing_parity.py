"""Property tests: the batch routing API agrees with scalar routing.

For every partitioner strategy, ``assign_batch``/``route_snapshot`` must
produce exactly the destinations the scalar ``route``/``route_bulk`` calls
would have produced — including across interval boundaries, where rebalancing
strategies install a new assignment and the key→task memo must be dropped.

Each property drives *twin* instances (identical construction, identical
inputs): one through the scalar path, one through the batch path.  This keeps
the comparison valid for stateful strategies (PKG's load estimates, shuffle's
round-robin pointer) whose routing decisions depend on their own history.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DKGPartitioner,
    HashPartitioner,
    PartialKeyGrouping,
    ReadjPartitioner,
    ShufflePartitioner,
)
from repro.core.controller import ControllerConfig
from repro.core.statistics import IntervalStats
from repro.engine.routing import MixedRoutingPartitioner

NUM_TASKS = 4

#: strategy name -> zero-argument factory producing a fresh partitioner.
FACTORIES = {
    "hash": lambda: HashPartitioner(NUM_TASKS, seed=7),
    "hash-consistent": lambda: HashPartitioner(NUM_TASKS, seed=7, consistent=True),
    "shuffle": lambda: ShufflePartitioner(NUM_TASKS),
    "shuffle-least-loaded": lambda: ShufflePartitioner(NUM_TASKS, least_loaded=True),
    "pkg": lambda: PartialKeyGrouping(NUM_TASKS, seed=7),
    "readj": lambda: ReadjPartitioner(NUM_TASKS, theta_max=0.05, seed=7),
    "dkg": lambda: DKGPartitioner(NUM_TASKS, theta_max=0.05, seed=7),
    "mixed": lambda: MixedRoutingPartitioner(
        NUM_TASKS, ControllerConfig(theta_max=0.05, algorithm="mixed"), seed=7
    ),
    "mintable": lambda: MixedRoutingPartitioner(
        NUM_TASKS, ControllerConfig(theta_max=0.05, algorithm="mintable"), seed=7
    ),
    "minmig": lambda: MixedRoutingPartitioner(
        NUM_TASKS, ControllerConfig(theta_max=0.05, algorithm="minmig"), seed=7
    ),
}

keys_strategy = st.lists(
    st.one_of(st.integers(0, 30), st.sampled_from(["alpha", "beta", "gamma", "delta"])),
    min_size=1,
    max_size=25,
)

snapshots_strategy = st.lists(
    st.dictionaries(
        st.integers(0, 20),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=15,
    ),
    min_size=1,
    max_size=3,
)


def scalar_route_snapshot(partitioner, snapshot):
    """The pre-batch-API inner loop of the simulator (reference semantics)."""
    per_task = {task: {} for task in range(partitioner.num_tasks)}
    for key, count in snapshot.items():
        if count <= 0:
            continue
        for task, share in partitioner.route_bulk(key, count).items():
            bucket = per_task.setdefault(task, {})
            bucket[key] = bucket.get(key, 0.0) + share
    return per_task


def assert_routing_equal(scalar, batch, strategy):
    assert set(scalar) == set(batch), strategy
    for task in scalar:
        assert set(scalar[task]) == set(batch[task]), (strategy, task)
        for key, count in scalar[task].items():
            assert batch[task][key] == pytest.approx(count), (strategy, task, key)


@pytest.mark.parametrize("strategy", sorted(FACTORIES))
@given(keys=keys_strategy)
@settings(max_examples=20, deadline=None)
def test_assign_batch_matches_scalar_route(strategy, keys):
    scalar_part = FACTORIES[strategy]()
    batch_part = FACTORIES[strategy]()
    scalar = [scalar_part.route(key) for key in keys]
    batch = batch_part.assign_batch(keys)
    assert batch == scalar


@pytest.mark.parametrize("strategy", sorted(FACTORIES))
@given(snapshots=snapshots_strategy)
@settings(max_examples=15, deadline=None)
def test_route_snapshot_matches_scalar_loop(strategy, snapshots):
    """Snapshot routing parity, including across rebalancing intervals.

    Between snapshots both twins observe the interval statistics, so
    rebalancing strategies (readj, dkg, mixed, …) install new assignments —
    the batch twin's memoised routes must be invalidated and re-agree with
    the scalar twin on the next snapshot.
    """
    scalar_part = FACTORIES[strategy]()
    batch_part = FACTORIES[strategy]()
    for interval, snapshot in enumerate(snapshots):
        scalar = scalar_route_snapshot(scalar_part, snapshot)
        batch = batch_part.route_snapshot(snapshot, NUM_TASKS)
        assert_routing_equal(scalar, batch, strategy)
        stats = IntervalStats.from_frequencies(interval, snapshot)
        scalar_part.on_interval_end(stats)
        batch_part.on_interval_end(stats.copy())


@pytest.mark.parametrize("strategy", sorted(FACTORIES))
def test_route_snapshot_rejects_mismatched_num_tasks(strategy):
    partitioner = FACTORIES[strategy]()
    with pytest.raises(ValueError):
        partitioner.route_snapshot({1: 1.0}, NUM_TASKS + 1)


def test_mixed_type_keys_do_not_collide_in_route_memo():
    """1, 1.0, True and ±0.0 are equal as dict keys but hash differently —
    the route memo must not conflate them (regression)."""
    keys = [1, 1.0, True, 0.0, -0.0, "1"]
    part = FACTORIES["hash"]()
    batch = part.assign_batch(keys)
    fresh = FACTORIES["hash"]()
    assert batch == [fresh.route(key) for key in keys]


def test_mixed_type_keys_do_not_collide_in_pkg_candidates():
    pkg = FACTORIES["pkg"]()
    pkg.candidate_tasks(2)  # prime the cache with the int key
    fresh = FACTORIES["pkg"]()
    assert pkg.candidate_tasks(2.0) == fresh.candidate_tasks(2.0)
    assert pkg.candidate_tasks(True) == fresh.candidate_tasks(True)


def test_route_cache_invalidated_on_scale_out():
    partitioner = HashPartitioner(NUM_TASKS, seed=1)
    keys = list(range(50))
    before = partitioner.assign_batch(keys)
    partitioner.scale_out(NUM_TASKS * 3)
    after = partitioner.assign_batch(keys)
    fresh = HashPartitioner(NUM_TASKS * 3, seed=1)
    assert after == [fresh.route(key) for key in keys]
    assert any(a != b for a, b in zip(before, after))


def test_route_cache_invalidated_on_rebalance():
    """A skewed snapshot forces a rebalance; memoised routes must follow F'."""
    partitioner = MixedRoutingPartitioner(
        NUM_TASKS, ControllerConfig(theta_max=0.01, algorithm="mixed"), seed=3
    )
    snapshot = {key: 1.0 for key in range(40)}
    snapshot[0] = 10_000.0
    partitioner.route_snapshot(snapshot)
    result = partitioner.on_interval_end(IntervalStats.from_frequencies(0, snapshot))
    assert result is not None, "the skewed snapshot should trigger a rebalance"
    routed = partitioner.route_snapshot(snapshot)
    assignment = partitioner.assignment
    for task, freqs in routed.items():
        for key in freqs:
            assert assignment(key) == task
