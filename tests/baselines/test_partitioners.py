"""Tests for the baseline partitioners: hash, shuffle, PKG, Readj, DKG."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DKGPartitioner,
    HashPartitioner,
    PartialKeyGrouping,
    ReadjPartitioner,
    ShufflePartitioner,
)
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.statistics import IntervalStats


def _skewed(num_keys=200, seed=0):
    rng = random.Random(seed)
    freqs = {f"k{i}": float(rng.randint(1, 20)) for i in range(num_keys)}
    freqs["k0"], freqs["k1"], freqs["k2"] = 800.0, 600.0, 400.0
    return freqs


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        part = HashPartitioner(6, seed=1)
        for key in range(200):
            task = part.route(key)
            assert 0 <= task < 6
            assert part.route(key) == task

    def test_route_bulk_default(self):
        part = HashPartitioner(4)
        assert part.route_bulk("k", 10) == {part.route("k"): 10}
        assert part.route_bulk("k", 0) == {}
        with pytest.raises(ValueError):
            part.route_bulk("k", -1)

    def test_consistent_variant_scale_out_moves_few_keys(self):
        part = HashPartitioner(5, seed=1, consistent=True)
        before = {key: part.route(key) for key in range(2000)}
        part.scale_out(6)
        after = {key: part.route(key) for key in range(2000)}
        moved = sum(1 for key in before if before[key] != after[key])
        assert moved < 2000 * 0.5

    def test_scale_out_cannot_shrink(self):
        part = HashPartitioner(5)
        with pytest.raises(ValueError):
            part.scale_out(4)

    def test_never_rebalances(self):
        part = HashPartitioner(5)
        stats = IntervalStats.from_frequencies(0, _skewed())
        assert part.on_interval_end(stats) is None
        assert part.supports_stateful()

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestShufflePartitioner:
    def test_round_robin(self):
        part = ShufflePartitioner(3)
        assert [part.route("x") for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_mode(self):
        part = ShufflePartitioner(3, least_loaded=True)
        destinations = [part.route("x") for _ in range(9)]
        counts = {task: destinations.count(task) for task in range(3)}
        assert set(counts.values()) == {3}

    def test_route_bulk_spreads_evenly(self):
        part = ShufflePartitioner(4)
        shares = part.route_bulk("k", 100)
        assert sum(shares.values()) == pytest.approx(100)
        assert all(share == pytest.approx(25) for share in shares.values())

    def test_not_stateful(self):
        assert not ShufflePartitioner(2).supports_stateful()

    def test_interval_end_resets_and_scale_out(self):
        part = ShufflePartitioner(2, least_loaded=True)
        part.route_bulk("k", 10)
        part.on_interval_end(IntervalStats(0))
        part.scale_out(3)
        shares = part.route_bulk("k", 30)
        assert sum(shares.values()) == pytest.approx(30)
        assert len(shares) == 3


class TestPartialKeyGrouping:
    def test_candidates_are_stable_per_key(self):
        part = PartialKeyGrouping(8, seed=2)
        for key in ("a", "b", "c"):
            assert part.candidate_tasks(key) == part.candidate_tasks(key)
            assert len(part.candidate_tasks(key)) == 2

    def test_route_only_uses_candidates(self):
        part = PartialKeyGrouping(8, seed=2)
        for key in range(50):
            candidates = set(part.candidate_tasks(key))
            for _ in range(5):
                assert part.route(key) in candidates

    def test_split_balances_hot_key(self):
        part = PartialKeyGrouping(4, seed=0)
        shares = part.route_bulk("hot", 1000)
        assert sum(shares.values()) == pytest.approx(1000)
        assert len(shares) == 2
        low, high = sorted(shares.values())
        assert high / max(low, 1) < 1.5
        assert part.partials_per_key("hot") == 2
        assert part.total_partials() == 2

    def test_balances_better_than_hashing_on_skew(self):
        freqs = _skewed()
        pkg = PartialKeyGrouping(5, seed=3)
        hashed = HashPartitioner(5, seed=3)
        pkg_loads = {task: 0.0 for task in range(5)}
        for key, count in freqs.items():
            for task, share in pkg.route_bulk(key, count).items():
                pkg_loads[task] += share
        hash_loads = load_from_costs(freqs, hashed.route, 5)
        assert max_balance_indicator(pkg_loads) < max_balance_indicator(hash_loads)

    def test_interval_end_resets_split_counts(self):
        part = PartialKeyGrouping(4, seed=0)
        part.route_bulk("hot", 100)
        part.on_interval_end(IntervalStats(0))
        assert part.total_partials() == 0

    def test_not_stateful_and_params(self):
        part = PartialKeyGrouping(4, merge_period_ms=10.0)
        assert not part.supports_stateful()
        assert part.merge_period_ms == 10.0
        with pytest.raises(ValueError):
            PartialKeyGrouping(4, choices=0)

    def test_scale_out(self):
        part = PartialKeyGrouping(4, seed=0)
        part.scale_out(6)
        assert all(task < 6 for task in part.candidate_tasks("x"))


class TestReadjPartitioner:
    def test_rebalances_skewed_workload(self):
        part = ReadjPartitioner(5, theta_max=0.1, sigma=2.0, seed=1)
        stats = IntervalStats.from_frequencies(0, _skewed())
        before = max_balance_indicator(
            load_from_costs(_skewed(), part.route, 5)
        )
        result = part.on_interval_end(stats)
        assert result is not None
        assert result.max_theta < before
        assert result.generation_time > 0
        # The installed assignment reflects the plan.
        for key in _skewed():
            assert part.route(key) == result.assignment(key)

    def test_no_plan_when_balanced(self):
        part = ReadjPartitioner(5, theta_max=0.5, seed=1)
        stats = IntervalStats.from_frequencies(0, {f"k{i}": 10.0 for i in range(500)})
        assert part.on_interval_end(stats) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReadjPartitioner(5, theta_max=-1)
        with pytest.raises(ValueError):
            ReadjPartitioner(5, sigma=-1)

    def test_scale_out_keeps_table(self):
        part = ReadjPartitioner(5, theta_max=0.05, seed=1)
        part.on_interval_end(IntervalStats.from_frequencies(0, _skewed()))
        table_before = part.assignment.routing_table.size
        part.scale_out(6)
        assert part.num_tasks == 6
        assert part.assignment.routing_table.size == table_before


class TestDKGPartitioner:
    def test_rebalances_heavy_keys(self):
        part = DKGPartitioner(5, heavy_factor=5.0, theta_max=0.1, seed=1)
        stats = IntervalStats.from_frequencies(0, _skewed())
        before = max_balance_indicator(load_from_costs(_skewed(), part.route, 5))
        result = part.on_interval_end(stats)
        assert result is not None
        assert result.max_theta < before

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DKGPartitioner(5, heavy_factor=0)

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_routes_in_range(self, num_tasks):
        part = DKGPartitioner(num_tasks)
        for key in range(50):
            assert 0 <= part.route(key) < num_tasks
