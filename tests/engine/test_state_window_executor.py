"""Tests for keyed state, sliding windows, the executor model and backpressure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.backpressure import admissible_fraction, throttled_loads
from repro.engine.executor import ExecutorConfig, TaskExecutor
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple
from repro.engine.window import SlidingWindow


class TestStreamTuple:
    def test_rekey_and_with_stream(self):
        tup = StreamTuple(key="a", value=1, interval=3)
        assert tup.rekey("b").key == "b"
        assert tup.rekey("b").value == 1
        assert tup.with_stream("left").stream == "left"
        assert tup.stream == "default"


class TestSlidingWindow:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_eviction_order(self):
        window = SlidingWindow(2)
        assert window.append(1, "a") == []
        assert window.append(2, "b") == []
        assert window.append(3, "c") == [1]
        assert window.intervals() == (2, 3)
        assert window.payloads() == ["b", "c"]

    def test_reappend_same_interval_replaces(self):
        window = SlidingWindow(3)
        window.append(1, "a")
        window.append(1, "b")
        assert window.get(1) == "b"
        assert len(window) == 1

    def test_decreasing_interval_rejected(self):
        window = SlidingWindow(3)
        window.append(5, "a")
        with pytest.raises(ValueError):
            window.append(4, "b")

    def test_contains_and_clear(self):
        window = SlidingWindow(2)
        window.append(1, "a")
        assert 1 in window and 2 not in window
        window.clear()
        assert len(window) == 0

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=40), st.integers(1, 5))
    @settings(max_examples=50)
    def test_never_exceeds_size(self, intervals, size):
        window = SlidingWindow(size)
        for interval in sorted(intervals):
            window.append(interval, interval)
            assert len(window) <= size


class TestKeyedState:
    def test_update_and_sizes(self):
        state = KeyedState(window=2)
        state.update("a", 1, payload={"x": 1}, size=5.0)
        state.update("a", 2, payload={"x": 2}, size=3.0)
        assert state.key_size("a") == 8.0
        assert state.total_size() == 8.0
        assert state.size_map() == {"a": 8.0}
        assert state.latest_payload("a") == {"x": 2}

    def test_window_expiry(self):
        state = KeyedState(window=2)
        for interval in range(1, 5):
            state.update("a", interval, payload=interval, size=1.0)
        assert state.key_size("a") == 2.0
        assert state.payloads("a") == [3, 4]

    def test_explicit_expire(self):
        state = KeyedState(window=2)
        state.update("a", 1, payload=1, size=1.0)
        state.update("b", 1, payload=1, size=1.0)
        state.expire(5)
        assert len(state) == 0

    def test_accumulate_counter(self):
        state = KeyedState(window=1)
        state.accumulate("a", 1, 2.0)
        state.accumulate("a", 1, 3.0)
        assert state.key_size("a") == 5.0

    def test_accumulate_custom_payload(self):
        state = KeyedState(window=1)
        state.accumulate("a", 1, 1.0, payload_update=lambda old: (old or []) + ["x"])
        state.accumulate("a", 1, 1.0, payload_update=lambda old: (old or []) + ["y"])
        assert state.latest_payload("a") == ["x", "y"]

    def test_extract_install_roundtrip(self):
        source = KeyedState(window=3)
        target = KeyedState(window=3)
        for interval in range(1, 4):
            source.accumulate("hot", interval, float(interval))
        snapshot = source.extract("hot")
        assert "hot" not in source
        target.install("hot", snapshot)
        assert target.key_size("hot") == 6.0
        assert target.payloads("hot") == [1.0, 2.0, 3.0]

    def test_extract_unknown_key_is_empty(self):
        assert KeyedState().extract("missing") == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            KeyedState().update("a", 1, payload=None, size=-1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            KeyedState(window=0)


class TestTaskExecutor:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(capacity=0)
        with pytest.raises(ValueError):
            ExecutorConfig(capacity=10, interval_seconds=0)
        with pytest.raises(ValueError):
            ExecutorConfig(capacity=10, max_backlog=-1)

    def test_underload_processes_everything(self):
        executor = TaskExecutor(ExecutorConfig(capacity=100, interval_seconds=1))
        outcome = executor.run_interval(50)
        assert outcome.processed == 50
        assert outcome.backlog == 0
        assert outcome.shed == 0
        assert outcome.utilization == pytest.approx(0.5)

    def test_overload_accumulates_backlog(self):
        executor = TaskExecutor(ExecutorConfig(capacity=100, interval_seconds=1))
        outcome = executor.run_interval(150)
        assert outcome.processed == 100
        assert outcome.backlog == 50
        second = executor.run_interval(100)
        assert second.processed == 100
        assert second.backlog == 50

    def test_backlog_cap_sheds(self):
        executor = TaskExecutor(
            ExecutorConfig(capacity=100, interval_seconds=1, max_backlog=20)
        )
        outcome = executor.run_interval(200)
        assert outcome.processed == 100
        assert outcome.backlog == 20
        assert outcome.shed == 80

    def test_latency_grows_with_utilization(self):
        executor = TaskExecutor(ExecutorConfig(capacity=100, interval_seconds=1))
        light = executor.run_interval(20).latency_ms
        executor.reset()
        heavy = executor.run_interval(95).latency_ms
        executor.reset()
        overloaded = executor.run_interval(300).latency_ms
        assert light < heavy < overloaded

    def test_pause_reduces_capacity_and_adds_latency(self):
        executor = TaskExecutor(ExecutorConfig(capacity=100, interval_seconds=1))
        paused = executor.run_interval(100, paused_fraction=0.5)
        assert paused.processed == 50
        assert paused.paused_fraction == 0.5
        executor.reset()
        unpaused = executor.run_interval(100)
        assert paused.latency_ms > unpaused.latency_ms

    def test_negative_offered_rejected(self):
        executor = TaskExecutor(ExecutorConfig(capacity=10))
        with pytest.raises(ValueError):
            executor.run_interval(-1)

    @given(
        st.lists(st.floats(0, 500), min_size=1, max_size=20),
        st.floats(10, 200),
    )
    @settings(max_examples=50)
    def test_conservation_of_work(self, offers, capacity):
        """Processed + backlog + shed always accounts for every offered unit."""
        executor = TaskExecutor(
            ExecutorConfig(capacity=capacity, interval_seconds=1, max_backlog=capacity)
        )
        total_offered = 0.0
        total_processed = 0.0
        total_shed = 0.0
        for offered in offers:
            outcome = executor.run_interval(offered)
            total_offered += offered
            total_processed += outcome.processed
            total_shed += outcome.shed
        assert total_processed + total_shed + executor.backlog == pytest.approx(
            total_offered
        )


class TestBackpressure:
    def test_no_throttle_when_capacity_sufficient(self):
        fraction = admissible_fraction({0: 50, 1: 60}, {0: 100, 1: 100}, {0: 0, 1: 0})
        assert fraction == 1.0

    def test_throttled_by_bottleneck(self):
        fraction = admissible_fraction({0: 200, 1: 50}, {0: 100, 1: 100}, {0: 0, 1: 0})
        assert fraction == pytest.approx(0.5)

    def test_zero_capacity_blocks(self):
        assert admissible_fraction({0: 10}, {0: 0}, {0: 0}) == 0.0

    def test_backlog_reduces_admission(self):
        fraction = admissible_fraction({0: 100}, {0: 100}, {0: 50})
        assert fraction == pytest.approx(0.5)

    def test_throttled_loads(self):
        assert throttled_loads({0: 10, 1: 20}, 0.5) == {0: 5, 1: 10}
        assert throttled_loads({0: 10}, 2.0) == {0: 10}
