"""Observable backpressure shedding: per-task drop totals (satellite).

Shed tuples used to disappear into an aggregate; now every drop is charged to
the task that dropped it — through the :class:`ShedLedger`, the per-interval
``per_task_shed`` map and the :meth:`MetricsCollector.shed_by_task` rollup.
"""

import pytest

from repro.baselines.hash_only import HashPartitioner
from repro.engine.backpressure import ShedLedger
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.simulator import OperatorSimulator, SimulationConfig
from repro.operators.wordcount import WordCountOperator


class TestShedLedger:
    def test_accumulates_per_task(self):
        ledger = ShedLedger()
        ledger.record(0, 10.0)
        ledger.record(2, 5.0)
        ledger.record(0, 2.5)
        assert ledger.by_task() == {0: 12.5, 2: 5.0}
        assert ledger.total == 17.5
        assert bool(ledger)

    def test_ignores_non_positive(self):
        ledger = ShedLedger()
        ledger.record(0, 0.0)
        ledger.record(1, -3.0)
        assert not ledger
        assert ledger.by_task() == {}

    def test_clear(self):
        ledger = ShedLedger()
        ledger.record(0, 1.0)
        ledger.clear()
        assert ledger.total == 0.0


class TestSimulatorExposesShedPerTask:
    @pytest.fixture()
    def overloaded_run(self):
        """One hot task far beyond capacity: shedding is inevitable."""
        partitioner = HashPartitioner(2, seed=0)
        hot_key = 0
        hot_task = partitioner.route(hot_key)
        workload = [
            {hot_key: 10_000.0, "cold-a": 50.0, "cold-b": 50.0} for _ in range(4)
        ]
        simulator = OperatorSimulator(
            partitioner,
            WordCountOperator(emit_updates=False),
            SimulationConfig(fixed_capacity=600.0, max_backlog_intervals=1.0),
        )
        return simulator.run(workload), hot_task, simulator

    def test_shed_is_charged_to_the_hot_task(self, overloaded_run):
        collector, hot_task, _ = overloaded_run
        totals = collector.shed_by_task()
        assert totals
        assert set(totals) == {hot_task}
        assert totals[hot_task] > 0

    def test_per_task_shed_sums_to_aggregate(self, overloaded_run):
        collector, _, _ = overloaded_run
        for record in collector.intervals:
            assert sum(record.per_task_shed.values()) == pytest.approx(
                record.shed_tuples
            )
        assert sum(collector.shed_by_task().values()) == pytest.approx(
            collector.total_shed_tuples
        )
        assert collector.total_shed_tuples > 0

    def test_stage_ledger_matches_collector(self, overloaded_run):
        collector, _, simulator = overloaded_run
        ledger = simulator.simulator.runtimes[0].shed_ledger
        assert ledger.by_task() == pytest.approx(collector.shed_by_task())


class TestPersistenceRoundTrip:
    def test_per_task_shed_survives_to_dict(self):
        collector = MetricsCollector(label="x")
        collector.record(
            IntervalMetrics(
                interval=0,
                shed_tuples=7.0,
                per_task_shed={3: 7.0},
                per_task_load={3: 100.0},
            )
        )
        clone = MetricsCollector.from_dict(collector.to_dict())
        assert clone.intervals[0].per_task_shed == {3: 7.0}
        assert clone.shed_by_task() == {3: 7.0}
