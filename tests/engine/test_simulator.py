"""Integration tests for the topology builder and the interval simulators."""

import pytest

from repro.baselines import HashPartitioner, PartialKeyGrouping, ShufflePartitioner
from repro.core.controller import ControllerConfig
from repro.engine import (
    MixedRoutingPartitioner,
    OperatorSimulator,
    PipelineSimulator,
    SimulationConfig,
    Topology,
    TopologyBuilder,
)
from repro.engine.topology import PipelineStage
from repro.operators import WindowedSelfJoin, WordCountOperator


def skewed_workload(intervals=6, num_keys=300, hot=2, tuples=30_000):
    snapshots = []
    for _ in range(intervals):
        snapshot = {f"k{i}": tuples / (num_keys * 2) for i in range(num_keys)}
        for index in range(hot):
            snapshot[f"k{index}"] = tuples / (hot * 4)
        snapshots.append(snapshot)
    return snapshots


class TestTopologyBuilder:
    def test_build_single_stage(self):
        topo = (
            TopologyBuilder("wc")
            .add_stage("count", WordCountOperator(), HashPartitioner(4))
            .build()
        )
        assert len(topo) == 1
        assert topo.stage("count").parallelism == 4
        assert topo.stage_names() == ["count"]

    def test_duplicate_stage_names_rejected(self):
        builder = TopologyBuilder("bad")
        builder.add_stage("s", WordCountOperator(), HashPartitioner(2))
        builder.add_stage("s", WordCountOperator(), HashPartitioner(2))
        with pytest.raises(ValueError):
            builder.build()

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            TopologyBuilder("empty").build()

    def test_unknown_stage_lookup(self):
        topo = (
            TopologyBuilder("wc")
            .add_stage("count", WordCountOperator(), HashPartitioner(2))
            .build()
        )
        with pytest.raises(KeyError):
            topo.stage("nope")

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            PipelineStage("", WordCountOperator(), HashPartitioner(2))
        with pytest.raises(ValueError):
            PipelineStage("s", WordCountOperator(), HashPartitioner(2), selectivity=-1)

    def test_key_mapper(self):
        stage = PipelineStage(
            "s", WordCountOperator(), HashPartitioner(2), key_mapper=lambda k: k * 2
        )
        assert stage.map_key(3) == 6
        plain = PipelineStage("p", WordCountOperator(), HashPartitioner(2))
        assert plain.map_key(3) == 3


class TestOperatorSimulator:
    def test_conservation_and_metrics(self):
        sim = OperatorSimulator(
            HashPartitioner(4, seed=1),
            WordCountOperator(),
            SimulationConfig(capacity_factor=2.0, interval_seconds=10),
        )
        metrics = sim.run(skewed_workload())
        assert len(metrics) == 6
        for record in metrics:
            assert record.processed_tuples <= record.offered_tuples + 1e-6
            assert record.skewness >= 1.0
            assert record.num_tasks == 4
        # Generous capacity: everything is processed, no backlog remains.
        assert metrics.mean("processed_tuples") == pytest.approx(
            metrics.mean("offered_tuples"), rel=1e-6
        )

    def test_mixed_partitioner_rebalances_and_migrates_state(self):
        part = MixedRoutingPartitioner(
            4, ControllerConfig(theta_max=0.1, max_table_size=200), seed=1
        )
        sim = OperatorSimulator(part, WordCountOperator(), SimulationConfig(capacity_factor=1.1))
        metrics = sim.run(skewed_workload())
        assert metrics.rebalance_count >= 1
        assert metrics.total_migrated_state > 0
        # Skewness drops after the first adjustment.
        skew = metrics.series("skewness")
        assert skew[-1] < skew[0]
        assert part.routing_table_size > 0

    def test_mixed_beats_hash_on_throughput_under_saturation(self):
        config = SimulationConfig(capacity_factor=1.05)
        hash_metrics = OperatorSimulator(
            HashPartitioner(4, seed=1), WordCountOperator(), config
        ).run(skewed_workload())
        mixed_metrics = OperatorSimulator(
            MixedRoutingPartitioner(4, ControllerConfig(theta_max=0.05), seed=1),
            WordCountOperator(),
            config,
        ).run(skewed_workload())
        assert mixed_metrics.mean_throughput >= hash_metrics.mean_throughput
        assert mixed_metrics.mean_latency_ms <= hash_metrics.mean_latency_ms

    def test_shuffle_is_perfectly_balanced(self):
        metrics = OperatorSimulator(
            ShufflePartitioner(4), WordCountOperator(), SimulationConfig()
        ).run(skewed_workload())
        assert metrics.mean_skewness == pytest.approx(1.0)

    def test_pkg_pays_merge_overhead_on_stateful_operator(self):
        config = SimulationConfig(capacity_factor=1.3)
        pkg = OperatorSimulator(
            PartialKeyGrouping(4, seed=1), WordCountOperator(), config
        ).run(skewed_workload())
        ideal = OperatorSimulator(
            ShufflePartitioner(4), WordCountOperator(), config
        ).run(skewed_workload())
        # The merge tax shows up as lost throughput relative to pure shuffle.
        assert pkg.mean_throughput < ideal.mean_throughput

    def test_scale_out_uses_new_task(self):
        part = MixedRoutingPartitioner(
            3, ControllerConfig(theta_max=0.1, max_table_size=500), seed=2
        )
        sim = OperatorSimulator(part, WordCountOperator(), SimulationConfig(capacity_factor=1.2))
        metrics = sim.run(skewed_workload(intervals=8), scale_out_at={4: 4})
        assert metrics.intervals[3].num_tasks == 3
        assert metrics.intervals[4].num_tasks == 4
        # After scale-out and one adjustment, the new task receives load.
        last = metrics.intervals[-1]
        assert last.per_task_load.get(3, 0.0) > 0.0

    def test_tasks_accessible(self):
        sim = OperatorSimulator(HashPartitioner(2), WordCountOperator(), SimulationConfig())
        sim.run(skewed_workload(intervals=2))
        assert set(sim.tasks) == {0, 1}


class TestPipelineSimulator:
    def _two_stage_topology(self, parallelism=4):
        return (
            TopologyBuilder("pipeline")
            .add_stage(
                "join",
                WindowedSelfJoin(window=2),
                HashPartitioner(parallelism, seed=1),
                selectivity=1.0,
                key_mapper=lambda key: hash(key) % 10,
            )
            .add_stage("agg", WordCountOperator(), HashPartitioner(2, seed=2))
            .build()
        )

    def test_two_stage_flow(self):
        sim = PipelineSimulator(
            self._two_stage_topology(), SimulationConfig(capacity_factor=2.0)
        )
        result = sim.run(skewed_workload(intervals=5))
        assert set(result.stages) == {"join", "agg"}
        assert len(result.pipeline) == 5
        # With generous capacity the last stage processes what the first emits.
        join = result.stages["join"]
        agg = result.stages["agg"]
        assert agg.mean("offered_tuples") == pytest.approx(
            join.mean("processed_tuples"), rel=1e-6
        )
        # Pipeline latency adds up across stages.
        assert result.pipeline.mean_latency_ms >= join.mean_latency_ms

    def test_selectivity_scales_downstream_volume(self):
        topo = (
            TopologyBuilder("sel")
            .add_stage(
                "filter",
                WordCountOperator(),
                HashPartitioner(2, seed=1),
                selectivity=0.5,
            )
            .add_stage("sink", WordCountOperator(), HashPartitioner(2, seed=2))
            .build()
        )
        result = PipelineSimulator(topo, SimulationConfig(capacity_factor=2.0)).run(
            skewed_workload(intervals=3)
        )
        filter_out = result.stages["filter"].mean("processed_tuples")
        sink_in = result.stages["sink"].mean("offered_tuples")
        assert sink_in == pytest.approx(filter_out * 0.5, rel=1e-6)

    def test_unknown_scale_out_stage_rejected(self):
        sim = PipelineSimulator(self._two_stage_topology(), SimulationConfig())
        with pytest.raises(KeyError):
            sim.run(skewed_workload(intervals=1), scale_out_schedule={0: {"nope": 5}})

    def test_simulation_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(interval_seconds=0)
        with pytest.raises(ValueError):
            SimulationConfig(capacity_factor=0)
        with pytest.raises(ValueError):
            SimulationConfig(fixed_capacity=-1)
