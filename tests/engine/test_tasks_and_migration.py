"""Tests for tasks, operator logic, the migration protocol and metrics."""

import pytest

from repro.core.migration import KeyMove, MigrationPlan
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.migration_protocol import (
    MigrationConfig,
    MigrationProtocol,
    MigrationReport,
)
from repro.engine.operator import OperatorLogic, Task
from repro.engine.tuples import StreamTuple
from repro.operators import WordCountOperator


class TestTask:
    def test_event_level_processing_records_stats(self):
        task = Task(0, WordCountOperator(window=2))
        task.begin_interval(1)
        for word in ["a", "a", "b"]:
            outputs = task.process(StreamTuple(key=word, interval=1))
            assert outputs and outputs[0].key == word
        stats = task.end_interval()
        assert stats.frequency("a") == 2
        assert stats.cost("b") == 1
        assert task.metrics.tuples_processed == 3
        assert task.state_size == 3.0

    def test_ingest_counts_fluid_path(self):
        task = Task(1, WordCountOperator(window=1))
        task.ingest_counts(0, {"a": 10, "b": 5})
        stats = task.end_interval()
        assert stats.frequency("a") == 10
        assert stats.memory("b") == 5
        assert task.state_size == 15.0

    def test_state_expiry_on_interval_end(self):
        task = Task(0, WordCountOperator(window=1))
        task.ingest_counts(0, {"a": 10})
        task.end_interval()
        task.ingest_counts(5, {"b": 1})
        task.end_interval()
        # Window is 1 interval: the state from interval 0 is gone.
        assert task.state.key_size("a") == 0.0

    def test_extract_install_updates_metrics(self):
        source = Task(0, WordCountOperator(window=1))
        target = Task(1, WordCountOperator(window=1))
        source.ingest_counts(0, {"hot": 100})
        source.end_interval()
        snapshot = source.extract_key("hot")
        target.install_key("hot", snapshot)
        assert source.metrics.migrations_out == 1
        assert target.metrics.migrations_in == 1
        assert target.state.key_size("hot") == 100.0

    def test_end_interval_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Task(0, WordCountOperator()).end_interval()

    def test_invalid_task_id(self):
        with pytest.raises(ValueError):
            Task(-1, WordCountOperator())

    def test_default_logic_is_stateless_passthrough(self):
        class Passthrough(OperatorLogic):
            name = "noop"

        task = Task(0, Passthrough())
        task.begin_interval(0)
        outputs = task.process(StreamTuple(key="x", value=1, interval=0))
        assert outputs[0].key == "x"
        assert task.state_size == 0.0


class TestMigrationProtocol:
    def _tasks(self):
        tasks = {i: Task(i, WordCountOperator(window=2)) for i in range(3)}
        tasks[0].ingest_counts(0, {"hot": 100, "warm": 10})
        tasks[1].ingest_counts(0, {"cold": 5})
        for task in tasks.values():
            if task._interval_stats is not None:  # only tasks that ingested
                task.end_interval()
        return tasks

    def test_empty_plan_is_noop(self):
        protocol = MigrationProtocol()
        report = protocol.execute(MigrationPlan(), self._tasks())
        assert report.moved_keys == 0
        assert report.duration_seconds == 0.0
        assert report.affected_tasks == set()

    def test_state_actually_moves(self):
        tasks = self._tasks()
        plan = MigrationPlan([KeyMove("hot", 0, 2, state_size=100)])
        report = MigrationProtocol().execute(plan, tasks, interval_seconds=10)
        assert report.moved_keys == 1
        assert report.moved_state == 100.0
        assert tasks[0].state.key_size("hot") == 0.0
        assert tasks[2].state.key_size("hot") == 100.0
        assert report.paused_keys == {"hot"}
        assert set(report.pause_fraction_by_task) == {0, 2}

    def test_duration_scales_with_volume(self):
        config = MigrationConfig(
            bytes_per_state_unit=1000,
            bandwidth_bytes_per_second=10_000,
            pause_overhead_seconds=0.0,
        )
        tasks = self._tasks()
        plan = MigrationPlan([KeyMove("hot", 0, 2, state_size=100)])
        report = MigrationProtocol(config).execute(plan, tasks, interval_seconds=10)
        assert report.duration_seconds == pytest.approx(100 * 1000 / 10_000)
        assert 0 < report.pause_fraction_by_task[0] <= 1.0

    def test_sequential_vs_parallel_transfers(self):
        plan = MigrationPlan(
            [KeyMove("hot", 0, 2, state_size=100), KeyMove("warm", 0, 1, state_size=10)]
        )
        base = dict(
            bytes_per_state_unit=1000,
            bandwidth_bytes_per_second=10_000,
            pause_overhead_seconds=0.0,
        )
        parallel = MigrationProtocol(MigrationConfig(**base, parallel_transfers=True)).execute(
            plan, self._tasks(), interval_seconds=10
        )
        sequential = MigrationProtocol(
            MigrationConfig(**base, parallel_transfers=False)
        ).execute(plan, self._tasks(), interval_seconds=10)
        assert sequential.duration_seconds > parallel.duration_seconds

    def test_unknown_task_rejected(self):
        plan = MigrationPlan([KeyMove("hot", 0, 9, state_size=1)])
        with pytest.raises(KeyError):
            MigrationProtocol().execute(plan, self._tasks())

    def test_stateless_key_uses_plan_estimate(self):
        tasks = self._tasks()
        plan = MigrationPlan([KeyMove("unknown", 1, 2, state_size=42)])
        report = MigrationProtocol().execute(plan, tasks)
        assert report.moved_state == 42.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MigrationConfig(bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError):
            MigrationConfig(bytes_per_state_unit=-1)


class TestMetricsCollector:
    def _collector(self):
        collector = MetricsCollector("test")
        for interval in range(4):
            collector.record(
                IntervalMetrics(
                    interval=interval,
                    offered_tuples=100,
                    processed_tuples=100 - interval * 10,
                    throughput=10 - interval,
                    latency_ms=5.0 * (interval + 1),
                    skewness=1.0 + interval / 10,
                    rebalanced=(interval % 2 == 1),
                    migration_fraction=0.1 * interval,
                    generation_time=0.01 * interval,
                )
            )
        return collector

    def test_series_and_aggregates(self):
        collector = self._collector()
        assert len(collector) == 4
        assert collector.series("throughput") == [10, 9, 8, 7]
        assert collector.mean("throughput") == pytest.approx(8.5)
        assert collector.mean("throughput", skip_warmup=2) == pytest.approx(7.5)
        assert collector.minimum("throughput") == 7
        assert collector.maximum("skewness") == pytest.approx(1.3)

    def test_latency_is_processed_weighted(self):
        collector = self._collector()
        weights = collector.series("processed_tuples")
        latencies = collector.series("latency_ms")
        expected = sum(w * l for w, l in zip(weights, latencies)) / sum(weights)
        assert collector.mean_latency_ms == pytest.approx(expected)

    def test_rebalance_metrics_only_over_rebalanced_intervals(self):
        collector = self._collector()
        assert collector.rebalance_count == 2
        assert collector.mean_migration_fraction == pytest.approx((0.1 + 0.3) / 2)
        assert collector.mean_generation_time == pytest.approx((0.01 + 0.03) / 2)

    def test_summary_keys(self):
        summary = self._collector().summary()
        for key in (
            "throughput_mean",
            "latency_ms_mean",
            "skewness_mean",
            "migration_fraction_mean",
            "rebalances",
        ):
            assert key in summary

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.mean_throughput == 0.0
        assert collector.mean_latency_ms == 0.0
        assert collector.summary()["intervals"] == 0.0
