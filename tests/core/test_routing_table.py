"""Tests for the bounded routing table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing_table import RoutingTable, RoutingTableOverflowError


class TestBasics:
    def test_empty(self):
        table = RoutingTable()
        assert len(table) == 0
        assert table.size == 0
        assert "k" not in table
        assert table.get("k") is None
        assert table.within_limit()

    def test_set_get_remove(self):
        table = RoutingTable()
        table.set("a", 3)
        assert table["a"] == 3
        assert "a" in table
        assert table.remove("a") == 3
        assert "a" not in table

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            RoutingTable().remove("missing")

    def test_discard_missing_is_none(self):
        assert RoutingTable().discard("missing") is None

    def test_initial_entries(self):
        table = RoutingTable({"a": 1, "b": 2})
        assert table.size == 2
        assert dict(table.items()) == {"a": 1, "b": 2}

    def test_iteration_and_views(self):
        table = RoutingTable({"a": 1, "b": 2})
        assert set(table) == {"a", "b"}
        assert set(table.keys()) == {"a", "b"}
        assert sorted(table.values()) == [1, 2]
        assert table.as_dict() == {"a": 1, "b": 2}

    def test_clear(self):
        table = RoutingTable({"a": 1})
        table.clear()
        assert len(table) == 0

    def test_equality(self):
        assert RoutingTable({"a": 1}) == RoutingTable({"a": 1})
        assert RoutingTable({"a": 1}) == {"a": 1}
        assert RoutingTable({"a": 1}) != RoutingTable({"a": 2})


class TestMaxSize:
    def test_negative_max_size_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(max_size=-1)

    def test_initial_overflow_rejected(self):
        with pytest.raises(RoutingTableOverflowError):
            RoutingTable({"a": 1, "b": 2}, max_size=1)

    def test_overflow_on_set(self):
        table = RoutingTable(max_size=1)
        table.set("a", 0)
        with pytest.raises(RoutingTableOverflowError):
            table.set("b", 1)

    def test_update_existing_never_overflows(self):
        table = RoutingTable({"a": 0}, max_size=1)
        table.set("a", 4)
        assert table["a"] == 4

    def test_enforce_limit_false(self):
        table = RoutingTable(max_size=1)
        table.set("a", 0)
        table.set("b", 1, enforce_limit=False)
        assert table.size == 2
        assert table.overflow() == 1
        assert not table.within_limit()

    def test_copy_preserves_and_overrides_limit(self):
        table = RoutingTable({"a": 1}, max_size=5)
        clone = table.copy()
        assert clone.max_size == 5
        assert clone == table
        unbounded = table.copy(max_size=None)
        assert unbounded.max_size is None
        # copies are independent
        clone.set("b", 2)
        assert "b" not in table


class TestPropertyBased:
    @given(
        st.dictionaries(st.text(min_size=1, max_size=6), st.integers(0, 9), max_size=40)
    )
    @settings(max_examples=60)
    def test_roundtrip_matches_dict(self, entries):
        table = RoutingTable(entries)
        assert table.as_dict() == entries
        assert len(table) == len(entries)
        for key, task in entries.items():
            assert table[key] == task

    @given(
        st.dictionaries(st.integers(), st.integers(0, 9), min_size=1, max_size=30),
        st.integers(0, 29),
    )
    @settings(max_examples=60)
    def test_overflow_never_negative(self, entries, max_size):
        table = RoutingTable(max_size=max_size)
        for key, task in entries.items():
            table.set(key, task, enforce_limit=False)
        assert table.overflow() == max(0, len(entries) - max_size)
        assert table.overflow() >= 0
