"""Tests for the mixed assignment function F (Equation 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import AssignmentFunction
from repro.core.hashing import UniversalHash
from repro.core.routing_table import RoutingTable


class TestEvaluation:
    def test_hash_fallback(self):
        assignment = AssignmentFunction.hashed(4, seed=1)
        for key in range(100):
            assert assignment(key) == assignment.hash_destination(key)
            assert not assignment.is_explicit(key)

    def test_table_overrides_hash(self):
        assignment = AssignmentFunction.hashed(4, seed=1)
        key = "pinned"
        other = (assignment.hash_destination(key) + 1) % 4
        assignment.routing_table.set(key, other)
        assert assignment(key) == other
        assert assignment.is_explicit(key)

    def test_num_tasks_required_for_plain_callable(self):
        with pytest.raises(ValueError):
            AssignmentFunction(lambda key: 0)
        assignment = AssignmentFunction(lambda key: 0, num_tasks=3)
        assert assignment(123) == 0

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            AssignmentFunction(UniversalHash(3), num_tasks=0)

    def test_destinations_and_partition(self):
        assignment = AssignmentFunction.hashed(3, seed=0)
        keys = list(range(30))
        destinations = assignment.destinations(keys)
        partition = assignment.partition(keys)
        assert set(destinations) == set(keys)
        for task, members in partition.items():
            for key in members:
                assert destinations[key] == task
        assert sorted(sum(partition.values(), [])) == keys

    def test_keys_of_task(self):
        assignment = AssignmentFunction.hashed(3, seed=0)
        keys = list(range(50))
        for task in assignment.tasks:
            for key in assignment.keys_of_task(task, keys):
                assert assignment(key) == task


class TestDeltaAndTables:
    def test_delta_empty_for_identical(self):
        assignment = AssignmentFunction.hashed(4, seed=2)
        assert assignment.delta(assignment.copy(), range(100)) == set()

    def test_delta_detects_reroutes(self):
        a = AssignmentFunction.hashed(4, seed=2)
        b = a.copy()
        moved = []
        for key in range(10):
            new_task = (a(key) + 1) % 4
            b.routing_table.set(key, new_task)
            moved.append(key)
        assert a.delta(b, range(100)) == set(moved)

    def test_with_table_shares_hash(self):
        a = AssignmentFunction.hashed(4, seed=2)
        table = RoutingTable({"x": 1})
        b = a.with_table(table)
        assert b("x") == 1
        assert b.hash_destination("x") == a.hash_destination("x")

    def test_copy_is_deep_for_table(self):
        a = AssignmentFunction.hashed(4, seed=2)
        b = a.copy()
        b.routing_table.set("x", 0)
        assert "x" not in a.routing_table

    def test_normalized_table_drops_redundant_entries(self):
        a = AssignmentFunction.hashed(4, seed=2)
        a.routing_table.set("same", a.hash_destination("same"))
        a.routing_table.set("diff", (a.hash_destination("diff") + 1) % 4)
        normalized = a.normalized_table()
        assert "same" not in normalized
        assert "diff" in normalized

    def test_from_mapping_drops_hash_agreeing_entries(self):
        hash_fn = UniversalHash(4, seed=9)
        mapping = {key: hash_fn(key) for key in range(10)}
        mapping[3] = (hash_fn(3) + 1) % 4
        assignment = AssignmentFunction.from_mapping(hash_fn, mapping)
        assert assignment.routing_table.size == 1
        assert assignment(3) == mapping[3]

    @given(st.integers(1, 16), st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_always_routes_in_range(self, num_tasks, keys):
        assignment = AssignmentFunction.hashed(num_tasks, seed=5)
        for key in keys:
            assert 0 <= assignment(key) < num_tasks
