"""Tests for the compact representation, the adapted Mixed planner and the controller."""

import random

import pytest

from repro.core.assignment import AssignmentFunction
from repro.core.compact import (
    CompactMixedPlanner,
    CompactRecord,
    CompactStatistics,
    load_estimation_error,
)
from repro.core.controller import ControllerConfig, RebalanceController
from repro.core.discretization import HLHEDiscretizer
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.planner import PlannerConfig
from repro.core.statistics import IntervalStats, StatisticsStore


def _skewed(num_keys=200, seed=0):
    rng = random.Random(seed)
    freqs = {f"k{i}": float(rng.randint(1, 20)) for i in range(num_keys)}
    freqs["k0"], freqs["k1"], freqs["k2"] = 900.0, 700.0, 500.0
    return freqs


def _store(freqs, window=1):
    store = StatisticsStore(window=window)
    store.push(IntervalStats.from_frequencies(1, freqs))
    return store


class TestCompactRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompactRecord(0, 0, 0, -1.0, 1.0, 1)
        with pytest.raises(ValueError):
            CompactRecord(0, 0, 0, 1.0, 1.0, -1)

    def test_split(self):
        record = CompactRecord(None, 1, 2, 4.0, 8.0, 10)
        taken, rest = record.split(3)
        assert taken.count == 3 and rest.count == 7
        assert taken.total_cost == 12.0 and rest.total_memory == 56.0
        with pytest.raises(ValueError):
            record.split(11)

    def test_signature_and_flags(self):
        explicit = CompactRecord(1, 1, 2, 4.0, 8.0, 5)
        implicit = CompactRecord(2, 2, 2, 4.0, 8.0, 5)
        assert explicit.is_explicit and not implicit.is_explicit
        assert explicit.signature == (1, 2, 4.0, 8.0)


class TestCompactStatistics:
    def test_grouping_counts_every_key(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        compact = CompactStatistics.from_stats(store, assignment, HLHEDiscretizer(8))
        assert compact.total_keys() == len(store.cost_map())
        # Records group many keys, so there are far fewer records than keys.
        assert len(compact) < compact.total_keys()

    def test_no_discretizer_means_exact_costs(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        compact = CompactStatistics.from_stats(store, assignment, None)
        estimated = compact.estimated_loads()
        actual = load_from_costs(store.cost_map(), assignment, 5)
        for task in range(5):
            assert estimated[task] == pytest.approx(actual[task])

    def test_estimated_loads_close_with_discretizer(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        compact = CompactStatistics.from_stats(store, assignment, HLHEDiscretizer(8))
        estimated = compact.estimated_loads()
        actual = load_from_costs(store.cost_map(), assignment, 5)
        assert load_estimation_error(estimated, actual) < 0.05


class TestCompactMixedPlanner:
    def test_rebalances(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        before = max_balance_indicator(load_from_costs(store.cost_map(), assignment, 5))
        outcome = CompactMixedPlanner(HLHEDiscretizer(8)).plan(
            assignment, store, PlannerConfig(theta_max=0.1, max_table_size=200)
        )
        assert outcome.result.max_theta < before
        assert outcome.record_count > 0
        assert outcome.result.generation_time > 0
        assert 0 <= outcome.load_estimation_error < 0.05

    def test_coarser_degree_fewer_records(self):
        store = _store(_skewed(num_keys=500))
        assignment = AssignmentFunction.hashed(5, seed=42)
        fine = CompactMixedPlanner(HLHEDiscretizer(1)).plan(
            assignment, store, PlannerConfig(theta_max=0.1)
        )
        coarse = CompactMixedPlanner(HLHEDiscretizer(64)).plan(
            assignment, store, PlannerConfig(theta_max=0.1)
        )
        assert coarse.record_count <= fine.record_count

    def test_migration_matches_assignment_change(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        outcome = CompactMixedPlanner(HLHEDiscretizer(8)).plan(
            assignment, store, PlannerConfig(theta_max=0.1)
        )
        observed = set(store.cost_map())
        delta = {
            key
            for key in observed
            if assignment(key) != outcome.result.assignment(key)
        }
        assert delta == outcome.result.migrated_keys


class TestLoadEstimationError:
    def test_zero_for_exact(self):
        assert load_estimation_error({0: 10.0}, {0: 10.0}) == 0.0

    def test_skips_empty_tasks(self):
        assert load_estimation_error({0: 10.0, 1: 99.0}, {0: 10.0, 1: 0.0}) == 0.0

    def test_average_relative_error(self):
        error = load_estimation_error({0: 11.0, 1: 9.0}, {0: 10.0, 1: 10.0})
        assert error == pytest.approx(0.1)


class TestRebalanceController:
    def test_requires_observation_before_rebalance(self):
        controller = RebalanceController(AssignmentFunction.hashed(5, seed=1))
        with pytest.raises(RuntimeError):
            controller.rebalance()
        assert controller.maybe_rebalance() is None

    def test_triggers_only_when_imbalanced(self):
        controller = RebalanceController(
            AssignmentFunction.hashed(5, seed=1),
            ControllerConfig(theta_max=0.2),
        )
        controller.observe(
            IntervalStats.from_frequencies(1, {f"k{i}": 10 for i in range(5000)})
        )
        assert controller.current_imbalance() < 0.2
        assert controller.maybe_rebalance() is None
        controller.observe(IntervalStats.from_frequencies(2, _skewed()))
        result = controller.maybe_rebalance()
        assert result is not None
        assert controller.history == [result]
        assert controller.assignment is result.assignment

    def test_cooldown_blocks_back_to_back_rebalances(self):
        controller = RebalanceController(
            AssignmentFunction.hashed(5, seed=1),
            ControllerConfig(theta_max=0.01, cooldown_intervals=2),
        )
        controller.observe(IntervalStats.from_frequencies(1, _skewed(seed=1)))
        assert controller.maybe_rebalance() is not None
        controller.observe(IntervalStats.from_frequencies(2, _skewed(seed=2)))
        assert controller.maybe_rebalance() is None  # cooling down
        controller.observe(IntervalStats.from_frequencies(3, _skewed(seed=3)))
        assert controller.maybe_rebalance() is None
        controller.observe(IntervalStats.from_frequencies(4, _skewed(seed=4)))
        assert controller.maybe_rebalance() is not None

    def test_compact_controller_path(self):
        controller = RebalanceController(
            AssignmentFunction.hashed(5, seed=1),
            ControllerConfig(theta_max=0.1, use_compact=True, discretization_degree=8),
        )
        controller.observe(IntervalStats.from_frequencies(1, _skewed()))
        result = controller.maybe_rebalance()
        assert result is not None
        assert result.algorithm == "compact-mixed"

    def test_reporting_properties(self):
        controller = RebalanceController(
            AssignmentFunction.hashed(5, seed=1), ControllerConfig(theta_max=0.05)
        )
        assert controller.average_generation_time == 0.0
        controller.observe(IntervalStats.from_frequencies(1, _skewed()))
        controller.rebalance()
        assert controller.average_generation_time > 0
        assert controller.total_migrated_state > 0
        assert controller.current_skewness() >= 1.0

    def test_algorithm_selection(self):
        controller = RebalanceController(
            AssignmentFunction.hashed(5, seed=1),
            ControllerConfig(theta_max=0.05, algorithm="mintable"),
        )
        controller.observe(IntervalStats.from_frequencies(1, _skewed()))
        result = controller.rebalance()
        assert result.algorithm == "mintable"
