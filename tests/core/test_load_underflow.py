"""Regression tests: the load model must survive subnormal totals.

``5e-324`` is the smallest positive float; dividing it by the task count
underflows to 0.0, so any metric computed via the divided mean (``x / L̄``
guarded by ``mean <= 0``) silently reported a loaded operator as empty.  All
ratios are now evaluated from the total load (see ``repro.core.load``).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load import (
    average_load,
    balance_indicators,
    load_ceiling,
    max_balance_indicator,
    max_skewness,
    overloaded_tasks,
    safe_mean,
    total_load,
)
from repro.workloads.fluctuation import workload_change

SUBNORMAL = 5e-324  # math.ulp(0.0): the smallest positive double


class TestSubnormalLoads:
    def test_mean_underflows_but_skewness_does_not(self):
        loads = {0: 0.0, 1: SUBNORMAL}
        assert average_load(loads) == 0.0  # the underflow the guards must survive
        assert max_skewness(loads) >= 1.0
        assert max_skewness(loads) == pytest.approx(2.0)

    def test_balance_indicators_subnormal(self):
        loads = {0: 0.0, 1: SUBNORMAL}
        indicators = balance_indicators(loads)
        assert indicators[0] == pytest.approx(1.0)
        assert indicators[1] == pytest.approx(1.0)
        assert max_balance_indicator(loads) == pytest.approx(1.0)

    def test_overloaded_tasks_subnormal_is_conservative(self):
        # At subnormal magnitudes the ceiling is below float resolution; the
        # important property is that NOT every loaded task is flagged.
        loads = {0: 0.0, 1: SUBNORMAL, 2: SUBNORMAL}
        assert overloaded_tasks(loads, 0.1) != [0, 1, 2]

    def test_load_ceiling_orders_multiply_before_divide(self):
        # (1 + θ) · total first, then / N — the subnormal total is not first
        # crushed to a zero mean.
        assert load_ceiling({0: 12.0, 1: 8.0}, 0.1) == pytest.approx(11.0)
        assert load_ceiling({}, 0.1) == 0.0

    def test_workload_change_subnormal(self):
        before = {0: SUBNORMAL, 1: 0.0}
        after = {0: 0.0, 1: SUBNORMAL}
        assert workload_change(before, after) == pytest.approx(2.0)

    def test_helpers(self):
        assert total_load({0: 1.0, 1: 2.0}) == 3.0
        assert total_load({}) == 0.0
        assert safe_mean(10.0, 4) == 2.5
        assert safe_mean(10.0, 0) == 0.0

    @given(
        st.dictionaries(
            st.integers(0, 9),
            st.floats(0.0, 1e308, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100)
    def test_skewness_at_least_one_for_any_loaded_operator(self, loads):
        total = sum(loads.values())
        if total > 0 and not math.isinf(total):
            assert max_skewness(loads) >= 1.0 - 1e-9
        assert max_balance_indicator(loads) >= 0.0

    @given(st.floats(5e-324, 1e-300))
    @settings(max_examples=50)
    def test_single_tiny_hot_key_always_skewed(self, tiny):
        loads = {0: tiny, 1: 0.0, 2: 0.0, 3: 0.0}
        assert max_skewness(loads) == pytest.approx(4.0)
        assert max_balance_indicator(loads) == pytest.approx(3.0)
