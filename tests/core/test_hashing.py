"""Tests for the universal hash and the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import ConsistentHashRing, UniversalHash, fnv1a_64, stable_hash


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("alpha", seed=3) == stable_hash("alpha", seed=3)

    def test_seed_changes_hash(self):
        assert stable_hash("alpha", seed=1) != stable_hash("alpha", seed=2)

    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)

    def test_tuple_keys_supported(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    def test_fnv_known_property(self):
        # Same bytes, same seed -> same value; empty input is the offset basis mix.
        assert fnv1a_64(b"abc") == fnv1a_64(b"abc")
        assert fnv1a_64(b"") != fnv1a_64(b"a")

    @given(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False), st.booleans()))
    @settings(max_examples=100)
    def test_hash_is_stable_for_any_key(self, key):
        assert stable_hash(key) == stable_hash(key)


class TestUniversalHash:
    def test_range(self):
        hash_fn = UniversalHash(7, seed=1)
        for key in range(1000):
            assert 0 <= hash_fn(key) < 7

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            UniversalHash(0)

    def test_equality_and_with_num_tasks(self):
        a = UniversalHash(5, seed=2)
        b = UniversalHash(5, seed=2)
        assert a == b and hash(a) == hash(b)
        c = a.with_num_tasks(9)
        assert c.num_tasks == 9 and c.seed == 2

    def test_reasonable_balance_over_many_keys(self):
        hash_fn = UniversalHash(10, seed=0)
        counts = [0] * 10
        for key in range(20_000):
            counts[hash_fn(key)] += 1
        assert max(counts) / min(counts) < 1.2

    def test_candidates_distinct(self):
        hash_fn = UniversalHash(10, seed=0)
        for key in range(100):
            candidates = hash_fn.candidates(key, 2)
            assert len(candidates) == 2
            assert len(set(candidates)) == 2

    def test_candidates_more_than_tasks(self):
        hash_fn = UniversalHash(2, seed=0)
        assert sorted(hash_fn.candidates("x", 5)) == [0, 1]

    def test_candidates_invalid(self):
        with pytest.raises(ValueError):
            UniversalHash(3).candidates("x", 0)

    @given(st.integers(min_value=1, max_value=64), st.integers())
    @settings(max_examples=100)
    def test_always_in_range(self, num_tasks, key):
        assert 0 <= UniversalHash(num_tasks)(key) < num_tasks


class TestConsistentHashRing:
    def test_routes_within_tasks(self):
        ring = ConsistentHashRing(range(4), replicas=32)
        for key in range(500):
            assert ring(key) in range(4)

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_duplicate_task_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add_task(1)

    def test_remove_unknown_task(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(KeyError):
            ring.remove_task(7)

    def test_adding_task_moves_limited_keys(self):
        ring = ConsistentHashRing(range(5), replicas=64, seed=1)
        before = {key: ring(key) for key in range(5_000)}
        ring.add_task(5)
        after = {key: ring(key) for key in range(5_000)}
        moved = sum(1 for key in before if before[key] != after[key])
        # Consistent hashing should move roughly 1/6 of the keys, never most.
        assert moved < len(before) * 0.4
        # Every key that moved must have moved to the new task.
        assert all(after[key] == 5 for key in before if before[key] != after[key])

    def test_remove_task_restores_previous_owners(self):
        ring = ConsistentHashRing(range(5), replicas=64, seed=1)
        before = {key: ring(key) for key in range(2_000)}
        ring.add_task(5)
        ring.remove_task(5)
        after = {key: ring(key) for key in range(2_000)}
        assert before == after

    def test_reasonable_balance(self):
        ring = ConsistentHashRing(range(8), replicas=128, seed=3)
        counts = [0] * 8
        for key in range(40_000):
            counts[ring(key)] += 1
        assert max(counts) / min(counts) < 2.0
