"""Tests for the load model (θ, skewness) and the migration bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import AssignmentFunction
from repro.core.load import (
    average_load,
    balance_indicator,
    balance_indicators,
    is_balanced,
    load_ceiling,
    load_from_costs,
    load_per_task,
    max_balance_indicator,
    max_skewness,
    overloaded_tasks,
)
from repro.core.migration import (
    KeyMove,
    MigrationPlan,
    assignment_delta,
    build_migration_plan,
    migration_cost,
    migration_cost_fraction,
)
from repro.core.statistics import IntervalStats, StatisticsStore


class TestLoadModel:
    def test_load_from_costs(self):
        costs = {"a": 10.0, "b": 5.0, "c": 1.0}
        loads = load_from_costs(costs, lambda k: {"a": 0, "b": 1, "c": 1}[k], 3)
        assert loads == {0: 10.0, 1: 6.0, 2: 0.0}

    def test_load_from_costs_invalid_destination(self):
        with pytest.raises(ValueError):
            load_from_costs({"a": 1.0}, lambda k: 5, 3)

    def test_load_from_costs_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            load_from_costs({}, lambda k: 0, 0)

    def test_load_per_task_from_interval_stats(self):
        stats = IntervalStats.from_frequencies(0, {"a": 4, "b": 2})
        loads = load_per_task(stats, lambda k: 0 if k == "a" else 1, 2)
        assert loads == {0: 4.0, 1: 2.0}

    def test_average_and_indicator(self):
        loads = {0: 10.0, 1: 20.0}
        assert average_load(loads) == 15.0
        assert balance_indicator(20.0, 15.0) == pytest.approx(1 / 3)
        assert balance_indicator(10.0, 15.0) == pytest.approx(1 / 3)
        assert balance_indicator(5.0, 0.0) == 0.0
        assert max_balance_indicator(loads) == pytest.approx(1 / 3)
        indicators = balance_indicators(loads)
        assert set(indicators) == {0, 1}

    def test_empty_loads(self):
        assert average_load({}) == 0.0
        assert max_balance_indicator({}) == 0.0
        assert max_skewness({}) == 0.0

    def test_skewness(self):
        assert max_skewness({0: 10.0, 1: 10.0}) == 1.0
        assert max_skewness({0: 30.0, 1: 10.0}) == pytest.approx(1.5)
        assert max_skewness({0: 0.0, 1: 0.0}) == 0.0

    def test_ceiling_and_overload(self):
        loads = {0: 12.0, 1: 8.0}
        assert load_ceiling(loads, 0.1) == pytest.approx(11.0)
        assert overloaded_tasks(loads, 0.1) == [0]
        assert not is_balanced(loads, 0.1)
        assert is_balanced(loads, 0.2)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            load_ceiling({0: 1.0}, -0.1)

    @given(
        st.dictionaries(st.integers(0, 9), st.floats(0.0, 1000.0), min_size=1, max_size=10)
    )
    @settings(max_examples=80)
    def test_skewness_at_least_one_when_loaded(self, loads):
        if sum(loads.values()) > 0:
            assert max_skewness(loads) >= 1.0 - 1e-9
        theta = max_balance_indicator(loads)
        assert theta >= 0.0


class TestMigration:
    def test_key_move_validation(self):
        with pytest.raises(ValueError):
            KeyMove("k", 1, 1)
        with pytest.raises(ValueError):
            KeyMove("k", 0, 1, state_size=-1)

    def test_plan_aggregates(self):
        plan = MigrationPlan(
            moves=[KeyMove("a", 0, 1, 5.0), KeyMove("b", 0, 2, 3.0), KeyMove("c", 2, 1, 1.0)]
        )
        assert len(plan) == 3
        assert plan.keys == {"a", "b", "c"}
        assert plan.total_state == 9.0
        assert set(plan.moves_by_source()) == {0, 2}
        assert set(plan.moves_by_target()) == {1, 2}
        assert plan.affected_tasks() == {0, 1, 2}
        assert bool(plan)

    def test_empty_plan(self):
        plan = MigrationPlan()
        assert not plan
        assert plan.total_state == 0.0
        assert plan.affected_tasks() == set()

    def test_assignment_delta(self):
        old = AssignmentFunction.hashed(4, seed=0)
        new = old.copy()
        new.routing_table.set(1, (old(1) + 1) % 4)
        assert assignment_delta(old, new, range(10)) == {1}

    def test_migration_cost_and_fraction(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 10, "b": 30}))
        store.push(IntervalStats.from_frequencies(2, {"a": 10, "b": 10}))
        assert migration_cost({"a"}, store) == 20.0
        assert migration_cost_fraction({"a"}, store) == pytest.approx(20.0 / 60.0)
        assert migration_cost_fraction({"a"}, store, window=1) == pytest.approx(10.0 / 20.0)

    def test_fraction_zero_when_no_state(self):
        store = StatisticsStore(window=1)
        store.push(IntervalStats(0))
        assert migration_cost_fraction({"a"}, store) == 0.0

    def test_build_migration_plan(self):
        store = StatisticsStore(window=1)
        store.push(IntervalStats.from_frequencies(1, {"a": 4, "b": 6}))
        old = AssignmentFunction.hashed(3, seed=1)
        new = old.copy()
        new.routing_table.set("a", (old("a") + 1) % 3)
        plan = build_migration_plan(old, new, ["a", "b"], store)
        assert plan.keys == {"a"}
        assert plan.total_state == 4.0
        move = plan.moves[0]
        assert move.source == old("a") and move.target == new("a")

    def test_build_plan_without_stats_has_zero_sizes(self):
        old = AssignmentFunction.hashed(3, seed=1)
        new = old.copy()
        new.routing_table.set("a", (old("a") + 1) % 3)
        plan = build_migration_plan(old, new, ["a"])
        assert plan.total_state == 0.0
        assert plan.keys == {"a"}
