"""Tests for the selection criteria (γ index) and the HLHE discretisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import (
    DEFAULT_BETA,
    HighestCostFirst,
    LargestGammaFirst,
    SmallestMemoryFirst,
    gamma_index,
)
from repro.core.discretization import (
    HLHEDiscretizer,
    NearestValueDiscretizer,
    representative_values,
    total_deviation,
)


class TestGammaIndex:
    def test_basic_value(self):
        assert gamma_index(4.0, 2.0, beta=1.0) == pytest.approx(2.0)
        assert gamma_index(4.0, 2.0, beta=2.0) == pytest.approx(8.0)

    def test_zero_memory_is_finite(self):
        assert gamma_index(4.0, 0.0) > 0
        assert gamma_index(4.0, 0.0) < float("inf")

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            gamma_index(-1.0, 1.0)
        with pytest.raises(ValueError):
            gamma_index(1.0, -1.0)
        with pytest.raises(ValueError):
            gamma_index(1.0, 1.0, beta=-0.5)

    def test_paper_example_beta_weights(self):
        # c(k1)=S(k1)=7, c(k2)=S(k2)=4: equal priority at beta=1, k2 wins at beta=0.5.
        assert gamma_index(7, 7, beta=1.0) == pytest.approx(gamma_index(4, 4, beta=1.0))
        assert gamma_index(4, 4, beta=0.5) > gamma_index(7, 7, beta=0.5)


class TestCriteria:
    costs = {"a": 10.0, "b": 5.0, "c": 1.0}
    memories = {"a": 100.0, "b": 1.0, "c": 1.0}

    def test_highest_cost_first(self):
        order = HighestCostFirst().sort(self.costs, self.costs, self.memories)
        assert order == ["a", "b", "c"]

    def test_largest_gamma_first(self):
        order = LargestGammaFirst(beta=1.0).sort(self.costs, self.costs, self.memories)
        # b has gamma 5, c has 1, a has 0.1 -> b first, a last.
        assert order == ["b", "c", "a"]

    def test_smallest_memory_first(self):
        order = SmallestMemoryFirst().sort(self.costs, self.costs, self.memories)
        assert order[-1] == "a"

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LargestGammaFirst(beta=-1)

    def test_sort_is_deterministic_on_ties(self):
        costs = {"x": 1.0, "y": 1.0, "z": 1.0}
        mems = {"x": 1.0, "y": 1.0, "z": 1.0}
        first = HighestCostFirst().sort(costs, costs, mems)
        second = HighestCostFirst().sort(costs, costs, mems)
        assert first == second

    def test_default_beta_value(self):
        assert DEFAULT_BETA == pytest.approx(1.5)


class TestRepresentativeValues:
    def test_paper_example_r4(self):
        # R = 4, max = 8 -> m = 2 + 2 = 4 representatives: 8, 4, 2, 1.
        assert representative_values(8, 4) == [8.0, 4.0, 2.0, 1.0]

    def test_degree_one_is_integers(self):
        assert representative_values(5, 1) == [5.0, 4.0, 3.0, 2.0, 1.0]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            representative_values(10, 0)
        with pytest.raises(ValueError):
            representative_values(10, 3)

    def test_small_max_value(self):
        ladder = representative_values(0.5, 8)
        assert ladder[-1] == 1.0

    def test_strictly_decreasing(self):
        ladder = representative_values(1000, 16)
        assert all(a > b for a, b in zip(ladder, ladder[1:]))


class TestHLHEDiscretizer:
    def test_paper_example_total_deviation_zero(self):
        # Fig. 6(b): values 8,6,3,2,2,1,1,1,1,1 with R=4 end with |delta| = 0.
        values = [8, 6, 3, 2, 2, 1, 1, 1, 1, 1]
        out = HLHEDiscretizer(4).discretize(values)
        assert total_deviation(values, out) == pytest.approx(0.0)

    def test_values_on_ladder_are_exact(self):
        values = [8.0, 4.0, 2.0, 1.0]
        assert HLHEDiscretizer(4).discretize(values) == values

    def test_zero_values_stay_zero(self):
        assert HLHEDiscretizer(8).discretize([0.0, 5.0])[0] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HLHEDiscretizer(8).discretize([-1.0])

    def test_empty_input(self):
        assert HLHEDiscretizer(8).discretize([]) == []

    def test_discretize_map_preserves_keys(self):
        mapping = {"a": 7.0, "b": 3.0}
        out = HLHEDiscretizer(4).discretize_map(mapping)
        assert set(out) == {"a", "b"}

    def test_beats_nearest_on_accumulated_deviation(self):
        values = [8, 6, 3, 2, 2, 1, 1, 1, 1, 1]
        hlhe = HLHEDiscretizer(4).discretize(values)
        nearest = NearestValueDiscretizer(4).discretize(values)
        assert total_deviation(values, hlhe) <= total_deviation(values, nearest)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=200),
        st.sampled_from([1, 2, 4, 8, 16, 32]),
    )
    @settings(max_examples=60)
    def test_accumulated_deviation_bounded(self, values, degree):
        """Theorem 3: the greedy pass keeps the accumulated deviation small.

        Values between two representatives contribute at most one ladder gap
        (≤ R) to the residual because the greedy picks the bracket that cancels
        the running error; values above the top representative only have a
        single candidate, so their (bounded) excess is the only part that may
        remain uncancelled.
        """
        out = HLHEDiscretizer(degree).discretize(values)
        ladder = representative_values(max(values), degree)
        top = ladder[0]
        over_top_excess = sum(v - top for v in values if v >= top)
        assert total_deviation(values, out) <= over_top_excess + degree + 1e-6

    def test_skewed_inputs_reach_near_zero_deviation(self):
        """The paper's setting (many small values): deviation ends ≈ 0."""
        values = [300.0, 170.0, 90.0] + [float(v % 7 + 1) for v in range(300)]
        out = HLHEDiscretizer(8).discretize(values)
        assert total_deviation(values, out) <= 8.0

    @given(
        st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=100),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40)
    def test_each_value_maps_to_a_representative(self, values, degree):
        discretizer = HLHEDiscretizer(degree)
        ladder = set(representative_values(max(values), degree))
        for _original, rounded in zip(values, discretizer.discretize(values)):
            assert rounded in ladder

    def test_fewer_distinct_values_with_larger_degree(self):
        values = [float(v) for v in range(1, 400)]
        fine = len(set(HLHEDiscretizer(2).discretize(values)))
        coarse = len(set(HLHEDiscretizer(64).discretize(values)))
        assert coarse <= fine


class TestNearestValueDiscretizer:
    def test_rounds_to_nearest(self):
        # Ladder for max=8, R=4 is [8, 4, 2, 1]: 7.9 rounds up, 4.1 rounds down.
        out = NearestValueDiscretizer(4).discretize([8.0, 7.9, 4.1])
        assert out[1] == 8.0
        assert out[2] == 4.0

    def test_empty_and_zero(self):
        assert NearestValueDiscretizer(4).discretize([]) == []
        assert NearestValueDiscretizer(4).discretize([0.0]) == [0.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NearestValueDiscretizer(4).discretize([-2.0])
