"""Tests for per-interval statistics and the rolling statistics store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.statistics import IntervalStats, KeyStats, StatisticsStore


class TestKeyStats:
    def test_defaults(self):
        stat = KeyStats()
        assert stat.frequency == 0 and stat.cost == 0 and stat.memory == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KeyStats(frequency=-1)

    def test_merge(self):
        merged = KeyStats(1, 2, 3).merged(KeyStats(4, 5, 6))
        assert (merged.frequency, merged.cost, merged.memory) == (5, 7, 9)


class TestIntervalStats:
    def test_from_frequencies_defaults(self):
        stats = IntervalStats.from_frequencies(3, {"a": 10, "b": 0, "c": 5})
        assert "b" not in stats  # zero-frequency keys are dropped
        assert stats.frequency("a") == 10
        assert stats.cost("a") == 10
        assert stats.memory("c") == 5
        assert stats.interval == 3

    def test_from_frequencies_scaling(self):
        stats = IntervalStats.from_frequencies(
            0, {"a": 4}, cost_per_tuple=2.5, memory_per_tuple=0.5
        )
        assert stats.cost("a") == 10
        assert stats.memory("a") == 2

    def test_record_accumulates(self):
        stats = IntervalStats(0)
        stats.record("k", frequency=1, cost=2, memory=3)
        stats.record("k", frequency=1, cost=2, memory=3)
        assert stats.frequency("k") == 2
        assert stats.cost("k") == 4
        assert stats.memory("k") == 6

    def test_totals(self):
        stats = IntervalStats.from_frequencies(0, {"a": 3, "b": 7})
        assert stats.total_frequency() == 10
        assert stats.total_cost() == 10
        assert stats.total_memory() == 10
        assert len(stats) == 2

    def test_unknown_key_is_zero(self):
        stats = IntervalStats(0)
        assert stats.cost("nope") == 0.0
        assert stats.get("nope") == KeyStats()

    def test_copy_is_independent(self):
        stats = IntervalStats.from_frequencies(0, {"a": 1})
        clone = stats.copy()
        clone.record("b", frequency=1)
        assert "b" not in stats


class TestStatisticsStore:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            StatisticsStore(window=0)

    def test_latest_requires_push(self):
        with pytest.raises(LookupError):
            _ = StatisticsStore().latest

    def test_push_order_enforced(self):
        store = StatisticsStore(window=3)
        store.push(IntervalStats.from_frequencies(1, {"a": 1}))
        with pytest.raises(ValueError):
            store.push(IntervalStats.from_frequencies(1, {"a": 1}))

    def test_window_eviction(self):
        store = StatisticsStore(window=2)
        for interval in range(1, 5):
            store.push(IntervalStats.from_frequencies(interval, {"a": interval}))
        assert store.intervals == (3, 4)
        assert len(store) == 2

    def test_windowed_memory_sums_last_w(self):
        store = StatisticsStore(window=3)
        for interval in range(1, 4):
            store.push(IntervalStats.from_frequencies(interval, {"a": 10}))
        assert store.windowed_memory("a") == 30
        assert store.windowed_memory("a", window=1) == 10
        assert store.windowed_memory("a", window=2) == 20

    def test_windowed_memory_invalid_window(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 1}))
        with pytest.raises(ValueError):
            store.windowed_memory("a", window=0)

    def test_cost_map_reflects_latest_only(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 5}))
        store.push(IntervalStats.from_frequencies(2, {"a": 7, "b": 1}))
        assert store.cost_map() == {"a": 7.0, "b": 1.0}
        assert store.cost("a") == 7.0
        assert store.frequency("b") == 1.0

    def test_memory_map_over_window(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 5, "b": 2}))
        store.push(IntervalStats.from_frequencies(2, {"a": 7}))
        assert store.memory_map() == {"a": 12.0, "b": 2.0}
        assert store.total_windowed_memory() == 14.0

    def test_observed_keys_union(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 1}))
        store.push(IntervalStats.from_frequencies(2, {"b": 1}))
        assert store.observed_keys() == {"a", "b"}

    def test_copy_independent(self):
        store = StatisticsStore(window=2)
        store.push(IntervalStats.from_frequencies(1, {"a": 1}))
        clone = store.copy()
        clone.push(IntervalStats.from_frequencies(2, {"b": 1}))
        assert len(store) == 1 and len(clone) == 2

    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 20), st.floats(0.0, 100.0), min_size=1, max_size=10
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=50)
    def test_windowed_memory_never_exceeds_total(self, snapshots, window):
        store = StatisticsStore(window=window)
        for index, freqs in enumerate(snapshots):
            store.push(IntervalStats.from_frequencies(index, freqs))
        total = store.total_windowed_memory()
        per_key = sum(store.windowed_memory(key) for key in store.observed_keys())
        assert per_key == pytest.approx(total)
