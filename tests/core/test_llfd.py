"""Tests for the LLFD subroutine (Algorithm 1) and the Simple algorithm (Algorithm 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import HighestCostFirst
from repro.core.hashing import UniversalHash
from repro.core.llfd import least_load_fit_decreasing
from repro.core.load import max_balance_indicator
from repro.core.simple import simple_assign


def _hash(num_tasks: int, seed: int = 0) -> UniversalHash:
    return UniversalHash(num_tasks, seed=seed)


class TestPaperRunningExample:
    """The Fig. 4 example: d1 holds k1,k2,k5 (7,4,5); d2 holds k3,k4,k6 (2,1,1)."""

    costs = {"k1": 7.0, "k2": 4.0, "k3": 2.0, "k4": 1.0, "k5": 5.0, "k6": 1.0}

    def test_llfd_reaches_perfect_balance(self):
        # Re-place every key (the MinTable-style run on the right of Fig. 4).
        result = least_load_fit_decreasing(
            candidates=set(self.costs),
            assignment={},
            costs=self.costs,
            memories={key: cost for key, cost in self.costs.items()},
            num_tasks=2,
            theta_max=0.0,
            hash_function=lambda key: 0,
        )
        assert result.balanced
        loads = sorted(result.loads.values())
        assert loads == [10.0, 10.0]

    def test_llfd_with_exchange_from_partial_candidates(self):
        # Only k1 is disassociated from the overloaded d1; LLFD must use the
        # Adjust exchange to push k3/k4 around, as the paper narrates.
        assignment = {"k2": 0, "k5": 0, "k3": 1, "k4": 1, "k6": 1}
        result = least_load_fit_decreasing(
            candidates={"k1"},
            assignment=assignment,
            costs=self.costs,
            memories=self.costs,
            num_tasks=2,
            theta_max=0.0,
            hash_function=lambda key: 0,
            criteria=HighestCostFirst(),
        )
        assert result.balanced
        assert sorted(result.loads.values()) == [10.0, 10.0]
        assert result.exchanges >= 1
        # Every key has exactly one destination.
        assert set(result.placements) == set(self.costs)


class TestLLFDGeneral:
    def test_empty_candidates_is_noop(self):
        assignment = {"a": 0, "b": 1}
        costs = {"a": 3.0, "b": 3.0}
        result = least_load_fit_decreasing(
            set(), assignment, costs, costs, 2, 0.1, lambda key: 0
        )
        assert result.placements == assignment
        assert result.balanced

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            least_load_fit_decreasing(set(), {}, {}, {}, 0, 0.1, lambda key: 0)
        with pytest.raises(ValueError):
            least_load_fit_decreasing(set(), {}, {}, {}, 2, -0.1, lambda key: 0)

    def test_invalid_assignment_destination(self):
        with pytest.raises(ValueError):
            least_load_fit_decreasing(
                set(), {"a": 7}, {"a": 1.0}, {}, 2, 0.1, lambda key: 0
            )

    def test_routing_entries_only_for_non_hash_destinations(self):
        hash_fn = _hash(4, seed=3)
        costs = {key: 1.0 for key in range(40)}
        result = least_load_fit_decreasing(
            set(costs), {}, costs, costs, 4, 0.5, hash_fn
        )
        for key, task in result.routing_entries.items():
            assert hash_fn(key) != task
        for key, task in result.placements.items():
            if key not in result.routing_entries:
                assert hash_fn(key) == task

    def test_single_huge_key_forces_fallback_but_terminates(self):
        costs = {"huge": 100.0, "a": 1.0, "b": 1.0}
        result = least_load_fit_decreasing(
            set(costs), {}, costs, costs, 2, 0.0, lambda key: 0
        )
        # Perfect balance is impossible: the giant key breaches the ceiling.
        assert not result.balanced
        assert set(result.placements) == set(costs)

    def test_base_loads_respected(self):
        costs = {"a": 5.0}
        result = least_load_fit_decreasing(
            {"a"},
            {},
            costs,
            costs,
            2,
            1.0,
            lambda key: 0,
            base_loads={0: 100.0, 1: 0.0},
        )
        assert result.placements["a"] == 1

    @given(
        st.dictionaries(
            st.integers(0, 200), st.floats(min_value=1.0, max_value=50.0),
            min_size=4, max_size=120,
        ),
        st.integers(2, 8),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_keys_placed_and_loads_consistent(self, costs, num_tasks, theta):
        hash_fn = _hash(num_tasks, seed=1)
        result = least_load_fit_decreasing(
            set(costs), {}, costs, costs, num_tasks, theta, hash_fn
        )
        assert set(result.placements) == set(costs)
        rebuilt = {task: 0.0 for task in range(num_tasks)}
        for key, task in result.placements.items():
            rebuilt[task] += costs[key]
        for task in range(num_tasks):
            assert rebuilt[task] == pytest.approx(result.loads[task])

    @given(
        st.lists(st.floats(min_value=1.0, max_value=20.0), min_size=2, max_size=12),
        st.integers(2, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_theorem1_bound_when_perfect_assignment_exists(self, base_costs, num_tasks):
        """Theorem 1: θ ≤ 1/3·(1 − 1/N_D) when a perfect assignment exists.

        A perfect assignment is guaranteed by construction: every task gets an
        identical multiset of key costs, so the optimum is exactly the mean.
        With at least two keys per task, no single key reaches the mean either
        (the theorem's second precondition).
        """
        costs = {}
        for copy in range(num_tasks):
            for index, value in enumerate(base_costs):
                costs[(copy, index)] = value
        mean_load = sum(base_costs)
        result = least_load_fit_decreasing(
            set(costs), {}, costs, costs, num_tasks, 0.0, lambda key: 0
        )
        bound = (1.0 / 3.0) * (1.0 - 1.0 / num_tasks)
        overload = max(
            (load - mean_load) / mean_load for load in result.loads.values()
        )
        assert overload <= bound + 1e-9


class TestSimpleAlgorithm:
    def test_lpt_balances_uniform_costs(self):
        costs = {index: 1.0 for index in range(12)}
        placements, loads, routing = simple_assign(costs, 3, lambda key: 0)
        assert sorted(loads.values()) == [4.0, 4.0, 4.0]
        assert set(placements) == set(costs)

    def test_routing_entries_consistent(self):
        hash_fn = _hash(3, seed=2)
        costs = {index: float(index % 5 + 1) for index in range(30)}
        placements, _, routing = simple_assign(costs, 3, hash_fn)
        for key, task in routing.items():
            assert hash_fn(key) != task and placements[key] == task

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            simple_assign({"a": 1.0}, 0, lambda key: 0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=30.0), min_size=6, max_size=60),
        st.integers(2, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_graham_bound(self, cost_values, num_tasks):
        """Graham's list-scheduling bound holds: L_max ≤ L̄ + (1 − 1/m)·c_max."""
        costs = {index: value for index, value in enumerate(cost_values)}
        _, loads, _ = simple_assign(costs, num_tasks, lambda key: 0)
        mean = sum(costs.values()) / num_tasks
        bound = mean + (1 - 1 / num_tasks) * max(costs.values())
        assert max(loads.values()) <= bound + 1e-9
