"""Tests for the phase-based rebalancers: MinTable, MinMig, Mixed, MixedBF.

Covers the algorithm-specific contracts the paper states:

* all of them restore the balance constraint whenever that is achievable;
* MinTable's routing table never exceeds the others' for the same input;
* MinMig's migration cost never exceeds MinTable's for the same input;
* Mixed respects the table cap ``A_max`` (by degenerating towards MinTable) and
  MixedBF never does worse than Mixed on migration cost for feasible caps;
* Theorem 2/4: Mixed's balance is never worse than Simple's.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import AssignmentFunction
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.planner import PlannerConfig, get_algorithm, list_algorithms
from repro.core.simple import simple_assign
from repro.core.statistics import IntervalStats, StatisticsStore


def _store(frequencies, window: int = 1, intervals: int = 1) -> StatisticsStore:
    store = StatisticsStore(window=window)
    for index in range(intervals):
        store.push(IntervalStats.from_frequencies(index + 1, frequencies))
    return store


def _skewed(num_keys: int = 200, hot: int = 3, seed: int = 0):
    rng = random.Random(seed)
    freqs = {f"k{i}": float(rng.randint(1, 20)) for i in range(num_keys)}
    for index in range(hot):
        freqs[f"k{index}"] = 1000.0 - 100.0 * index
    return freqs


class TestRegistry:
    def test_all_algorithms_registered(self):
        names = list_algorithms()
        for expected in ("simple", "mintable", "minmig", "mixed", "mixedbf"):
            assert expected in names

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm("nope")


class TestBalanceRestoration:
    @pytest.mark.parametrize("name", ["mintable", "minmig", "mixed", "mixedbf", "simple"])
    def test_restores_balance(self, name):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        config = PlannerConfig(theta_max=0.1, max_table_size=500)
        before = max_balance_indicator(
            load_from_costs(store.cost_map(), assignment, 5)
        )
        result = get_algorithm(name).plan(assignment, store, config)
        after = max_balance_indicator(result.loads)
        assert before > 0.1
        assert after < before
        assert result.balanced
        # The produced loads must equal re-evaluating the costs under F'.
        recomputed = load_from_costs(store.cost_map(), result.assignment, 5)
        for task in range(5):
            assert recomputed[task] == pytest.approx(result.loads[task])

    @pytest.mark.parametrize("name", ["mintable", "minmig", "mixed"])
    def test_no_migration_when_already_balanced(self, name):
        freqs = {f"k{i}": 10.0 for i in range(500)}
        store = _store(freqs)
        assignment = AssignmentFunction.hashed(5, seed=1)
        result = get_algorithm(name).plan(
            assignment, store, PlannerConfig(theta_max=0.3)
        )
        # Nothing is overloaded, so the candidate set is empty and no key moves.
        assert result.migration_cost == 0.0
        assert len(result.migration_plan) == 0

    def test_generation_time_recorded(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        result = get_algorithm("mixed").plan(assignment, store, PlannerConfig())
        assert result.generation_time > 0


class TestAlgorithmContracts:
    def test_mintable_cleans_existing_entries(self):
        # A uniform workload that is already balanced under hashing (within the
        # generous tolerance), so the only question is what happens to the
        # pre-existing routing table entries.
        freqs = {f"k{i}": 10.0 for i in range(500)}
        store = _store(freqs)
        assignment = AssignmentFunction.hashed(5, seed=42)
        for index in range(50, 60):
            key = f"k{index}"
            assignment.routing_table.set(key, (assignment.hash_destination(key) + 1) % 5)
        mintable = get_algorithm("mintable").plan(
            assignment, store, PlannerConfig(theta_max=0.5)
        )
        minmig = get_algorithm("minmig").plan(
            assignment, store, PlannerConfig(theta_max=0.5)
        )
        # MinTable moved every pinned key back (empty table); MinMig kept them all.
        assert mintable.table_size == 0
        assert minmig.table_size == 10
        for index in range(50, 60):
            assert f"k{index}" not in mintable.routing_table
            assert f"k{index}" in minmig.routing_table
        # Cleaning is what costs MinTable migration volume.
        assert mintable.migration_cost >= minmig.migration_cost

    def test_minmig_cheaper_migration_than_mintable(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        # Start from a previously balanced table so cleaning has a real cost.
        warmup = get_algorithm("mixed").plan(
            assignment, store, PlannerConfig(theta_max=0.05)
        )
        assignment = warmup.assignment
        # New interval with a different hot set triggers another adjustment.
        store2 = _store(_skewed(seed=9))
        mintable = get_algorithm("mintable").plan(
            assignment, store2, PlannerConfig(theta_max=0.05)
        )
        minmig = get_algorithm("minmig").plan(
            assignment, store2, PlannerConfig(theta_max=0.05)
        )
        assert minmig.migration_cost <= mintable.migration_cost + 1e-9

    def test_mixed_respects_table_cap(self):
        # Warm up without a cap so a routing table exists to clean; then plan a
        # second adjustment under a tight cap.
        store = _store(_skewed(num_keys=400, hot=6))
        assignment = AssignmentFunction.hashed(8, seed=3)
        warm = get_algorithm("mixed").plan(
            assignment, store, PlannerConfig(theta_max=0.1)
        )
        assert warm.table_size > 0
        store2 = _store(_skewed(num_keys=400, hot=6, seed=21))
        cap = max(2, warm.table_size // 3)
        result = get_algorithm("mixed").plan(
            warm.assignment, store2, PlannerConfig(theta_max=0.1, max_table_size=cap)
        )
        # Either the cap is met, or Mixed escalated the cleaning depth trying to
        # meet it (degenerating towards MinTable).
        assert result.table_size <= cap or result.moved_back > 0
        assert result.cleaning_rounds >= 1

    def test_mixed_unbounded_equals_minmig_plan(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        config = PlannerConfig(theta_max=0.1, max_table_size=None)
        mixed = get_algorithm("mixed").plan(assignment, store, config)
        minmig = get_algorithm("minmig").plan(assignment, store, config)
        # With no cap Mixed never cleans, so it matches MinMig exactly.
        assert mixed.routing_table == minmig.routing_table
        assert mixed.migrated_keys == minmig.migrated_keys

    def test_mixedbf_not_worse_than_mixed_when_feasible(self):
        store = _store(_skewed(num_keys=150, hot=4, seed=2))
        assignment = AssignmentFunction.hashed(5, seed=7)
        # Seed a routing table first so cleaning depth matters.
        warm = get_algorithm("mixed").plan(
            assignment, store, PlannerConfig(theta_max=0.05)
        )
        store2 = _store(_skewed(num_keys=150, hot=4, seed=5))
        config = PlannerConfig(theta_max=0.05, max_table_size=60)
        mixed = get_algorithm("mixed").plan(warm.assignment, store2, config)
        brute = get_algorithm("mixedbf").plan(warm.assignment, store2, config)
        if mixed.within_table_limit(60) and brute.within_table_limit(60):
            assert brute.migration_cost <= mixed.migration_cost + 1e-9

    def test_migration_plan_matches_assignment_diff(self):
        store = _store(_skewed())
        assignment = AssignmentFunction.hashed(5, seed=42)
        result = get_algorithm("mixed").plan(
            assignment, store, PlannerConfig(theta_max=0.05)
        )
        observed = set(store.cost_map())
        delta = {
            key for key in observed if assignment(key) != result.assignment(key)
        }
        assert delta == result.migrated_keys

    def test_theorem2_mixed_balance_not_worse_than_simple(self):
        for seed in range(5):
            freqs = _skewed(seed=seed)
            store = _store(freqs)
            assignment = AssignmentFunction.hashed(5, seed=42)
            mixed = get_algorithm("mixed").plan(
                assignment, store, PlannerConfig(theta_max=0.0)
            )
            _, simple_loads, _ = simple_assign(store.cost_map(), 5, assignment.hash_destination)
            theta_mixed = max_balance_indicator(mixed.loads)
            theta_simple = max_balance_indicator(simple_loads)
            assert theta_mixed <= theta_simple + 1e-9


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(0, 300),
            st.floats(min_value=1.0, max_value=500.0),
            min_size=10,
            max_size=150,
        ),
        st.integers(2, 8),
        st.sampled_from(["mintable", "minmig", "mixed"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_observed_key_has_valid_destination(self, freqs, num_tasks, name):
        store = _store(freqs)
        assignment = AssignmentFunction.hashed(num_tasks, seed=11)
        result = get_algorithm(name).plan(
            assignment, store, PlannerConfig(theta_max=0.1)
        )
        for key in freqs:
            assert 0 <= result.assignment(key) < num_tasks
        # Migration fraction is a valid fraction.
        assert 0.0 <= result.migration_fraction <= 1.0 + 1e-9

    @given(
        st.dictionaries(
            st.integers(0, 300),
            st.floats(min_value=1.0, max_value=500.0),
            min_size=20,
            max_size=150,
        ),
        st.integers(2, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_mixed_never_increases_imbalance(self, freqs, num_tasks):
        store = _store(freqs)
        assignment = AssignmentFunction.hashed(num_tasks, seed=13)
        before = max_balance_indicator(
            load_from_costs(store.cost_map(), assignment, num_tasks)
        )
        result = get_algorithm("mixed").plan(
            assignment, store, PlannerConfig(theta_max=0.05)
        )
        after = max_balance_indicator(result.loads)
        assert after <= before + 1e-9
