"""Tests for the stateful operators: word count, aggregation, joins and Q5."""

import pytest

from repro.baselines import HashPartitioner
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple
from repro.operators import (
    MergeOperator,
    PartialWindowedAggregate,
    WindowedAggregate,
    WindowedJoin,
    WindowedSelfJoin,
    WordCountOperator,
)
from repro.operators.tpch_q5 import DimensionJoin, Q5Stage, build_q5_topology
from repro.workloads import generate_tpch


class TestWordCount:
    def test_counts_accumulate_per_interval(self):
        op = WordCountOperator(window=2)
        state = KeyedState(window=2)
        for _ in range(3):
            outputs = op.process(StreamTuple(key="w", interval=1), state, 0)
        assert outputs[0].value == 3
        op.process(StreamTuple(key="w", interval=2), state, 0)
        assert op.windowed_count(state, "w") == 4

    def test_window_expiry_limits_count(self):
        op = WordCountOperator(window=1)
        state = KeyedState(window=1)
        op.process(StreamTuple(key="w", interval=1), state, 0)
        op.process(StreamTuple(key="w", interval=2), state, 0)
        assert op.windowed_count(state, "w") == 1

    def test_cost_and_state_models(self):
        op = WordCountOperator(cost_per_tuple=2.0, state_per_tuple=0.5)
        assert op.tuple_cost("any") == 2.0
        assert op.state_delta("any") == 0.5
        assert op.merge_overhead(10) == 10.0

    def test_sink_mode(self):
        op = WordCountOperator(emit_updates=False)
        assert op.process(StreamTuple(key="w", interval=0), KeyedState(), 0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            WordCountOperator(cost_per_tuple=0)
        with pytest.raises(ValueError):
            WordCountOperator(state_per_tuple=-1)


class TestWindowedAggregate:
    def test_sum_reduction(self):
        op = WindowedAggregate(reducer=lambda acc, v: (acc or 0) + v, window=2)
        state = KeyedState(window=2)
        op.process(StreamTuple(key="k", value=5, interval=1), state, 0)
        out = op.process(StreamTuple(key="k", value=7, interval=1), state, 0)
        assert out[0].value == 12
        op.process(StreamTuple(key="k", value=1, interval=2), state, 0)
        assert op.windowed_value(state, "k") == 13

    def test_default_reducer_counts(self):
        op = WindowedAggregate()
        state = KeyedState()
        op.process(StreamTuple(key="k", value=None, interval=0), state, 0)
        out = op.process(StreamTuple(key="k", value=None, interval=0), state, 0)
        assert out[0].value == 2

    def test_partial_plus_merge_equals_contiguous(self):
        """Splitting a key's tuples over two tasks and merging gives the same
        aggregate as processing them on one task (PKG correctness)."""
        reducer = lambda acc, v: (acc or 0) + v
        values = [3, 1, 4, 1, 5, 9, 2, 6]

        contiguous = WindowedAggregate(reducer=reducer)
        state = KeyedState()
        for value in values:
            full = contiguous.process(StreamTuple(key="k", value=value, interval=0), state, 0)
        expected = full[0].value

        partial_op = PartialWindowedAggregate(reducer=reducer)
        task_states = {0: KeyedState(), 1: KeyedState()}
        merge_op = MergeOperator(reducer=reducer)
        merge_state = KeyedState()
        merged_value = None
        for index, value in enumerate(values):
            task = index % 2
            partials = partial_op.process(
                StreamTuple(key="k", value=value, interval=0), task_states[task], task
            )
            merged = merge_op.process(partials[0], merge_state, 0)
            merged_value = merged[0].value
        assert merged_value == expected

    def test_merge_overhead_only_for_partial(self):
        assert WindowedAggregate().merge_overhead(5) == 0.0
        assert PartialWindowedAggregate().merge_overhead(5) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedAggregate(cost_per_tuple=0)
        with pytest.raises(ValueError):
            MergeOperator(cost_per_partial=0)


class TestWindowedJoin:
    def test_two_stream_join_matches(self):
        op = WindowedJoin(window=2)
        state = KeyedState(window=2)
        op.process(StreamTuple(key="k", value="L1", interval=1, stream="left"), state, 0)
        op.process(StreamTuple(key="k", value="L2", interval=1, stream="left"), state, 0)
        out = op.process(
            StreamTuple(key="k", value="R1", interval=1, stream="right"), state, 0
        )
        assert {match for _, match in (tup.value for tup in out)} == {"L1", "L2"}

    def test_join_respects_window(self):
        op = WindowedJoin(window=1)
        state = KeyedState(window=1)
        op.process(StreamTuple(key="k", value="old", interval=1, stream="left"), state, 0)
        op.process(StreamTuple(key="k", value="new", interval=3, stream="left"), state, 0)
        out = op.process(
            StreamTuple(key="k", value="probe", interval=3, stream="right"), state, 0
        )
        assert [match for _, match in (tup.value for tup in out)] == ["new"]

    def test_self_join_counts_pairs(self):
        op = WindowedSelfJoin(window=1)
        state = KeyedState(window=1)
        outputs = []
        for index in range(4):
            outputs = op.process(
                StreamTuple(key="s", value=index, interval=0), state, 0
            )
        # The 4th tuple matches the 3 earlier ones.
        assert len(outputs) == 3

    def test_cost_grows_with_occupancy(self):
        op = WindowedJoin(cost_per_tuple=1.0, cost_per_match=0.5)
        base = op.tuple_cost("k")
        op.observe_occupancy(10)
        assert op.tuple_cost("k") > base

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedJoin(cost_per_tuple=0)
        with pytest.raises(ValueError):
            WindowedJoin(cost_per_match=-1)
        with pytest.raises(ValueError):
            WindowedJoin().observe_occupancy(-1)


class TestQ5Topology:
    def test_dimension_join_enriches(self):
        join = DimensionJoin(lookup=lambda key: key * 10, window=1)
        state = KeyedState(window=1)
        out = join.process(StreamTuple(key=3, value="row", interval=0), state, 0)
        assert out[0].value == ("row", 30)
        assert state.key_size(3) > 0

    def test_build_q5_structure(self):
        dataset = generate_tpch(scale=0.001, seed=0)
        topo = build_q5_topology(
            dataset, lambda name, n: HashPartitioner(n), parallelism=4, window=2
        )
        stages = Q5Stage()
        assert topo.stage_names() == [
            stages.ORDER_JOIN,
            stages.CUSTOMER_JOIN,
            stages.REVENUE_AGG,
        ]
        assert topo.stage(stages.ORDER_JOIN).parallelism == 4
        # The aggregation stage is narrower (nation keys are few).
        assert topo.stage(stages.REVENUE_AGG).parallelism <= 4

    def test_q5_key_mappers_follow_foreign_keys(self):
        dataset = generate_tpch(scale=0.001, seed=0)
        topo = build_q5_topology(
            dataset, lambda name, n: HashPartitioner(n), parallelism=4, window=2
        )
        stages = Q5Stage()
        order_stage = topo.stage(stages.ORDER_JOIN)
        customer_stage = topo.stage(stages.CUSTOMER_JOIN)
        order_key = 1
        customer = order_stage.map_key(order_key)
        assert customer == dataset.customer_of_order(order_key)
        nation = customer_stage.map_key(customer)
        assert nation == dataset.nation_of_customer(customer)
        assert 0 <= nation < 25

    def test_invalid_parallelism(self):
        dataset = generate_tpch(scale=0.001, seed=0)
        with pytest.raises(ValueError):
            build_q5_topology(dataset, lambda name, n: HashPartitioner(n), parallelism=0)
