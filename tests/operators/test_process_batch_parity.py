"""Batch fast-path parity: ``process_batch`` must equal N scalar ``process``
calls — emissions, windowed state, metrics and interval statistics — for
every operator the repo ships (including the default ``OperatorLogic``).

The worker's hot loop now runs :meth:`repro.engine.operator.Task.
process_batch` (one metrics update per batch, ``batch_cost`` instead of
per-tuple ``tuple_cost``); any divergence from the scalar path would
silently skew the measured runtime numbers, so this is pinned per operator.
"""

import numpy as np
import pytest

from repro.engine.operator import OperatorLogic, Task
from repro.engine.tuples import StreamTuple
from repro.operators.tpch_q5 import DimensionJoin
from repro.operators.windowed_aggregate import (
    MergeOperator,
    PartialWindowedAggregate,
    WindowedAggregate,
)
from repro.operators.windowed_join import WindowedJoin, WindowedSelfJoin
from repro.operators.wordcount import WordCountOperator


def _nation_of(key):
    """Deterministic, picklable stand-in for a TPC-H foreign-key lookup."""
    return hash(key) % 5


class ValueDependentOperator(OperatorLogic):
    """Cost and state both depend on the tuple *value*: pins the batch
    fallbacks (batch_cost / batch_state_delta) to per-tuple evaluation."""

    name = "value-dependent"
    stateful = True

    def tuple_cost(self, key, value=None):
        return 0.25 * (1 + ((value or 0) & 3))

    def state_delta(self, key, value=None):
        return 0.5 * (1 + ((value or 0) & 1))


#: Factories (fresh instance per test — operators carry mutable config).
OPERATORS = {
    "default-logic": lambda: OperatorLogic(),
    "value-dependent": lambda: ValueDependentOperator(),
    "wordcount-emitting": lambda: WordCountOperator(window=2, emit_updates=True),
    "wordcount-sink": lambda: WordCountOperator(window=2, emit_updates=False),
    "windowed-aggregate": lambda: WindowedAggregate(window=2),
    "partial-aggregate": lambda: PartialWindowedAggregate(window=2),
    "merge": lambda: MergeOperator(window=2),
    "windowed-join": lambda: WindowedJoin(window=2),
    "windowed-self-join": lambda: WindowedSelfJoin(window=2),
    "dimension-join": lambda: DimensionJoin(lookup=_nation_of, window=2),
}


def _stream(seed=7, tuples_per_interval=60, intervals=2, keys=8):
    rng = np.random.default_rng(seed)
    out = []
    for interval in range(intervals):
        ks = rng.integers(0, keys, tuples_per_interval).tolist()
        vs = rng.integers(1, 5, tuples_per_interval).tolist()
        out.append((interval, ks, vs))
    return out


def _run_scalar(logic, stream):
    task = Task(0, logic)
    outputs = []
    stats = []
    for interval, keys, values in stream:
        for key, value in zip(keys, values):
            for tup in task.process(
                StreamTuple(key=key, value=value, interval=interval)
            ):
                outputs.append((tup.key, tup.value))
        stats.append(task.end_interval(interval))
    return task, outputs, stats


def _run_batched(logic, stream, chunk=17):
    task = Task(0, logic)
    outputs = []
    stats = []
    for interval, keys, values in stream:
        for start in range(0, len(keys), chunk):
            out_keys, out_values = task.process_batch(
                keys[start : start + chunk],
                values[start : start + chunk],
                interval,
            )
            outputs.extend(zip(out_keys, out_values))
        stats.append(task.end_interval(interval))
    return task, outputs, stats


def _state_payloads(task):
    return {key: task.state.payloads(key) for key in task.state.keys()}


@pytest.mark.parametrize("name", sorted(OPERATORS))
class TestProcessBatchParity:
    def test_emissions_state_and_metrics_match_scalar(self, name):
        stream = _stream()
        scalar_task, scalar_out, scalar_stats = _run_scalar(
            OPERATORS[name](), stream
        )
        batch_task, batch_out, batch_stats = _run_batched(
            OPERATORS[name](), stream
        )

        assert batch_out == scalar_out
        assert _state_payloads(batch_task) == _state_payloads(scalar_task)
        assert (
            batch_task.metrics.tuples_processed
            == scalar_task.metrics.tuples_processed
        )
        assert batch_task.metrics.cost_processed == pytest.approx(
            scalar_task.metrics.cost_processed, rel=1e-12
        )
        assert batch_task.metrics.state_installed == pytest.approx(
            scalar_task.metrics.state_installed, rel=1e-12
        )
        assert batch_task.state_size == pytest.approx(
            scalar_task.state_size, rel=1e-12
        )
        for got, expected in zip(batch_stats, scalar_stats):
            assert set(got.keys()) == set(expected.keys())
            for key in expected.keys():
                assert got.frequency(key) == expected.frequency(key)
                assert got.cost(key) == pytest.approx(
                    expected.cost(key), rel=1e-12
                )
                assert got.memory(key) == pytest.approx(
                    expected.memory(key), rel=1e-12
                )

    def test_batch_cost_matches_per_tuple_cost(self, name):
        logic = OPERATORS[name]()
        _, keys, values = _stream(seed=11)[0]
        costs = logic.batch_cost(keys, values)
        expected = [
            logic.tuple_cost(key, value) for key, value in zip(keys, values)
        ]
        if np.ndim(costs) == 0:
            assert [float(costs)] * len(keys) == expected
        else:
            assert costs.tolist() == expected

    def test_empty_batch_is_a_noop(self, name):
        task = Task(0, OPERATORS[name]())
        assert task.process_batch([], [], 0) == ([], [])
        assert task.metrics.tuples_processed == 0


class TestLogicProcessBatchDefault:
    def test_default_flattens_multi_tuple_emissions(self):
        # The self-join emits one tuple per retained match: the default
        # process_batch must flatten exactly like the scalar loop does.
        logic = WindowedSelfJoin(window=2)
        task = Task(0, logic)
        out_keys, out_values = task.process_batch(
            ["s", "s", "s"], [1, 2, 3], 0
        )
        # 0 + 1 + 2 matches for the three consecutive tuples of one key.
        assert len(out_keys) == 3
        assert out_values == [(2, 1), (3, 1), (3, 2)]
