"""Tests for the workload generators (Zipf, fluctuation, Social, Stock, TPC-H)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    SocialFeedWorkload,
    StockExchangeWorkload,
    TPCHStreamWorkload,
    ZipfWorkload,
    apply_fluctuation,
    generate_tpch,
    zipf_frequencies,
)
from repro.workloads.fluctuation import per_task_loads, workload_change


class TestZipfFrequencies:
    def test_total_preserved(self):
        freqs = zipf_frequencies(1000, 0.85, 50_000, np.random.default_rng(0))
        assert sum(freqs.values()) == 50_000

    def test_exact_mode_matches_zipf_shape(self):
        freqs = zipf_frequencies(100, 1.0, 10_000, exact=True)
        assert freqs[0] > freqs[1] > freqs[10]
        assert freqs[0] / freqs[1] == pytest.approx(2.0, rel=1e-6)

    def test_zero_skew_is_uniform(self):
        freqs = zipf_frequencies(10, 0.0, 1_000, exact=True)
        values = list(freqs.values())
        assert max(values) == pytest.approx(min(values))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 0.5, 100)
        with pytest.raises(ValueError):
            zipf_frequencies(10, -1, 100)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 0.5, -1)

    @given(st.integers(1, 2000), st.floats(0, 2), st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_counts_non_negative_and_bounded(self, num_keys, skew, total):
        freqs = zipf_frequencies(num_keys, skew, total, np.random.default_rng(1))
        assert all(count > 0 for count in freqs.values())
        assert sum(freqs.values()) == total


class TestFluctuation:
    def test_zero_fluctuation_is_identity(self):
        freqs = {i: float(i + 1) for i in range(20)}
        assert apply_fluctuation(
            freqs, fluctuation=0.0, task_of=lambda k: k % 4, num_tasks=4
        ) == freqs

    def test_reaches_requested_change(self):
        freqs = zipf_frequencies(2000, 0.85, 100_000, np.random.default_rng(2))
        task_of = lambda key: key % 10
        before = per_task_loads(freqs, task_of, 10)
        shaken = apply_fluctuation(
            freqs, fluctuation=0.8, task_of=task_of, num_tasks=10,
            rng=np.random.default_rng(3),
        )
        after = per_task_loads(shaken, task_of, 10)
        assert workload_change(before, after) >= 0.8

    def test_total_volume_and_key_set_preserved(self):
        freqs = zipf_frequencies(500, 1.0, 20_000, np.random.default_rng(4))
        shaken = apply_fluctuation(
            freqs, fluctuation=1.0, task_of=lambda k: k % 5, num_tasks=5,
            rng=np.random.default_rng(5),
        )
        assert set(shaken) == set(freqs)
        assert sum(shaken.values()) == pytest.approx(sum(freqs.values()))
        # The multiset of frequencies is unchanged (frequencies are swapped).
        assert sorted(shaken.values()) == sorted(freqs.values())

    def test_workload_change_measure(self):
        assert workload_change({0: 10, 1: 10}, {0: 10, 1: 10}) == 0.0
        assert workload_change({0: 10, 1: 10}, {0: 20, 1: 0}) == pytest.approx(1.0)
        assert workload_change({}, {}) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_fluctuation({}, fluctuation=-1, task_of=lambda k: 0, num_tasks=2)
        with pytest.raises(ValueError):
            apply_fluctuation({}, fluctuation=0.5, task_of=lambda k: 0, num_tasks=0)


class TestZipfWorkload:
    def test_take_produces_requested_intervals(self):
        snapshots = ZipfWorkload(
            num_keys=500, tuples_per_interval=10_000, intervals=4, fluctuation=0.5,
            num_tasks=5, seed=1,
        ).take(4)
        assert len(snapshots) == 4
        for snapshot in snapshots:
            assert sum(snapshot.values()) == pytest.approx(10_000, rel=0.01)
            assert all(0 <= key < 500 for key in snapshot)

    def test_fluctuation_changes_task_loads(self):
        workload = ZipfWorkload(
            num_keys=1000, tuples_per_interval=50_000, intervals=3, fluctuation=1.0,
            num_tasks=5, seed=2, sampled=False,
        )
        snapshots = workload.take(3)
        task_of = workload.task_of
        first = per_task_loads(snapshots[0], task_of, 5)
        second = per_task_loads(snapshots[1], task_of, 5)
        assert workload_change(first, second) >= 0.9

    def test_static_workload_when_fluctuation_zero(self):
        snapshots = ZipfWorkload(
            num_keys=100, tuples_per_interval=1_000, intervals=3, fluctuation=0.0,
            seed=3, sampled=False,
        ).take(3)
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(num_keys=0)
        with pytest.raises(ValueError):
            ZipfWorkload(fluctuation=-1)


class TestSocialAndStock:
    def test_social_volume_and_drift(self):
        snapshots = SocialFeedWorkload(
            num_words=2000, tuples_per_interval=20_000, intervals=4, seed=1
        ).take(4)
        assert len(snapshots) == 4
        for snapshot in snapshots:
            assert sum(snapshot.values()) == pytest.approx(20_000)
        # Slow drift: the hot-word set overlaps heavily between intervals.
        def top(snapshot, n=50):
            return set(sorted(snapshot, key=snapshot.get, reverse=True)[:n])
        overlap = len(top(snapshots[0]) & top(snapshots[1])) / 50
        assert overlap > 0.5

    def test_stock_key_domain_and_bursts(self):
        workload = StockExchangeWorkload(
            num_stocks=200, tuples_per_interval=50_000, burst_probability=0.05,
            burst_magnitude=50.0, intervals=6, seed=2,
        )
        snapshots = workload.take(6)
        all_keys = set().union(*snapshots)
        assert len(all_keys) <= 200
        # Bursts make some interval's hottest stock far hotter than the median.
        peaks = [max(snapshot.values()) for snapshot in snapshots]
        assert max(peaks) > 3 * min(peaks) or max(peaks) > 0.05 * 50_000

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SocialFeedWorkload(drift_rate=2.0)
        with pytest.raises(ValueError):
            StockExchangeWorkload(burst_magnitude=0.5)


class TestTPCH:
    def test_generate_row_counts_scale(self):
        small = generate_tpch(scale=0.001, seed=0)
        large = generate_tpch(scale=0.002, seed=0)
        assert large.num_orders > small.num_orders
        assert len(small.lineitems) == small.num_lineitems
        assert set(small.nation_region.values()) <= set(range(5))

    def test_foreign_keys_are_skewed(self):
        dataset = generate_tpch(scale=0.002, fk_skew=0.9, seed=1)
        counts = {}
        for order, _, _ in dataset.lineitems:
            counts[order] = counts.get(order, 0) + 1
        top_share = max(counts.values()) / len(dataset.lineitems)
        uniform_share = 1.0 / dataset.num_orders
        assert top_share > 5 * uniform_share

    def test_lookup_helpers_total(self):
        dataset = generate_tpch(scale=0.001, seed=0)
        for order in range(dataset.num_orders):
            assert 0 <= dataset.customer_of_order(order) < dataset.num_customers
        assert 0 <= dataset.nation_of_customer(0) < 25
        assert 0 <= dataset.nation_of_supplier(0) < 25
        assert 0 <= dataset.region_of_nation(7) < 5
        # Unknown keys fall back deterministically instead of raising.
        assert dataset.customer_of_order(10**9) < dataset.num_customers

    def test_q5_reference_answer_structure(self):
        dataset = generate_tpch(scale=0.002, seed=1)
        revenue = dataset.q5_reference_answer(region=0)
        assert all(dataset.region_of_nation(nation) == 0 for nation in revenue)
        assert all(value > 0 for value in revenue.values())

    def test_stream_distribution_change(self):
        dataset = generate_tpch(scale=0.002, seed=1)
        stream = TPCHStreamWorkload(
            dataset, tuples_per_interval=20_000, intervals=4, change_every=2, seed=1
        )
        snapshots = stream.take(4)
        assert len(snapshots) == 4
        def hot(snapshot, n=20):
            return set(sorted(snapshot, key=snapshot.get, reverse=True)[:n])
        # Before the change the hot sets are similar; across it they differ.
        stable = len(hot(snapshots[0]) & hot(snapshots[1]))
        across = len(hot(snapshots[1]) & hot(snapshots[2]))
        assert across <= stable

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_tpch(scale=0)
        dataset = generate_tpch(scale=0.001)
        with pytest.raises(ValueError):
            TPCHStreamWorkload(dataset, change_every=0)
        with pytest.raises(ValueError):
            TPCHStreamWorkload(dataset, change_fraction=2.0)
