"""Benchmark regenerating Fig. 17 of the paper.

Mixed's migration cost vs the routing-table cap n_a.

Expected shape (paper): tight caps force MinTable-like behaviour; relaxing the cap drops migration sharply.
Run with ``pytest benchmarks/test_fig17_table_cap.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig17_table_cap(run_figure):
    result = run_figure(figures.fig17_table_cap)
    assert len(result) > 0
