"""Benchmark regenerating Fig. 7 of the paper.

Cdf of workload skewness under hash routing, varying n_d and k.

Expected shape (paper): skewness grows with the task count and shrinks with the key-domain size.
Run with ``pytest benchmarks/test_fig07_hash_skew.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig07_hash_skew(run_figure):
    result = run_figure(figures.fig07_hash_skewness)
    assert len(result) > 0
