"""Benchmark regenerating Fig. 13 of the paper.

Simulated throughput and latency vs fluctuation rate f.

Expected shape (paper): Ideal bounds everything; Mixed tracks Ideal; Readj/Storm degrade with f.
Run with ``pytest benchmarks/test_fig13_throughput_latency.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig13_throughput_latency(run_figure):
    result = run_figure(figures.fig13_throughput_latency)
    assert len(result) > 0
