"""Shared machinery for the figure benchmarks.

Every benchmark regenerates one figure of the paper at the benchmark scale
(``REPRO_BENCH_SCALE`` environment variable, default ``tiny``) and prints the
resulting series so the run doubles as a reproduction report.  The figure
drivers are macro-benchmarks, so each is executed once per run
(``benchmark.pedantic`` with a single round) rather than micro-benchmarked.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import get_scale  # noqa: E402

_BENCHMARKS_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark every figure benchmark ``slow`` so CI can deselect the directory."""
    for item in items:
        if _BENCHMARKS_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_scale():
    """Workload scale preset used by every figure benchmark."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "tiny"))


@pytest.fixture
def run_figure(benchmark, bench_scale):
    """Run a figure driver once under pytest-benchmark and print its series."""

    def _run(driver, **kwargs):
        result = benchmark.pedantic(
            driver, args=(bench_scale,), kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(result.to_text())
        return result

    return _run
