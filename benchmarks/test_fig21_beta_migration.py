"""Benchmark regenerating Fig. 21 of the paper.

Minmig migration cost vs the gamma weight beta.

Expected shape (paper): migration cost rises with beta as heavier (state-rich) keys are preferred.
Run with ``pytest benchmarks/test_fig21_beta_migration.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig21_beta_migration(run_figure):
    result = run_figure(figures.fig21_beta_migration)
    assert len(result) > 0
