"""Ablation: LLFD's exchangeable-set Adjust step vs plain least-load fit.

The paper motivates the ``Adjust`` function with the "re-overloading" problem:
moving the heaviest key to the least-loaded task can overload *that* task
unless cheaper resident keys are exchanged out of the way (the Fig. 4 running
example).  This benchmark quantifies the effect: the same skewed snapshots are
balanced by (a) full LLFD and (b) a greedy least-load fit with the Adjust step
disabled, and the residual imbalance of both is reported.
"""

from typing import Dict

from repro.core.assignment import AssignmentFunction
from repro.core.llfd import least_load_fit_decreasing
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.statistics import IntervalStats, StatisticsStore
from repro.experiments.reporting import ExperimentResult
from repro.workloads import ZipfWorkload


def _greedy_without_adjust(costs: Dict, num_tasks: int) -> Dict[int, float]:
    """Plain least-load fit decreasing: no exchangeable set, no second chances."""
    loads = {task: 0.0 for task in range(num_tasks)}
    for key in sorted(costs, key=lambda k: -costs[k]):
        task = min(loads, key=lambda d: (loads[d], d))
        loads[task] += costs[key]
    return loads


def _ablation(scale) -> ExperimentResult:
    result = ExperimentResult(
        figure="Ablation A1",
        title="LLFD with vs without the Adjust exchangeable-set step",
        parameters={"theta_max": 0.0, "scale": scale.name},
        notes=(
            "With Adjust, LLFD resolves the re-overloading problem and reaches a "
            "tighter balance when only the keys of overloaded tasks are re-placed."
        ),
    )
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=scale.num_tasks,
        intervals=scale.intervals,
        seed=3,
    ).take(scale.intervals)
    assignment = AssignmentFunction.hashed(scale.num_tasks, seed=3)
    for index, snapshot in enumerate(workload):
        store = StatisticsStore(window=1)
        store.push(IntervalStats.from_frequencies(index, snapshot))
        costs = store.cost_map()
        # Candidate set: keys of the overloaded tasks only (the Phase II choice).
        loads = load_from_costs(costs, assignment, scale.num_tasks)
        mean = sum(loads.values()) / len(loads)
        overloaded = {task for task, load in loads.items() if load > mean}
        candidates = {key for key in costs if assignment(key) in overloaded}
        remaining = {key: assignment(key) for key in costs if key not in candidates}

        llfd = least_load_fit_decreasing(
            candidates, remaining, costs, costs, scale.num_tasks, 0.0,
            assignment.hash_destination,
        )
        naive_loads = _greedy_without_adjust(
            {key: costs[key] for key in candidates}, scale.num_tasks
        )
        # Seed the naive variant with the loads the non-candidates already impose.
        for key, task in remaining.items():
            naive_loads[task] = naive_loads.get(task, 0.0) + costs[key]
        result.add_row(
            interval=index,
            theta_with_adjust=llfd.max_theta,
            theta_without_adjust=max_balance_indicator(naive_loads),
            exchanges=llfd.exchanges,
        )
    return result


def test_ablation_adjust(run_figure):
    result = run_figure(_ablation)
    with_adjust = sum(row["theta_with_adjust"] for row in result.rows)
    without = sum(row["theta_without_adjust"] for row in result.rows)
    assert with_adjust <= without + 1e-9
