"""Wall-clock process-runtime benchmark (the `repro bench` trajectory).

Unlike the figure benchmarks (fluid model), this one spawns real worker
processes and measures tuples/sec and latency percentiles per strategy —
the first measured data points of the benchmark trajectory.  Marked ``slow``
(like every file in this directory); run with::

    REPRO_BENCH_SCALE=tiny pytest benchmarks/test_runtime_bench.py -s
"""

from repro.runtime.bench import RuntimeSpec, run_bench


def test_runtime_bench_wordcount(bench_scale, tmp_path):
    spec = RuntimeSpec(
        workload="wordcount",
        strategies=["storm", "mixed"],
        parallelism=4,
        scale=bench_scale,
    )
    run, outcomes = run_bench(
        spec, output_path=tmp_path / "BENCH_runtime.json"
    )
    print()
    print(run.result.to_text())

    by_strategy = {row["strategy"]: row for row in run.result.rows}
    for row in by_strategy.values():
        assert row["tuples_per_second"] > 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"]
    # The headline claim: under a Zipf-skewed stream the mixed controller
    # sustains higher measured throughput than static hashing.
    assert (
        by_strategy["mixed"]["tuples_per_second"]
        > by_strategy["storm"]["tuples_per_second"]
    )
    assert outcomes["mixed"].moved_keys_total > 0
    assert (tmp_path / "BENCH_runtime.json").is_file()


def test_runtime_bench_tpch_q5_chain(bench_scale, tmp_path):
    """The Fig. 16 experiment on the process topology: chained starvation.

    The skewed customer-join starves the whole order-join → customer-join →
    revenue-agg chain under static hashing; the mixed controller rebalances
    the join stages online and sustains higher measured end-to-end
    throughput.
    """
    spec = RuntimeSpec(
        workload="tpch_q5_chain",
        strategies=["storm", "mixed"],
        parallelism=2,
        scale=bench_scale,
    )
    run, outcomes = run_bench(spec, output_path=tmp_path / "BENCH_runtime.json")
    print()
    print(run.result.to_text())

    chain = {
        row["strategy"]: row
        for row in run.result.rows
        if row["stage"] == "chain"
    }
    for row in chain.values():
        assert row["tuples_per_second"] > 0
        assert row["latency_p99_ms"] >= row["latency_p50_ms"]
    # The Fig. 16 claim, measured end to end on the process chain.
    assert (
        chain["mixed"]["tuples_per_second"]
        > chain["storm"]["tuples_per_second"]
    )
    # The rebalancing happened in the join stages, where the skew lives.
    mixed = outcomes["mixed"]
    join_moves = sum(
        stage.moved_keys_total
        for name, stage in mixed.stages.items()
        if name != "revenue-agg"
    )
    assert join_moves > 0
    assert (tmp_path / "BENCH_runtime.json").is_file()
