"""Benchmark regenerating Fig. 19 of the paper.

Migration cost vs state window size w.

Expected shape (paper): larger windows offer cheaper migration candidates; Mixed stays below MinTable.
Run with ``pytest benchmarks/test_fig19_window.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig19_window(run_figure):
    result = run_figure(figures.fig19_window_size)
    assert len(result) > 0
