"""Benchmark regenerating Fig. 15 of the paper.

Throughput over time while one task instance is added.

Expected shape (paper): Mixed re-balances onto the new instance within one planning round.
Run with ``pytest benchmarks/test_fig15_scale_out.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig15_scale_out(run_figure):
    result = run_figure(figures.fig15_scale_out)
    assert len(result) > 0
