"""Benchmark regenerating Fig. 9 of the paper.

Plan-generation time and migration cost vs theta_max.

Expected shape (paper): both metrics fall as theta_max is relaxed; MinTable ~3x Mixed's migration at tight theta.
Run with ``pytest benchmarks/test_fig09_vary_theta.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig09_vary_theta(run_figure):
    result = run_figure(figures.fig09_vary_theta)
    assert len(result) > 0
