"""Benchmark regenerating Fig. 14 of the paper.

Throughput on the social and stock surrogate workloads vs theta_max.

Expected shape (paper): Mixed leads on both workloads; PKG below Mixed on Social; Readj needs loose theta.
Run with ``pytest benchmarks/test_fig14_real_throughput.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig14_real_throughput(run_figure):
    result = run_figure(figures.fig14_real_world_throughput)
    assert len(result) > 0
