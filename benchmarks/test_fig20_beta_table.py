"""Benchmark regenerating Fig. 20 of the paper.

Minmig routing-table size vs the gamma weight beta.

Expected shape (paper): larger beta prefers heavy keys, so the table shrinks and stabilises for beta>=1.5.
Run with ``pytest benchmarks/test_fig20_beta_table.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig20_beta_table(run_figure):
    result = run_figure(figures.fig20_beta_table_size)
    assert len(result) > 0
