"""Benchmark regenerating Fig. 11 of the paper.

Compact representation: planning time and load-estimation error vs degree r.

Expected shape (paper): an order-of-magnitude planning speed-up with sub-1% estimation error.
Run with ``pytest benchmarks/test_fig11_discretization.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig11_discretization(run_figure):
    result = run_figure(figures.fig11_discretization)
    assert len(result) > 0
