"""Benchmark regenerating Fig. 8 of the paper.

Plan-generation time and migration cost vs number of task instances.

Expected shape (paper): Mixed pays slightly more planning time than MinTable but far less migration.
Run with ``pytest benchmarks/test_fig08_vary_nd.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig08_vary_nd(run_figure):
    result = run_figure(figures.fig08_vary_task_instances)
    assert len(result) > 0
