"""Ablation: HLHE greedy deviation-cancelling vs naive nearest-value rounding.

Section IV-B argues that rounding every value independently to its nearest
representative accumulates a large total deviation, while the proposed
two-step HLHE scheme keeps the accumulated deviation near zero (Theorem 3,
Fig. 6).  This benchmark measures both discretisers over Zipf-distributed key
costs for several degrees R and reports the total deviation and the resulting
per-task load-estimation error.
"""

import numpy as np

from repro.core.discretization import (
    HLHEDiscretizer,
    NearestValueDiscretizer,
    total_deviation,
)
from repro.experiments.reporting import ExperimentResult
from repro.workloads import zipf_frequencies


def _ablation(scale) -> ExperimentResult:
    result = ExperimentResult(
        figure="Ablation A2",
        title="HLHE deviation-cancelling vs naive nearest-value discretisation",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "HLHE's accumulated deviation stays near zero at every degree R, while "
            "naive rounding drifts with R."
        ),
    )
    freqs = zipf_frequencies(
        scale.num_keys, scale.skew, scale.tuples_per_interval, np.random.default_rng(1)
    )
    values = list(freqs.values())
    total = sum(values)
    for degree in (2, 8, 32, 128):
        for name, discretizer in (
            ("hlhe", HLHEDiscretizer(degree)),
            ("nearest", NearestValueDiscretizer(degree)),
        ):
            rounded = discretizer.discretize(values)
            deviation = total_deviation(values, rounded)
            result.add_row(
                degree=degree,
                discretizer=name,
                total_deviation=deviation,
                relative_deviation_pct=deviation / total * 100,
                distinct_values=len(set(rounded)),
            )
    return result


def test_ablation_discretization(run_figure):
    result = run_figure(_ablation)
    for degree in (2, 8, 32, 128):
        hlhe = result.filter(degree=degree, discretizer="hlhe")[0]
        nearest = result.filter(degree=degree, discretizer="nearest")[0]
        assert hlhe["total_deviation"] <= nearest["total_deviation"] + 1e-6
