"""Benchmark regenerating Fig. 18 of the paper.

Minmig routing-table growth along successive adjustments.

Expected shape (paper): the table grows monotonically towards (N_D-1)/N_D * K entries.
Run with ``pytest benchmarks/test_fig18_table_growth.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig18_table_growth(run_figure):
    result = run_figure(figures.fig18_table_growth)
    assert len(result) > 0
