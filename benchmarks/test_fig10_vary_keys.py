"""Benchmark regenerating Fig. 10 of the paper.

Plan-generation time and migration cost vs key-domain size k.

Expected shape (paper): planning time grows with K; Mixed's migration cost stays below MinTable's.
Run with ``pytest benchmarks/test_fig10_vary_keys.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig10_vary_keys(run_figure):
    result = run_figure(figures.fig10_vary_key_domain)
    assert len(result) > 0
