"""Benchmark regenerating Fig. 16 of the paper.

Continuous tpc-h q5 pipeline throughput under periodic distribution change.

Expected shape (paper): Mixed sustains the best throughput and recovers fastest after each change.
Run with ``pytest benchmarks/test_fig16_tpch_q5.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig16_tpch_q5(run_figure):
    result = run_figure(figures.fig16_tpch_q5)
    assert len(result) > 0
