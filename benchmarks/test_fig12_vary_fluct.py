"""Benchmark regenerating Fig. 12 of the paper.

Planner comparison (mixed/mintable/readj/mixedbf) vs fluctuation rate f.

Expected shape (paper): Readj and MixedBF planning times explode with f; Mixed's migration grows slowest.
Run with ``pytest benchmarks/test_fig12_vary_fluct.py --benchmark-only`` (set
``REPRO_BENCH_SCALE=small`` or ``paper`` for larger workloads).
"""

from repro.experiments import figures


def test_fig12_vary_fluct(run_figure):
    result = run_figure(figures.fig12_vary_fluctuation)
    assert len(result) > 0
