"""Pytest bootstrap: make ``src/`` importable even when the package has not
been installed (useful in offline environments where ``pip install -e .`` is
unavailable), and register the shared markers."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running figure reproduction; deselected in CI with -m 'not slow'",
    )
