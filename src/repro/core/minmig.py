"""MinMig — Algorithm 3 of the paper.

MinMig minimises migration cost: Phase I does nothing (the existing routing
table is kept untouched, so no key is rerouted unless the balance constraint
forces it), and keys are selected for migration by the largest migration
priority index ``γ_i(k, w) = c_i(k)^β / S_i(k, w)`` — i.e. keys that shed the
most load per unit of transferred state.

Because it never cleans, MinMig's routing table grows monotonically across
adjustments, converging towards ``(N_D − 1)/N_D · K`` entries (Fig. 18), which
is why the paper excludes it (and plain LLFD) from the system-level
experiments: it cannot bound the table memory.
"""

from __future__ import annotations

from typing import Hashable, Set

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import LargestGammaFirst, SelectionCriteria
from repro.core.planner import (
    PlannerConfig,
    RebalanceAlgorithm,
    register_algorithm,
)
from repro.core.statistics import StatisticsStore

__all__ = ["MinMigAlgorithm"]

Key = Hashable


@register_algorithm
class MinMigAlgorithm(RebalanceAlgorithm):
    """Migration-cost-minimising rebalancer (Algorithm 3)."""

    name = "minmig"
    retain_unobserved_entries = True

    def selection_criteria(self, config: PlannerConfig) -> SelectionCriteria:
        return LargestGammaFirst(beta=config.beta)

    def keys_to_clean(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> Set[Key]:
        # Phase I: do nothing.
        return set()
