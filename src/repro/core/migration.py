"""Migration bookkeeping: ``Δ(F, F′)``, migration plans and migration cost.

When the controller replaces the assignment function ``F`` with ``F′``, every
key whose destination changes must have its state (the last ``w`` intervals of
it) moved from the old task to the new one.  The migration cost of the plan is

    M_i(w, F, F′) = Σ_{k ∈ Δ(F, F′)} S_i(k, w)

and the evaluation reports it as a *percentage* of the total state held by the
operator, which is what :func:`migration_cost_fraction` computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.statistics import StatisticsStore

__all__ = [
    "KeyMove",
    "MigrationPlan",
    "assignment_delta",
    "migration_cost",
    "migration_cost_fraction",
    "build_migration_plan",
]

Key = Hashable
Assignment = Callable[[Key], int]


@dataclass(frozen=True)
class KeyMove:
    """A single key migration: move ``key``'s state from ``source`` to ``target``."""

    key: Key
    source: int
    target: int
    state_size: float = 0.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(f"key {self.key!r} move has identical source and target")
        if self.state_size < 0:
            raise ValueError("state_size must be non-negative")


@dataclass
class MigrationPlan:
    """The set of key moves produced by one rebalancing decision."""

    moves: List[KeyMove] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)

    @property
    def keys(self) -> Set[Key]:
        """Keys involved in the migration (``Δ(F, F′)``)."""
        return {move.key for move in self.moves}

    @property
    def total_state(self) -> float:
        """``M_i(w, F, F′)`` — total state volume to transfer."""
        return sum(move.state_size for move in self.moves)

    def moves_by_source(self) -> Dict[int, List[KeyMove]]:
        """Group the moves by the task that must send state."""
        groups: Dict[int, List[KeyMove]] = {}
        for move in self.moves:
            groups.setdefault(move.source, []).append(move)
        return groups

    def moves_by_target(self) -> Dict[int, List[KeyMove]]:
        """Group the moves by the task that must receive state."""
        groups: Dict[int, List[KeyMove]] = {}
        for move in self.moves:
            groups.setdefault(move.target, []).append(move)
        return groups

    def affected_tasks(self) -> Set[int]:
        """All tasks that either send or receive state."""
        tasks: Set[int] = set()
        for move in self.moves:
            tasks.add(move.source)
            tasks.add(move.target)
        return tasks


def assignment_delta(
    old: Assignment,
    new: Assignment,
    keys: Iterable[Key],
) -> Set[Key]:
    """``Δ(F, F′)``: keys (among ``keys``) whose destination changes."""
    return {key for key in keys if old(key) != new(key)}


def migration_cost(
    delta: Iterable[Key],
    stats: StatisticsStore,
    window: Optional[int] = None,
) -> float:
    """``M_i(w, F, F′) = Σ_{k ∈ Δ} S_i(k, w)``."""
    return sum(stats.windowed_memory(key, window) for key in delta)


def migration_cost_fraction(
    delta: Iterable[Key],
    stats: StatisticsStore,
    window: Optional[int] = None,
) -> float:
    """Migration cost as a fraction of the operator's total retained state.

    This is the "Migration Cost (%)" metric of Figs. 8–12 and 17–21 (divided by
    100).  Returns 0.0 when the operator holds no state at all.
    """
    total = stats.total_windowed_memory(window)
    if total <= 0.0:
        return 0.0
    return migration_cost(delta, stats, window) / total


def build_migration_plan(
    old: Assignment,
    new: Assignment,
    keys: Iterable[Key],
    stats: Optional[StatisticsStore] = None,
    window: Optional[int] = None,
) -> MigrationPlan:
    """Construct the :class:`MigrationPlan` realising ``F → F′`` over ``keys``."""
    moves: List[KeyMove] = []
    for key in keys:
        source = old(key)
        target = new(key)
        if source == target:
            continue
        state = stats.windowed_memory(key, window) if stats is not None else 0.0
        moves.append(KeyMove(key=key, source=source, target=target, state_size=state))
    return MigrationPlan(moves=moves)
