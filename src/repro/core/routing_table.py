"""The explicit routing table ``A`` of the mixed assignment function.

A routing table is a bounded mapping from keys to downstream task instances.
It only holds entries for the handful of keys whose destination differs from
(or must be pinned regardless of) the hash function; every other key falls
through to the hash.  Editing this table is how the controller redistributes
workload (Section II of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["RoutingTable", "RoutingTableOverflowError"]

Key = Hashable


class RoutingTableOverflowError(RuntimeError):
    """Raised when adding an entry would exceed the table's ``max_size``."""


class RoutingTable:
    """Bounded mapping ``key -> task`` used for explicit routing.

    Parameters
    ----------
    entries:
        Optional initial ``{key: task}`` mapping.
    max_size:
        Optional maximum number of entries (``A_max`` in the paper).  ``None``
        means unbounded (used by MinMig/LLFD which do not control table size).
    """

    __slots__ = ("_entries", "_max_size", "_version")

    def __init__(
        self,
        entries: Optional[Mapping[Key, int]] = None,
        max_size: Optional[int] = None,
    ) -> None:
        if max_size is not None and max_size < 0:
            raise ValueError(f"max_size must be non-negative, got {max_size}")
        self._max_size = max_size
        self._version = 0
        self._entries: Dict[Key, int] = dict(entries) if entries else {}
        if max_size is not None and len(self._entries) > max_size:
            raise RoutingTableOverflowError(
                f"initial entries ({len(self._entries)}) exceed max_size ({max_size})"
            )

    # -- dict-like protocol -------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)

    def __getitem__(self, key: Key) -> int:
        return self._entries[key]

    def get(self, key: Key, default: Optional[int] = None) -> Optional[int]:
        """Return the destination of ``key`` or ``default`` if absent."""
        return self._entries.get(key, default)

    def get_many(self, keys: Iterable[Key]) -> List[Optional[int]]:
        """Bulk :meth:`get` over many keys (``None`` for keys without entry)."""
        get = self._entries.get
        return [get(key) for key in keys]

    def items(self) -> Iterable[Tuple[Key, int]]:
        """Iterate over ``(key, task)`` entries."""
        return self._entries.items()

    def keys(self) -> Iterable[Key]:
        return self._entries.keys()

    def values(self) -> Iterable[int]:
        return self._entries.values()

    # -- mutation -----------------------------------------------------------

    def set(self, key: Key, task: int, *, enforce_limit: bool = True) -> None:
        """Add or update the entry for ``key``.

        With ``enforce_limit`` (the default) the ``max_size`` bound is checked
        when the key is new.  Algorithms that only check the size at the end of
        a planning round (e.g. Mixed's inner loop) pass ``enforce_limit=False``.
        """
        if (
            enforce_limit
            and self._max_size is not None
            and key not in self._entries
            and len(self._entries) >= self._max_size
        ):
            raise RoutingTableOverflowError(
                f"routing table full (max_size={self._max_size}); cannot add {key!r}"
            )
        self._entries[key] = task
        self._version += 1

    def remove(self, key: Key) -> int:
        """Remove and return the destination of ``key``.

        Raises ``KeyError`` if the key has no entry.
        """
        destination = self._entries.pop(key)
        self._version += 1
        return destination

    def discard(self, key: Key) -> Optional[int]:
        """Remove the entry for ``key`` if present, returning it (or ``None``)."""
        destination = self._entries.pop(key, None)
        if destination is not None:
            self._version += 1
        return destination

    def clear(self) -> None:
        """Remove every entry (the cleaning phase of MinTable)."""
        self._entries.clear()
        self._version += 1

    # -- misc ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic edit counter; lets routing caches detect table changes."""
        return self._version

    @property
    def max_size(self) -> Optional[int]:
        """Maximum number of entries, or ``None`` if unbounded."""
        return self._max_size

    @property
    def size(self) -> int:
        """Current number of entries (``N_A``)."""
        return len(self._entries)

    def overflow(self) -> int:
        """Number of entries in excess of ``max_size`` (0 when unbounded)."""
        if self._max_size is None:
            return 0
        return max(0, len(self._entries) - self._max_size)

    def within_limit(self) -> bool:
        """True when the table respects its ``max_size`` bound."""
        return self.overflow() == 0

    def copy(self, *, max_size: Optional[int] = "unchanged") -> "RoutingTable":  # type: ignore[assignment]
        """Return a deep copy; ``max_size`` may be overridden."""
        new_max = self._max_size if max_size == "unchanged" else max_size
        table = RoutingTable(max_size=None)
        table._entries = dict(self._entries)
        table._max_size = new_max
        table._version = self._version
        return table

    def as_dict(self) -> Dict[Key, int]:
        """Return a plain ``dict`` snapshot of the entries."""
        return dict(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RoutingTable):
            return self._entries == other._entries
        if isinstance(other, Mapping):
            return self._entries == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "inf" if self._max_size is None else str(self._max_size)
        return f"RoutingTable(size={len(self._entries)}, max_size={bound})"
