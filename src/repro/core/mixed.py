"""Mixed — Algorithm 4 of the paper — and its brute-force variant MixedBF.

Mixed combines the two heuristics: it starts from MinMig (no cleaning, γ-based
selection) and, whenever the resulting routing table exceeds ``A_max``, retries
after moving back ``n`` table entries chosen by the smallest-window-memory
criterion ``η`` (cheap to reroute because they carry little state).  ``n`` is
grown by the amount of overflow observed in the previous trial, so only a small
number of trials is needed — unlike :class:`MixedBruteForceAlgorithm`, which
evaluates every possible ``n`` and picks the cheapest feasible plan (the
``MixedBF`` baseline of Fig. 12, included to show the heuristic's speed-up).

The paper's Theorem 2/4 states that Mixed's balance is never worse than
Simple's; property tests in ``tests/core/test_theorems.py`` check this.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import (
    LargestGammaFirst,
    SelectionCriteria,
    SmallestMemoryFirst,
)
from repro.core.planner import (
    PlannerConfig,
    RebalanceAlgorithm,
    RebalanceResult,
    register_algorithm,
)
from repro.core.statistics import StatisticsStore

__all__ = ["MixedAlgorithm", "MixedBruteForceAlgorithm"]

Key = Hashable


def _cleaning_order(
    assignment: AssignmentFunction,
    stats: StatisticsStore,
    config: PlannerConfig,
) -> List[Key]:
    """Routing-table keys ordered by the cleaning criterion ``η``.

    Smallest window memory first: moving these keys back to their hash
    destination costs the least state transfer.
    """
    eta = SmallestMemoryFirst()
    table_keys = list(assignment.routing_table.keys())
    costs = stats.cost_map()
    memories = stats.memory_map(config.window)
    return eta.sort(table_keys, costs, memories)


@register_algorithm
class MixedAlgorithm(RebalanceAlgorithm):
    """Algorithm 4: incremental-cleaning combination of MinMig and MinTable."""

    name = "mixed"
    retain_unobserved_entries = True

    #: Safety bound on the number of cleaning trials; the loop normally exits
    #: after one or two rounds because ``n`` grows by the observed overflow.
    max_rounds: int = 64

    def selection_criteria(self, config: PlannerConfig) -> SelectionCriteria:
        return LargestGammaFirst(beta=config.beta)

    def keys_to_clean(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> Set[Key]:  # pragma: no cover - the template hook is bypassed by _plan
        return set()

    def _plan(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> RebalanceResult:
        order = _cleaning_order(assignment, stats, config)
        table_size = len(order)
        n = 0
        rounds = 0
        result: Optional[RebalanceResult] = None
        while True:
            rounds += 1
            cleaned = set(order[:n])
            result = self.plan_with_cleaning(assignment, stats, config, cleaned)
            overflow = (
                0
                if config.max_table_size is None
                else max(0, result.table_size - config.max_table_size)
            )
            if overflow == 0 or n >= table_size or rounds >= self.max_rounds:
                break
            # Line 10 of Algorithm 4: retry after moving back as many extra
            # entries as the table overflowed by.  Growing ``n`` monotonically
            # guarantees termination even when one round's overflow is small.
            n = min(table_size, max(n + 1, n + overflow))
        result.cleaning_rounds = rounds
        return result


@register_algorithm
class MixedBruteForceAlgorithm(MixedAlgorithm):
    """MixedBF: evaluate every cleaning depth ``n`` and keep the best plan.

    "Best" means: among the plans whose routing table respects ``A_max``, the
    one with the smallest migration cost (ties broken towards smaller tables);
    if no plan is feasible, the one with the smallest overflow.  This is the
    expensive exhaustive search the paper contrasts Mixed against in Fig. 12.
    """

    name = "mixedbf"

    def _plan(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> RebalanceResult:
        order = _cleaning_order(assignment, stats, config)
        best: Optional[RebalanceResult] = None
        best_key: Optional[tuple] = None
        rounds = 0
        for n in range(len(order) + 1):
            rounds += 1
            cleaned = set(order[:n])
            candidate = self.plan_with_cleaning(assignment, stats, config, cleaned)
            overflow = (
                0
                if config.max_table_size is None
                else max(0, candidate.table_size - config.max_table_size)
            )
            # Feasible plans sort before infeasible ones; then by migration
            # cost, then by table size, then by cleaning depth.
            key = (
                overflow > 0,
                overflow,
                candidate.migration_cost,
                candidate.table_size,
                n,
            )
            if best_key is None or key < best_key:
                best = candidate
                best_key = key
        assert best is not None  # len(order) + 1 >= 1 iterations always run
        best.cleaning_rounds = rounds
        return best
