"""Compact statistics representation and the adapted Mixed planner (Section IV).

Transmitting and planning over per-key statistics does not scale to millions of
keys, so the controller groups keys into six-dimensional records::

    (d', d, d_h, v_c, v_S, #)

where ``d'`` is the next destination (``nil`` while the record sits in the
candidate set), ``d`` the current destination, ``d_h`` the hash destination,
``v_c``/``v_S`` the *discretised* computation cost and window memory of each
key in the group, and ``#`` the number of grouped keys.

:class:`CompactStatistics` builds the records from an interval snapshot, an
assignment function and a discretiser.  :class:`CompactMixedPlanner` runs the
adapted Mixed algorithm directly over the records (splitting a record when only
part of its keys must move) and finally expands the record-level moves back to
concrete keys — reproducing Fig. 11's order-of-magnitude planning-time
reduction at the price of a bounded load-estimation error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import DEFAULT_BETA, gamma_index
from repro.core.discretization import HLHEDiscretizer
from repro.core.load import load_ceiling, load_from_costs, max_balance_indicator
from repro.core.migration import build_migration_plan, migration_cost_fraction
from repro.core.planner import PlannerConfig, RebalanceResult
from repro.core.routing_table import RoutingTable
from repro.core.statistics import StatisticsStore

__all__ = [
    "CompactRecord",
    "CompactStatistics",
    "CompactMixedPlanner",
    "load_estimation_error",
]

Key = Hashable

_EPS = 1e-9

#: Group signature: (current destination d, hash destination d_h, v_c, v_S).
GroupSignature = Tuple[int, int, float, float]


@dataclass(frozen=True)
class CompactRecord:
    """One six-dimensional record of the compact representation."""

    next_dest: Optional[int]  # d' — None encodes the paper's ``nil``
    current: int  # d
    hash_dest: int  # d_h
    cost: float  # v_c (discretised, per key)
    memory: float  # v_S (discretised, per key)
    count: int  # number of keys grouped in this record

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("record count must be non-negative")
        if self.cost < 0 or self.memory < 0:
            raise ValueError("record cost/memory must be non-negative")

    @property
    def signature(self) -> GroupSignature:
        """The grouping signature ``(d, d_h, v_c, v_S)``."""
        return (self.current, self.hash_dest, self.cost, self.memory)

    @property
    def total_cost(self) -> float:
        """Aggregate load carried by all keys of the record (``v_c · #``)."""
        return self.cost * self.count

    @property
    def total_memory(self) -> float:
        """Aggregate state carried by all keys of the record (``v_S · #``)."""
        return self.memory * self.count

    @property
    def is_explicit(self) -> bool:
        """True when the record's keys need a routing-table entry (d ≠ d_h)."""
        return self.current != self.hash_dest

    def split(self, count: int) -> Tuple["CompactRecord", "CompactRecord"]:
        """Split into ``(taken, remainder)`` records of ``count`` / rest keys."""
        if count < 0 or count > self.count:
            raise ValueError(f"cannot take {count} keys from a record of {self.count}")
        return replace(self, count=count), replace(self, count=self.count - count)


class CompactStatistics:
    """The full compact view of one planning round's statistics."""

    def __init__(
        self,
        records: List[CompactRecord],
        key_groups: Dict[GroupSignature, List[Key]],
        num_tasks: int,
    ) -> None:
        self.records = records
        self.key_groups = key_groups
        self.num_tasks = int(num_tasks)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_stats(
        cls,
        stats: StatisticsStore,
        assignment: AssignmentFunction,
        discretizer: Optional[HLHEDiscretizer] = None,
        window: Optional[int] = None,
    ) -> "CompactStatistics":
        """Build the records from per-key statistics.

        ``discretizer=None`` keeps the original (undiscretised) values — the
        "Original Key Space" data point of Fig. 11(a), where every distinct
        value forms its own group.
        """
        costs = stats.cost_map()
        memories = stats.memory_map(window)
        keys = list(costs.keys())
        if discretizer is not None:
            disc_costs = discretizer.discretize_map(costs)
            disc_mems = discretizer.discretize_map(
                {key: memories.get(key, 0.0) for key in keys}
            )
        else:
            disc_costs = dict(costs)
            disc_mems = {key: memories.get(key, 0.0) for key in keys}

        groups: Dict[GroupSignature, List[Key]] = {}
        for key in keys:
            signature = (
                assignment(key),
                assignment.hash_destination(key),
                disc_costs[key],
                disc_mems[key],
            )
            groups.setdefault(signature, []).append(key)

        records = [
            CompactRecord(
                next_dest=signature[0],
                current=signature[0],
                hash_dest=signature[1],
                cost=signature[2],
                memory=signature[3],
                count=len(group_keys),
            )
            for signature, group_keys in sorted(groups.items(), key=lambda kv: repr(kv[0]))
        ]
        # Deterministic expansion order inside each group.
        for group_keys in groups.values():
            group_keys.sort(key=repr)
        return cls(records, groups, assignment.num_tasks)

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def total_keys(self) -> int:
        return sum(record.count for record in self.records)

    def estimated_loads(self, records: Optional[Sequence[CompactRecord]] = None) -> Dict[int, float]:
        """Per-task load estimated from (discretised) record costs by ``d'``."""
        records = self.records if records is None else records
        loads: Dict[int, float] = {task: 0.0 for task in range(self.num_tasks)}
        for record in records:
            if record.next_dest is None:
                continue
            loads[record.next_dest] += record.total_cost
        return loads


@dataclass
class CompactPlanOutcome:
    """A :class:`RebalanceResult` plus compact-specific diagnostics."""

    result: RebalanceResult
    record_count: int
    estimated_loads: Dict[int, float] = field(default_factory=dict)
    load_estimation_error: float = 0.0


class CompactMixedPlanner:
    """Adapted Mixed algorithm running over compact records.

    The structure mirrors Algorithm 4: an (incrementally deepened) cleaning
    phase by smallest ``v_S`` first, candidate selection from overloaded tasks
    by largest γ, and a least-load-fit assignment phase.  Records are split
    when only part of their keys must move, which keeps load estimates tight
    without falling back to per-key work.
    """

    #: Sentinel distinguishing "use the default ladder" from an explicit
    #: ``discretizer=None`` (no discretisation, the original-key-space
    #: baseline of Fig. 11(a)).
    _DEFAULT_DISCRETIZER = object()

    def __init__(
        self,
        discretizer: Any = _DEFAULT_DISCRETIZER,
        max_rounds: int = 64,
    ) -> None:
        if discretizer is self._DEFAULT_DISCRETIZER:
            discretizer = HLHEDiscretizer(8)
        self.discretizer: Optional[HLHEDiscretizer] = discretizer
        self.max_rounds = max_rounds

    name = "compact-mixed"

    # -- public API ---------------------------------------------------------------

    def plan(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: Optional[PlannerConfig] = None,
    ) -> CompactPlanOutcome:
        """Run the adapted Mixed algorithm and expand the plan to concrete keys."""
        config = config if config is not None else PlannerConfig()
        start = time.perf_counter()
        compact = CompactStatistics.from_stats(
            stats, assignment, self.discretizer, config.window
        )
        outcome = self._plan_over_records(assignment, stats, config, compact)
        outcome.result.generation_time = time.perf_counter() - start
        return outcome

    # -- record-level Mixed ----------------------------------------------------------

    def _plan_over_records(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
        compact: CompactStatistics,
    ) -> CompactPlanOutcome:
        explicit_keys = sum(
            record.count for record in compact.records if record.is_explicit
        )
        n = 0
        rounds = 0
        final_records: List[CompactRecord] = compact.records
        while True:
            rounds += 1
            final_records = self._single_trial(compact, config, clean_keys=n)
            table_size = sum(
                record.count
                for record in final_records
                if record.next_dest is not None
                and record.next_dest != record.hash_dest
            )
            overflow = (
                0
                if config.max_table_size is None
                else max(0, table_size - config.max_table_size)
            )
            if overflow == 0 or n >= explicit_keys or rounds >= self.max_rounds:
                break
            n = min(explicit_keys, max(n + 1, n + overflow))

        outcome = self._expand(assignment, stats, config, compact, final_records)
        outcome.result.cleaning_rounds = rounds
        outcome.result.moved_back = n
        return outcome

    def _single_trial(
        self,
        compact: CompactStatistics,
        config: PlannerConfig,
        clean_keys: int,
    ) -> List[CompactRecord]:
        """One cleaning/preparing/assigning pass over the records."""
        num_tasks = compact.num_tasks
        records: List[CompactRecord] = [replace(r) for r in compact.records]

        # Phase I: move back `clean_keys` keys chosen from explicitly routed
        # records, smallest memory (v_S) first.  Records may be split.
        if clean_keys > 0:
            explicit = sorted(
                (idx for idx, r in enumerate(records) if r.is_explicit),
                key=lambda idx: (records[idx].memory, repr(records[idx].signature)),
            )
            remaining = clean_keys
            for idx in explicit:
                if remaining <= 0:
                    break
                record = records[idx]
                take = min(record.count, remaining)
                moved, rest = record.split(take)
                moved = replace(moved, next_dest=moved.hash_dest)
                records[idx] = rest
                records.append(moved)
                remaining -= take
            records = [r for r in records if r.count > 0]

        # Phase II: compute estimated loads by d' and disassociate (set d'=nil)
        # record portions from overloaded tasks, largest gamma first.
        loads = {task: 0.0 for task in range(num_tasks)}
        for record in records:
            if record.next_dest is not None:
                loads[record.next_dest] += record.total_cost
        ceiling = load_ceiling(loads, config.theta_max)

        candidates: List[CompactRecord] = []
        task_records: Dict[int, List[CompactRecord]] = {t: [] for t in range(num_tasks)}
        for record in records:
            if record.next_dest is None:
                candidates.append(record)
            else:
                task_records[record.next_dest].append(record)

        for task in range(num_tasks):
            recs = task_records[task]
            ordered = sorted(
                range(len(recs)),
                key=lambda idx, recs=recs: (
                    -gamma_index(recs[idx].cost, recs[idx].memory, config.beta),
                    repr(recs[idx].signature),
                ),
            )
            excess = loads[task] - ceiling
            for idx in ordered:
                record = task_records[task][idx]
                if excess <= _EPS or record.cost <= 0:
                    continue
                # Number of keys to shed from this record (never more than it has).
                shed = min(record.count, int(-(-excess // record.cost)))
                moved, rest = record.split(shed)
                moved = replace(moved, next_dest=None)
                candidates.append(moved)
                task_records[task][idx] = rest
                excess -= moved.total_cost
                loads[task] -= moved.total_cost
            task_records[task] = [r for r in task_records[task] if r.count > 0]

        # Phase III: adapted LLFD over candidate records.  Candidates are
        # processed in descending per-key cost; a record is split so that each
        # chunk fills the least-loaded task up to the ceiling.  When no task
        # has room, an Adjust-style exchange displaces strictly cheaper record
        # portions from the target task back into the candidate heap.
        placed_final = self._assign_candidates(
            candidates, task_records, loads, ceiling, num_tasks, config
        )
        return placed_final

    def _assign_candidates(
        self,
        candidates: List[CompactRecord],
        task_records: Dict[int, List[CompactRecord]],
        loads: Dict[int, float],
        ceiling: float,
        num_tasks: int,
        config: PlannerConfig,
    ) -> List[CompactRecord]:
        """Record-level LLFD (Phase III of the adapted Mixed algorithm)."""
        import heapq
        import itertools

        counter = itertools.count()
        heap: List[Tuple[float, str, int, CompactRecord]] = []
        for record in candidates:
            if record.count > 0:
                heapq.heappush(
                    heap, (-record.cost, repr(record.signature), next(counter), record)
                )

        def push_candidate(record: CompactRecord) -> None:
            heapq.heappush(
                heap, (-record.cost, repr(record.signature), next(counter), record)
            )

        def place(task: int, record: CompactRecord, count: int) -> CompactRecord:
            """Assign ``count`` keys of ``record`` to ``task``; return remainder."""
            chunk, remainder = record.split(count)
            chunk = replace(chunk, next_dest=task)
            task_records[task].append(chunk)
            loads[task] += chunk.total_cost
            return remainder

        def try_exchange(task: int, cost: float) -> bool:
            """Displace cheaper portions from ``task`` so one key of ``cost`` fits."""
            needed = loads[task] + cost - ceiling
            displaceable = sorted(
                (idx for idx, r in enumerate(task_records[task]) if 0 < r.cost < cost),
                key=lambda idx: (
                    -gamma_index(
                        task_records[task][idx].cost,
                        task_records[task][idx].memory,
                        config.beta,
                    ),
                    repr(task_records[task][idx].signature),
                ),
            )
            chosen: List[Tuple[int, int]] = []
            freed = 0.0
            for idx in displaceable:
                if freed >= needed - _EPS:
                    break
                record = task_records[task][idx]
                still_needed = needed - freed
                keys = min(record.count, int(-(-still_needed // record.cost)))
                chosen.append((idx, keys))
                freed += keys * record.cost
            if freed < needed - _EPS:
                return False
            for idx, keys in chosen:
                record = task_records[task][idx]
                moved, rest = record.split(keys)
                task_records[task][idx] = rest
                loads[task] -= moved.total_cost
                push_candidate(replace(moved, next_dest=None))
            task_records[task] = [r for r in task_records[task] if r.count > 0]
            return True

        while heap:
            _, _, _, record = heapq.heappop(heap)
            remaining = record
            while remaining.count > 0:
                order = sorted(range(num_tasks), key=lambda d: (loads[d], d))
                placed = False
                for task in order:
                    headroom = ceiling - loads[task]
                    if remaining.cost <= 0:
                        remaining = place(task, remaining, remaining.count)
                        placed = True
                        break
                    fits = int((headroom + _EPS) // remaining.cost)
                    if fits >= 1:
                        remaining = place(task, remaining, min(fits, remaining.count))
                        placed = True
                        break
                    if try_exchange(task, remaining.cost):
                        headroom = ceiling - loads[task]
                        fits = max(1, int((headroom + _EPS) // remaining.cost))
                        remaining = place(task, remaining, min(fits, remaining.count))
                        placed = True
                        break
                if not placed:
                    # Best-effort fallback: spread the stragglers over the
                    # least-loaded tasks one fair share at a time.
                    share = max(1, remaining.count // num_tasks)
                    remaining = place(order[0], remaining, min(share, remaining.count))

        final: List[CompactRecord] = []
        for task in range(num_tasks):
            final.extend(r for r in task_records[task] if r.count > 0)
        return final

    # -- expansion -------------------------------------------------------------------

    def _expand(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
        compact: CompactStatistics,
        final_records: List[CompactRecord],
    ) -> CompactPlanOutcome:
        """Map record-level decisions back onto concrete keys and build F′."""
        # Consume keys group by group: records that keep d'==d leave their keys
        # in place; records that moved take keys from the front of the group.
        cursor: Dict[GroupSignature, int] = {sig: 0 for sig in compact.key_groups}
        placements: Dict[Key, int] = {}

        # First allocate moved records (d' != d) so that staying records keep
        # whatever keys remain — mirrors the paper's "picking up those needing
        # migration" step.
        moved = [r for r in final_records if r.next_dest is not None and r.next_dest != r.current]
        staying = [r for r in final_records if r.next_dest is None or r.next_dest == r.current]

        for record in moved:
            group = compact.key_groups.get(record.signature, [])
            start = cursor.get(record.signature, 0)
            selected = group[start : start + record.count]
            cursor[record.signature] = start + len(selected)
            for key in selected:
                placements[key] = record.next_dest  # type: ignore[arg-type]

        # Every other observed key keeps its current destination.
        for signature, group in compact.key_groups.items():
            start = cursor.get(signature, 0)
            for key in group[start:]:
                placements.setdefault(key, signature[0])

        # Build the new routing table: keep entries for unobserved keys, then
        # pin every key whose final destination differs from its hash.
        observed = set(placements)
        new_table = RoutingTable(max_size=None)
        for key, task in assignment.routing_table.items():
            if key not in observed:
                new_table.set(key, task, enforce_limit=False)
        for key, task in placements.items():
            if assignment.hash_destination(key) != task:
                new_table.set(key, task, enforce_limit=False)

        new_assignment = assignment.with_table(new_table)
        plan = build_migration_plan(
            assignment, new_assignment, observed, stats, config.window
        )
        fraction = migration_cost_fraction(plan.keys, stats, config.window)

        actual_loads = load_from_costs(stats.cost_map(), new_assignment, assignment.num_tasks)
        estimated = {task: 0.0 for task in range(assignment.num_tasks)}
        for record in final_records:
            dest = record.next_dest if record.next_dest is not None else record.current
            estimated[dest] += record.total_cost

        result = RebalanceResult(
            algorithm=self.name,
            assignment=new_assignment,
            routing_table=new_table,
            migration_plan=plan,
            loads=actual_loads,
            balanced=max_balance_indicator(estimated) <= config.theta_max + 1e-6,
            max_theta=max_balance_indicator(actual_loads),
            migration_fraction=fraction,
        )
        return CompactPlanOutcome(
            result=result,
            record_count=len(compact),
            estimated_loads=estimated,
            load_estimation_error=load_estimation_error(estimated, actual_loads),
        )


def load_estimation_error(
    estimated: Mapping[int, float], actual: Mapping[int, float]
) -> float:
    """Average relative divergence between estimated and actual task loads.

    This is the Fig. 11(b) metric: the percentage (here returned as a fraction)
    by which the discretised-load estimate deviates from the true workload of a
    task, averaged over tasks.  Tasks with no actual load are skipped.
    """
    errors: List[float] = []
    for task, real in actual.items():
        if real <= 0:
            continue
        errors.append(abs(estimated.get(task, 0.0) - real) / real)
    if not errors:
        return 0.0
    return sum(errors) / len(errors)
