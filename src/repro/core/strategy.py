"""Strategy registry — the single source of truth for partitioning strategies.

Every strategy of the evaluation (the paper's mixed-routing controller
variants and all baselines) is described by one :class:`StrategySpec`: its
evaluation label, the tunables it understands (``theta_max``, ``beta``,
``readj_sigma``, the table cap, the state window, …) and a builder producing a
configured :class:`~repro.baselines.base.Partitioner`.  The registry replaces
the string ``if``/``elif`` chains that used to live in
``experiments.harness.build_partitioner``: the harness, the figure drivers and
the ``python -m repro`` CLI all resolve strategies through
:func:`get_strategy`, so a third-party strategy plugged in with
:func:`register_strategy` is immediately usable everywhere without touching
harness code::

    from repro.core.strategy import register_strategy

    @register_strategy("mystrat", tunables=("theta_max", "seed"),
                       description="my partitioner")
    def _build_mystrat(num_tasks, *, theta_max=0.08, seed=0):
        return MyPartitioner(num_tasks, theta_max=theta_max, seed=seed)

The built-in strategies are declared in :mod:`repro.engine.strategies` (they
need the baselines and the engine adapter, which live above ``repro.core`` in
the layering); the accessors below import that module lazily, mirroring how
:func:`repro.core.planner.get_algorithm` loads the concrete algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.baselines.base import Partitioner

__all__ = [
    "STANDARD_TUNABLES",
    "StrategySpec",
    "register_strategy",
    "register_spec",
    "get_strategy",
    "has_strategy",
    "list_strategies",
    "strategy_names",
]

#: Tunables the experiment layer knows how to thread through to any strategy.
#: A spec declares the subset it actually consumes; the rest is dropped when
#: building (so one call site can configure every strategy uniformly).
STANDARD_TUNABLES: Tuple[str, ...] = (
    "theta_max",
    "max_table_size",
    "beta",
    "window",
    "seed",
    "readj_sigma",
    "discretization_degree",
)


@dataclass(frozen=True)
class StrategySpec:
    """Declarative description of one partitioning strategy.

    Attributes
    ----------
    name:
        Evaluation label ("storm", "mixed", …) used in figure legends, specs
        and the CLI.
    builder:
        ``builder(num_tasks, **tunables) -> Partitioner``; receives exactly
        the tunables declared in :attr:`tunables`.
    tunables:
        The :data:`STANDARD_TUNABLES` subset the builder accepts.  Standard
        tunables outside this subset are silently dropped by :meth:`build`
        (e.g. ``theta_max`` handed to static hashing); non-standard keywords
        raise ``TypeError``.
    description:
        One-line summary shown by ``python -m repro list``.
    core_algorithm:
        Name of the core rebalancing algorithm (in the
        :func:`repro.core.planner.get_algorithm` registry) that drives the
        strategy, for controller variants ("mixed", "mintable", …); ``None``
        for baselines and static strategies.
    rebalancing:
        True when the built partitioner replans at interval ends, i.e. it can
        be streamed through a planner sweep.
    theta_sensitive:
        False for strategies that ignore ``theta_max`` entirely (storm, pkg,
        ideal); sweep drivers use this to avoid duplicating identical curves.
    """

    name: str
    builder: Callable[..., "Partitioner"]
    tunables: Tuple[str, ...] = ()
    description: str = ""
    core_algorithm: Optional[str] = None
    rebalancing: bool = False
    theta_sensitive: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("StrategySpec.name must be non-empty")
        # Names are case-insensitive lookup keys; canonicalise so a strategy
        # registered as "MyStrat" resolves via get_strategy("mystrat") & co.
        object.__setattr__(self, "name", self.name.lower())
        unknown = [t for t in self.tunables if t not in STANDARD_TUNABLES]
        if unknown:
            raise ValueError(
                f"strategy {self.name!r} declares non-standard tunables {unknown}; "
                f"standard tunables: {STANDARD_TUNABLES}"
            )

    def accepted(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The subset of ``params`` this strategy consumes."""
        return {key: value for key, value in params.items() if key in self.tunables}

    def build(self, num_tasks: int, **params: Any) -> "Partitioner":
        """Instantiate the strategy for ``num_tasks`` downstream tasks.

        ``params`` may contain any :data:`STANDARD_TUNABLES`; the ones the
        strategy does not declare are ignored.  Unknown keywords raise
        ``TypeError`` so typos do not silently become defaults.
        """
        foreign = [key for key in params if key not in STANDARD_TUNABLES]
        if foreign:
            raise TypeError(
                f"strategy {self.name!r} got unknown tunables {foreign}; "
                f"standard tunables: {STANDARD_TUNABLES}"
            )
        return self.builder(num_tasks, **self.accepted(params))


_REGISTRY: Dict[str, StrategySpec] = {}


def register_spec(spec: StrategySpec, *, replace: bool = False) -> StrategySpec:
    """Add a :class:`StrategySpec` to the registry."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"strategy {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_strategy(
    name: str,
    *,
    tunables: Tuple[str, ...] = (),
    description: str = "",
    core_algorithm: Optional[str] = None,
    rebalancing: bool = False,
    theta_sensitive: bool = True,
    replace: bool = False,
) -> Callable[[Callable[..., "Partitioner"]], Callable[..., "Partitioner"]]:
    """Decorator registering ``builder(num_tasks, **tunables)`` under ``name``."""

    def decorator(builder: Callable[..., "Partitioner"]) -> Callable[..., "Partitioner"]:
        register_spec(
            StrategySpec(
                name=name,
                builder=builder,
                tunables=tuple(tunables),
                description=description,
                core_algorithm=core_algorithm,
                rebalancing=rebalancing,
                theta_sensitive=theta_sensitive,
            ),
            replace=replace,
        )
        return builder

    return decorator


def _load_builtins() -> None:
    # The built-in strategy declarations live with the engine adapter; import
    # them lazily so `repro.core` keeps no static dependency on the layers
    # above it (same pattern as planner.get_algorithm).
    from repro.engine import strategies  # noqa: F401


def get_strategy(name: str) -> StrategySpec:
    """Resolve a strategy by its evaluation label (case-insensitive)."""
    _load_builtins()
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown strategy {name!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def has_strategy(name: str) -> bool:
    """True when ``name`` resolves to a registered strategy."""
    _load_builtins()
    return name.lower() in _REGISTRY


def list_strategies() -> List[StrategySpec]:
    """Every registered spec, sorted by name."""
    _load_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def strategy_names() -> List[str]:
    """Sorted names of every registered strategy."""
    _load_builtins()
    return sorted(_REGISTRY)
