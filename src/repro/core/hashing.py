"""Hash functions used for implicit (default) key routing.

The paper assumes a universal hash function ``h : K -> D`` that maps a key to a
downstream task instance; its evaluation implements this with consistent
hashing (Karger et al., STOC'97), which is also what Apache Storm's fields
grouping effectively provides once keys are spread over task buckets.

Two implementations are provided:

* :class:`UniversalHash` — a seeded 64-bit FNV-1a hash reduced modulo the number
  of tasks.  Deterministic across processes and Python versions (unlike the
  built-in ``hash``), cheap, and the default used by the rest of the library.
* :class:`ConsistentHashRing` — a classic virtual-node hash ring.  Mainly used
  to reproduce the paper's statement that even consistent hashing does not
  account for key granularities, and to support task addition/removal in the
  scale-out experiments (Fig. 15).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Hashable, Iterable, List, Sequence

__all__ = ["UniversalHash", "ConsistentHashRing", "fnv1a_64", "stable_hash", "memo_key"]

_FNV_OFFSET_BASIS = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def _avalanche(value: int) -> int:
    """splitmix64-style finaliser: spread entropy into every output bit.

    Plain FNV-1a is poorly distributed in its low bits for short structured
    inputs (sequential integers, small tuples); reducing it modulo the task
    count would then produce visibly unbalanced assignments.  The finaliser
    fixes that without giving up determinism.
    """
    value &= _MASK_64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK_64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK_64
    value ^= value >> 31
    return value


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """Return the (finalised) 64-bit FNV-1a hash of ``data``, mixed with ``seed``.

    The seed is folded into the offset basis so that different seeds yield
    independent-looking hash families, which is what the "universal hash"
    abstraction of the paper requires.
    """
    h = (_FNV_OFFSET_BASIS ^ (seed * 0x9E3779B97F4A7C15)) & _MASK_64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK_64
    return _avalanche(h)


def _key_bytes(key: Hashable) -> bytes:
    """Encode a key into bytes in a type-stable way."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):
        # bool is an int subclass; disambiguate so True != 1 in hash space.
        return b"b" + (b"1" if key else b"0")
    if isinstance(key, int):
        return b"i" + key.to_bytes((key.bit_length() + 8) // 8 + 1, "little", signed=True)
    if isinstance(key, float):
        return b"f" + repr(key).encode("ascii")
    if isinstance(key, tuple):
        out = b"t"
        for item in key:
            part = _key_bytes(item)
            out += len(part).to_bytes(4, "little") + part
        return out
    return b"r" + repr(key).encode("utf-8", errors="backslashreplace")


#: Memoised digests for the common scalar key types.  Snapshot routing hashes
#: the same keys interval after interval; caching the digest turns the FNV loop
#: into a dict lookup on the hot path.  Cacheability policy lives in
#: :func:`memo_key`: the cache key carries the key's exact class because
#: ``_key_bytes`` is type-sensitive (``True`` and ``1`` collide as dict keys
#: but hash differently); container keys (tuples, …) are left uncached since
#: their element types are not captured by ``type(key)``, and ``0.0``/``-0.0``
#: are left uncached because they are equal as dict keys but ``repr``-encode
#: (and therefore hash) differently.
_DIGEST_CACHE: dict = {}
_DIGEST_CACHE_MAX = 1 << 20
_CACHED_KEY_TYPES = frozenset((str, bytes, int, float))


def memo_key(key: Hashable):
    """Collision-safe memo key for per-key caches, or ``None`` if uncacheable.

    Plain dicts conflate equal keys that hash differently here (``1`` vs
    ``1.0`` vs ``True``, ``0.0`` vs ``-0.0``); prefixing the exact class — and
    refusing the ambiguous cases — keeps any key→result memo consistent with
    :func:`stable_hash`.  Shared by the digest cache below, the partitioners'
    route memos and PKG's candidate cache.
    """
    cls = key.__class__
    if cls in _CACHED_KEY_TYPES and not (cls is float and key == 0.0):
        return (cls, key)
    return None


def stable_hash(key: Hashable, seed: int = 0) -> int:
    """Deterministic 64-bit hash of an arbitrary (hashable) key."""
    typed_key = memo_key(key)
    if typed_key is not None:
        cache_key = (seed, typed_key)
        digest = _DIGEST_CACHE.get(cache_key)
        if digest is None:
            digest = fnv1a_64(_key_bytes(key), seed=seed)
            if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
                _DIGEST_CACHE.clear()
            _DIGEST_CACHE[cache_key] = digest
        return digest
    return fnv1a_64(_key_bytes(key), seed=seed)


class UniversalHash:
    """Seeded universal hash ``h(k) -> task index`` in ``[0, num_tasks)``.

    Parameters
    ----------
    num_tasks:
        Number of downstream task instances ``N_D``.
    seed:
        Seed selecting a member of the hash family.  Two instances with the
        same seed and the same ``num_tasks`` agree on every key.
    """

    def __init__(self, num_tasks: int, seed: int = 0) -> None:
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        self._num_tasks = int(num_tasks)
        self._seed = int(seed)

    @property
    def num_tasks(self) -> int:
        """Number of task instances this hash maps onto."""
        return self._num_tasks

    @property
    def seed(self) -> int:
        """Seed of the hash family member."""
        return self._seed

    def __call__(self, key: Hashable) -> int:
        return stable_hash(key, self._seed) % self._num_tasks

    def assign_batch(self, keys: Iterable[Hashable]) -> List[int]:
        """Vectorised ``h(k)`` over many keys (one list pass, memoised digests)."""
        seed = self._seed
        num_tasks = self._num_tasks
        return [stable_hash(key, seed) % num_tasks for key in keys]

    def with_num_tasks(self, num_tasks: int) -> "UniversalHash":
        """Return a new hash over ``num_tasks`` tasks with the same seed."""
        return UniversalHash(num_tasks, seed=self._seed)

    def candidates(self, key: Hashable, choices: int = 2) -> List[int]:
        """Return ``choices`` distinct candidate tasks for ``key``.

        Used by the PKG baseline ("power of two choices"): the i-th candidate
        is drawn from an independent hash family member.  When ``num_tasks`` is
        smaller than ``choices`` the list is truncated to the distinct tasks.
        """
        if choices <= 0:
            raise ValueError("choices must be positive")
        seen: List[int] = []
        attempt = 0
        while len(seen) < min(choices, self._num_tasks):
            candidate = stable_hash(key, self._seed + 7919 * (attempt + 1)) % self._num_tasks
            if candidate not in seen:
                seen.append(candidate)
            attempt += 1
            if attempt > 64 * choices:  # pragma: no cover - defensive
                break
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniversalHash(num_tasks={self._num_tasks}, seed={self._seed})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UniversalHash)
            and other._num_tasks == self._num_tasks
            and other._seed == self._seed
        )

    def __hash__(self) -> int:
        return hash(("UniversalHash", self._num_tasks, self._seed))


class ConsistentHashRing:
    """Consistent hashing ring with virtual nodes.

    Keys and virtual nodes are placed on a 64-bit ring; a key is routed to the
    owner of the first virtual node clockwise from the key's position.  Adding
    or removing a task only remaps the keys that fall in the affected arcs,
    which is the property the scale-out experiment (Fig. 15) relies on.

    Parameters
    ----------
    tasks:
        Iterable of task identifiers (typically ``range(N_D)``).
    replicas:
        Number of virtual nodes per task.  More replicas give a smoother split
        of the ring.
    seed:
        Seed for the placement hash.
    """

    def __init__(self, tasks: Iterable[int], replicas: int = 64, seed: int = 0) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self._replicas = int(replicas)
        self._seed = int(seed)
        self._ring: List[int] = []
        self._owners: List[int] = []
        self._tasks: List[int] = []
        for task in tasks:
            self._insert(task)
        if not self._tasks:
            raise ValueError("ConsistentHashRing requires at least one task")

    def _insert(self, task: int) -> None:
        if task in self._tasks:
            raise ValueError(f"task {task!r} already present on the ring")
        self._tasks.append(task)
        for replica in range(self._replicas):
            point = stable_hash(("vnode", task, replica), self._seed)
            idx = bisect_right(self._ring, point)
            self._ring.insert(idx, point)
            self._owners.insert(idx, task)

    @property
    def tasks(self) -> Sequence[int]:
        """Tasks currently present on the ring, in insertion order."""
        return tuple(self._tasks)

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def add_task(self, task: int) -> None:
        """Add a task (and its virtual nodes) to the ring."""
        self._insert(task)

    def remove_task(self, task: int) -> None:
        """Remove a task and all of its virtual nodes from the ring."""
        if task not in self._tasks:
            raise KeyError(f"task {task!r} not on the ring")
        self._tasks.remove(task)
        keep_ring: List[int] = []
        keep_owner: List[int] = []
        for point, owner in zip(self._ring, self._owners):
            if owner != task:
                keep_ring.append(point)
                keep_owner.append(owner)
        self._ring = keep_ring
        self._owners = keep_owner
        if not self._tasks:
            raise ValueError("cannot remove the last task from the ring")

    def __call__(self, key: Hashable) -> int:
        point = stable_hash(key, self._seed)
        idx = bisect_right(self._ring, point)
        if idx == len(self._ring):
            idx = 0
        return self._owners[idx]

    def assign_batch(self, keys: Iterable[Hashable]) -> List[int]:
        """Vectorised ring lookup over many keys."""
        ring = self._ring
        owners = self._owners
        seed = self._seed
        size = len(ring)
        out: List[int] = []
        for key in keys:
            idx = bisect_right(ring, stable_hash(key, seed))
            out.append(owners[idx if idx < size else 0])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistentHashRing(tasks={len(self._tasks)}, "
            f"replicas={self._replicas}, seed={self._seed})"
        )
