"""MinTable — Algorithm 2 of the paper.

MinTable minimises the size of the routing table: Phase I moves *every*
explicitly routed key back to its hash destination (so the new table only
contains the entries LLFD is forced to create), and both Phase II and LLFD use
the highest-computation-cost-first criterion, which rebalances with the fewest
key moves and therefore the fewest table entries.

The price is migration cost: cleaning the table reroutes every previously
pinned key, so their state must move even when they were not causing any
imbalance.  The evaluation (Figs. 8–10, 19) shows MinTable paying roughly 3×
the migration cost of Mixed at tight ``θ_max``.
"""

from __future__ import annotations

from typing import Hashable, Set

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import HighestCostFirst, SelectionCriteria
from repro.core.planner import (
    PlannerConfig,
    RebalanceAlgorithm,
    register_algorithm,
)
from repro.core.statistics import StatisticsStore

__all__ = ["MinTableAlgorithm"]

Key = Hashable


@register_algorithm
class MinTableAlgorithm(RebalanceAlgorithm):
    """Routing-table-minimising rebalancer (Algorithm 2)."""

    name = "mintable"
    #: Full cleaning: entries for unobserved keys are dropped as well.
    retain_unobserved_entries = False

    def selection_criteria(self, config: PlannerConfig) -> SelectionCriteria:
        return HighestCostFirst()

    def keys_to_clean(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> Set[Key]:
        # Phase I: move back every key in A.
        return set(assignment.routing_table.keys())
