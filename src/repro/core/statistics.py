"""Per-interval key statistics (Section II-A of the paper).

For every time interval ``T_i`` and key ``k`` the system measures:

* ``g_i(k)`` — frequency: number of tuples with key ``k``;
* ``c_i(k)`` — computation cost: CPU resource required to process those tuples;
* ``s_i(k)`` — memory consumption of the state produced for ``k`` in ``T_i``.

The windowed memory ``S_i(k, w) = Σ_{j=i-w+1..i} s_j(k)`` measures the state
that must be transferred when the key is migrated (only the last ``w`` intervals
are retained by a stateful operator).

:class:`IntervalStats` is the immutable snapshot of one interval.
:class:`StatisticsStore` accumulates snapshots, keeps only the last ``w`` of
them, and answers the windowed queries the planning algorithms need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, Iterable, Mapping, Optional, Set, Tuple

__all__ = ["KeyStats", "IntervalStats", "StatisticsStore"]

Key = Hashable


@dataclass(frozen=True)
class KeyStats:
    """Measurements for a single key during a single interval."""

    frequency: float = 0.0
    cost: float = 0.0
    memory: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency < 0 or self.cost < 0 or self.memory < 0:
            raise ValueError(f"key statistics must be non-negative: {self}")

    def merged(self, other: "KeyStats") -> "KeyStats":
        """Return the element-wise sum of two measurements."""
        return KeyStats(
            frequency=self.frequency + other.frequency,
            cost=self.cost + other.cost,
            memory=self.memory + other.memory,
        )


class IntervalStats:
    """Statistics of every observed key for a single time interval ``T_i``.

    The snapshot is conceptually immutable once handed to the planner; the
    mutating helpers (:meth:`record`) are only used while the interval is being
    measured (by tasks or by workload generators).
    """

    __slots__ = ("interval", "_stats")

    def __init__(
        self,
        interval: int,
        stats: Optional[Mapping[Key, KeyStats]] = None,
    ) -> None:
        self.interval = int(interval)
        self._stats: Dict[Key, KeyStats] = dict(stats) if stats else {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_frequencies(
        cls,
        interval: int,
        frequencies: Mapping[Key, float],
        *,
        cost_per_tuple: float = 1.0,
        memory_per_tuple: float = 1.0,
    ) -> "IntervalStats":
        """Build a snapshot from raw key frequencies.

        This is the common path for synthetic workloads where the computation
        cost and state growth are proportional to the number of tuples.
        """
        stats = {
            key: KeyStats(
                frequency=float(freq),
                cost=float(freq) * cost_per_tuple,
                memory=float(freq) * memory_per_tuple,
            )
            for key, freq in frequencies.items()
            if freq > 0
        }
        return cls(interval, stats)

    def record(
        self,
        key: Key,
        *,
        frequency: float = 0.0,
        cost: float = 0.0,
        memory: float = 0.0,
    ) -> None:
        """Accumulate a measurement for ``key`` into this interval."""
        addition = KeyStats(frequency=frequency, cost=cost, memory=memory)
        existing = self._stats.get(key)
        self._stats[key] = addition if existing is None else existing.merged(addition)

    def record_bulk(
        self, entries: Iterable[Tuple[Key, float, float, float]]
    ) -> None:
        """Accumulate many ``(key, frequency, cost, memory)`` measurements.

        The batch sibling of :meth:`record`, used by the fluid engine to fold a
        whole routed snapshot into the interval with one :class:`KeyStats`
        construction per key instead of two.
        """
        stats = self._stats
        get = stats.get
        for key, frequency, cost, memory in entries:
            addition = KeyStats(frequency=frequency, cost=cost, memory=memory)
            existing = get(key)
            stats[key] = addition if existing is None else existing.merged(addition)

    # -- queries --------------------------------------------------------------

    def keys(self) -> Iterable[Key]:
        return self._stats.keys()

    def items(self) -> Iterable[Tuple[Key, KeyStats]]:
        return self._stats.items()

    def __contains__(self, key: Key) -> bool:
        return key in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def get(self, key: Key) -> KeyStats:
        """Return the stats of ``key`` (zeros if the key was not observed)."""
        return self._stats.get(key, KeyStats())

    def frequency(self, key: Key) -> float:
        """``g_i(k)``."""
        return self.get(key).frequency

    def cost(self, key: Key) -> float:
        """``c_i(k)``."""
        return self.get(key).cost

    def memory(self, key: Key) -> float:
        """``s_i(k)``."""
        return self.get(key).memory

    def total_cost(self) -> float:
        """Total computation cost of the interval over all keys."""
        return sum(stat.cost for stat in self._stats.values())

    def total_frequency(self) -> float:
        """Total number of tuples in the interval."""
        return sum(stat.frequency for stat in self._stats.values())

    def total_memory(self) -> float:
        """Total state produced during the interval."""
        return sum(stat.memory for stat in self._stats.values())

    def copy(self) -> "IntervalStats":
        return IntervalStats(self.interval, self._stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalStats(interval={self.interval}, keys={len(self._stats)})"


@dataclass
class StatisticsStore:
    """Rolling store of the last ``window`` interval snapshots.

    This is the controller-side view of step 1 of the rebalance workflow
    (Fig. 5): tasks report their per-key measurements at the end of every
    interval; the store retains only the last ``w`` intervals, which is all the
    planner needs for both the cost model (latest interval) and the migration
    model (windowed state size ``S_i(k, w)``).
    """

    window: int = 1
    _history: Deque[IntervalStats] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    # -- ingestion ------------------------------------------------------------

    def push(self, stats: IntervalStats) -> None:
        """Append the snapshot of a newly finished interval."""
        if self._history and stats.interval <= self._history[-1].interval:
            raise ValueError(
                "interval snapshots must be pushed in strictly increasing order: "
                f"got {stats.interval} after {self._history[-1].interval}"
            )
        self._history.append(stats)
        while len(self._history) > self.window:
            self._history.popleft()

    # -- queries --------------------------------------------------------------

    @property
    def intervals(self) -> Tuple[int, ...]:
        """Interval indices currently retained, oldest first."""
        return tuple(snapshot.interval for snapshot in self._history)

    @property
    def latest(self) -> IntervalStats:
        """Snapshot of the most recent interval (``T_{i-1}`` for the planner)."""
        if not self._history:
            raise LookupError("no interval statistics recorded yet")
        return self._history[-1]

    def __len__(self) -> int:
        return len(self._history)

    def __bool__(self) -> bool:
        return bool(self._history)

    def observed_keys(self) -> Set[Key]:
        """All keys observed in the retained window."""
        keys: Set[Key] = set()
        for snapshot in self._history:
            keys.update(snapshot.keys())
        return keys

    def frequency(self, key: Key) -> float:
        """``g_{i-1}(k)`` of the latest interval."""
        return self.latest.frequency(key)

    def cost(self, key: Key) -> float:
        """``c_{i-1}(k)`` of the latest interval."""
        return self.latest.cost(key)

    def windowed_memory(self, key: Key, window: Optional[int] = None) -> float:
        """``S_i(k, w)``: total state for ``key`` over the last ``w`` intervals.

        ``window`` defaults to the store's window; a smaller value restricts
        the sum to fewer (most recent) intervals.
        """
        w = self.window if window is None else window
        if w < 1:
            raise ValueError(f"window must be >= 1, got {w}")
        total = 0.0
        for snapshot in list(self._history)[-w:]:
            total += snapshot.memory(key)
        return total

    def total_windowed_memory(self, window: Optional[int] = None) -> float:
        """Total state held by the operator over the retained window."""
        w = self.window if window is None else window
        return sum(snapshot.total_memory() for snapshot in list(self._history)[-w:])

    def cost_map(self) -> Dict[Key, float]:
        """``{k: c_{i-1}(k)}`` of the latest interval."""
        return {key: stat.cost for key, stat in self.latest.items()}

    def memory_map(self, window: Optional[int] = None) -> Dict[Key, float]:
        """``{k: S_i(k, w)}`` over every key observed in the window."""
        result: Dict[Key, float] = {}
        w = self.window if window is None else window
        for snapshot in list(self._history)[-w:]:
            for key, stat in snapshot.items():
                result[key] = result.get(key, 0.0) + stat.memory
        return result

    def copy(self) -> "StatisticsStore":
        clone = StatisticsStore(window=self.window)
        for snapshot in self._history:
            clone._history.append(snapshot.copy())
        return clone
