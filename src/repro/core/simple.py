"""The Simple algorithm (Algorithm 5, appendix of the paper).

Simple disassociates *every* key, sorts them by non-increasing computation
cost, and greedily assigns each key to the instance with the least total load
so far (classic Longest Processing Time / LPT scheduling).  It ignores the
routing-table size and the migration cost entirely; the paper uses it to derive
the ⅓·(1 − 1/N_D) balance bound (Lemma 3 / Theorem 1) that LLFD inherits.

It is also a useful baseline in tests: LLFD and Mixed must never produce a
worse balance than Simple (Theorem 2 / Theorem 4).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Set, Tuple

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import HighestCostFirst, SelectionCriteria
from repro.core.planner import (
    PlannerConfig,
    RebalanceAlgorithm,
    RebalanceResult,
    register_algorithm,
)
from repro.core.statistics import StatisticsStore

__all__ = ["simple_assign", "SimpleAlgorithm"]

Key = Hashable
HashFunction = Callable[[Key], int]


def simple_assign(
    costs: Mapping[Key, float],
    num_tasks: int,
    hash_function: HashFunction,
) -> Tuple[Dict[Key, int], Dict[int, float], Dict[Key, int]]:
    """Run Algorithm 5 directly over a ``{key: cost}`` map.

    Returns ``(placements, loads, routing_entries)`` where ``routing_entries``
    contains only the keys whose destination differs from the hash.
    """
    if num_tasks <= 0:
        raise ValueError(f"num_tasks must be positive, got {num_tasks}")
    loads: Dict[int, float] = {task: 0.0 for task in range(num_tasks)}
    placements: Dict[Key, int] = {}
    ordered = sorted(costs, key=lambda k: (-costs[k], repr(k)))
    for key in ordered:
        task = min(loads, key=lambda d: (loads[d], d))
        placements[key] = task
        loads[task] += costs[key]
    routing = {
        key: task for key, task in placements.items() if hash_function(key) != task
    }
    return placements, loads, routing


@register_algorithm
class SimpleAlgorithm(RebalanceAlgorithm):
    """Algorithm 5 wrapped in the common planning template.

    Cleaning disassociates *all* explicitly routed keys, and Phase II's
    criterion is highest-cost-first; combined with the fact that Simple also
    ignores ``A_max``, the template run is equivalent to LPT over the keys of
    the overloaded instances.  For the exact textbook behaviour (re-placing
    every key, not only the ones from overloaded instances) use
    :func:`simple_assign`.
    """

    name = "simple"
    retain_unobserved_entries = False

    def selection_criteria(self, config: PlannerConfig) -> SelectionCriteria:
        return HighestCostFirst()

    def keys_to_clean(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> Set[Key]:
        return set(assignment.routing_table.keys())
