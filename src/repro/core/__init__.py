"""Core algorithms of the paper.

This subpackage implements the mixed key-based workload partitioning framework:

* the assignment function ``F(k) = A[k] if k in A else h(k)`` built from a
  bounded :class:`~repro.core.routing_table.RoutingTable` and a hash function
  (:mod:`repro.core.hashing`);
* the per-interval key statistics model (frequency ``g``, computation cost
  ``c``, memory ``s`` and windowed memory ``S(k, w)``) in
  :mod:`repro.core.statistics`;
* the load model (per-task load ``L``, balance indicator ``θ`` and skewness) in
  :mod:`repro.core.load`;
* migration bookkeeping (``Δ(F, F′)`` and ``M_i(w, F, F′)``) in
  :mod:`repro.core.migration`;
* the rebalancing algorithms of Section III — :mod:`repro.core.llfd`
  (Algorithm 1), :mod:`repro.core.simple` (Algorithm 5),
  :mod:`repro.core.mintable` (Algorithm 2), :mod:`repro.core.minmig`
  (Algorithm 3) and :mod:`repro.core.mixed` (Algorithm 4 and its brute-force
  variant);
* the implementation optimisations of Section IV — the six-dimensional compact
  statistics representation (:mod:`repro.core.compact`) and the
  half-linear-half-exponential value discretisation
  (:mod:`repro.core.discretization`);
* the rebalance controller that decides when to trigger a plan and orchestrates
  its execution (:mod:`repro.core.controller`).
"""

from repro.core.assignment import AssignmentFunction
from repro.core.compact import CompactRecord, CompactStatistics
from repro.core.controller import ControllerConfig, RebalanceController
from repro.core.criteria import (
    HighestCostFirst,
    LargestGammaFirst,
    SelectionCriteria,
    SmallestMemoryFirst,
    gamma_index,
)
from repro.core.discretization import HLHEDiscretizer, NearestValueDiscretizer
from repro.core.hashing import ConsistentHashRing, UniversalHash
from repro.core.llfd import LLFDResult, least_load_fit_decreasing
from repro.core.load import (
    average_load,
    balance_indicator,
    load_per_task,
    max_skewness,
    overloaded_tasks,
    safe_mean,
    total_load,
)
from repro.core.migration import MigrationPlan, assignment_delta, migration_cost
from repro.core.minmig import MinMigAlgorithm
from repro.core.mintable import MinTableAlgorithm
from repro.core.mixed import MixedAlgorithm, MixedBruteForceAlgorithm
from repro.core.planner import RebalanceResult, get_algorithm, list_algorithms
from repro.core.routing_table import RoutingTable
from repro.core.simple import SimpleAlgorithm, simple_assign
from repro.core.statistics import IntervalStats, KeyStats, StatisticsStore

__all__ = [
    "AssignmentFunction",
    "CompactRecord",
    "CompactStatistics",
    "ConsistentHashRing",
    "ControllerConfig",
    "HLHEDiscretizer",
    "HighestCostFirst",
    "IntervalStats",
    "KeyStats",
    "LLFDResult",
    "LargestGammaFirst",
    "MigrationPlan",
    "MinMigAlgorithm",
    "MinTableAlgorithm",
    "MixedAlgorithm",
    "MixedBruteForceAlgorithm",
    "NearestValueDiscretizer",
    "RebalanceController",
    "RebalanceResult",
    "RoutingTable",
    "SelectionCriteria",
    "SimpleAlgorithm",
    "SmallestMemoryFirst",
    "StatisticsStore",
    "UniversalHash",
    "assignment_delta",
    "average_load",
    "safe_mean",
    "total_load",
    "balance_indicator",
    "gamma_index",
    "get_algorithm",
    "least_load_fit_decreasing",
    "list_algorithms",
    "load_per_task",
    "max_skewness",
    "migration_cost",
    "overloaded_tasks",
    "simple_assign",
]
