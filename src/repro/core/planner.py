"""Common planning infrastructure shared by the rebalancing algorithms.

Every algorithm of Section III follows the same three-phase template:

* **Phase I (Cleaning)** — optionally move some routing-table entries back to
  their hash destination (virtually; no state moves yet).
* **Phase II (Preparing)** — from every overloaded task, disassociate keys
  (chosen by the criterion ``ψ``) into the candidate set ``C`` until the task
  fits under the ceiling ``L_max = (1 + θ_max) · L̄``.
* **Phase III (Assigning)** — run LLFD over ``C`` to produce the new routing
  table ``A′`` and assignment function ``F′``.

:class:`RebalanceAlgorithm` implements the template; concrete algorithms
(:class:`~repro.core.mintable.MinTableAlgorithm`,
:class:`~repro.core.minmig.MinMigAlgorithm`,
:class:`~repro.core.mixed.MixedAlgorithm`, …) plug in their cleaning strategy
and selection criteria.  :class:`RebalanceResult` carries everything the
controller, the simulator and the benchmarks need: the new assignment, the
migration plan and its cost, the resulting loads, and the wall-clock time the
planner itself took (the "average generation time" metric of Figs. 8–12).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple, Type

from repro.core.assignment import AssignmentFunction
from repro.core.criteria import DEFAULT_BETA, SelectionCriteria
from repro.core.llfd import LLFDResult, least_load_fit_decreasing
from repro.core.load import load_ceiling, load_from_costs
from repro.core.migration import (
    MigrationPlan,
    build_migration_plan,
    migration_cost_fraction,
)
from repro.core.routing_table import RoutingTable
from repro.core.statistics import StatisticsStore

__all__ = [
    "PlannerConfig",
    "RebalanceResult",
    "RebalanceAlgorithm",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
]

Key = Hashable

_EPS = 1e-9


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs shared by every rebalancing algorithm.

    Attributes
    ----------
    theta_max:
        Imbalance tolerance ``θ_max``.
    max_table_size:
        Routing table cap ``A_max`` (``None`` = unbounded).
    beta:
        Weight scaling factor of the migration priority index γ.
    window:
        State window ``w`` used when costing migrations.  ``None`` uses the
        statistics store's own window.
    """

    theta_max: float = 0.08
    max_table_size: Optional[int] = None
    beta: float = DEFAULT_BETA
    window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.theta_max < 0:
            raise ValueError(f"theta_max must be non-negative, got {self.theta_max}")
        if self.max_table_size is not None and self.max_table_size < 0:
            raise ValueError("max_table_size must be non-negative")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.window is not None and self.window < 1:
            raise ValueError("window must be >= 1")


@dataclass
class RebalanceResult:
    """Outcome of one planning round."""

    algorithm: str
    assignment: AssignmentFunction
    routing_table: RoutingTable
    migration_plan: MigrationPlan
    loads: Dict[int, float] = field(default_factory=dict)
    generation_time: float = 0.0
    balanced: bool = True
    max_theta: float = 0.0
    migration_fraction: float = 0.0
    cleaning_rounds: int = 0
    moved_back: int = 0

    @property
    def table_size(self) -> int:
        """``N_{A′}`` — number of entries in the new routing table."""
        return self.routing_table.size

    @property
    def migrated_keys(self) -> Set[Key]:
        """``Δ(F, F′)`` realised by the plan."""
        return self.migration_plan.keys

    @property
    def migration_cost(self) -> float:
        """``M_i(w, F, F′)`` — total state volume to transfer."""
        return self.migration_plan.total_state

    def within_table_limit(self, max_table_size: Optional[int]) -> bool:
        """True when the new table respects ``A_max``."""
        if max_table_size is None:
            return True
        return self.table_size <= max_table_size


class RebalanceAlgorithm(ABC):
    """Template for the three-phase rebalancing algorithms."""

    #: Registry / display name of the algorithm.
    name: str = "base"

    # -- hooks ----------------------------------------------------------------

    @abstractmethod
    def selection_criteria(self, config: PlannerConfig) -> SelectionCriteria:
        """Return the Phase II / LLFD criterion ``ψ``."""

    @abstractmethod
    def keys_to_clean(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> Set[Key]:
        """Return the routing-table keys to (virtually) move back in Phase I."""

    # -- template -------------------------------------------------------------

    def plan(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: Optional[PlannerConfig] = None,
    ) -> RebalanceResult:
        """Run the full three-phase planning round and time it."""
        config = config if config is not None else PlannerConfig()
        start = time.perf_counter()
        result = self._plan(assignment, stats, config)
        result.generation_time = time.perf_counter() - start
        return result

    def _plan(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
    ) -> RebalanceResult:
        cleaned = self.keys_to_clean(assignment, stats, config)
        return self.plan_with_cleaning(assignment, stats, config, cleaned)

    def plan_with_cleaning(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
        cleaned: Set[Key],
    ) -> RebalanceResult:
        """Phases II and III given a fixed cleaning decision.

        Exposed separately so that Mixed (and its brute-force variant) can run
        several cleaning trials without re-entering the public template.
        """
        criteria = self.selection_criteria(config)
        costs = stats.cost_map()
        memories = stats.memory_map(config.window)
        observed = set(costs)
        num_tasks = assignment.num_tasks

        # Working destination after the (virtual) cleaning of Phase I; the
        # assignment is evaluated over all observed keys in one batch and the
        # cleaned entries are patched back to their hash destination.
        observed_keys = list(costs)
        working: Dict[Key, int] = dict(
            zip(observed_keys, assignment.assign_batch(observed_keys))
        )
        for key in cleaned:
            if key in working:
                working[key] = assignment.hash_destination(key)
        loads = load_from_costs(costs, working.__getitem__, num_tasks)
        ceiling = load_ceiling(loads, config.theta_max)

        # Phase II: disassociate keys from overloaded tasks until they fit.
        candidates: Set[Key] = set()
        keys_by_task: Dict[int, List[Key]] = {task: [] for task in range(num_tasks)}
        for key, task in working.items():
            keys_by_task[task].append(key)
        for task in range(num_tasks):
            if loads[task] <= ceiling + _EPS:
                continue
            ordered = criteria.sort(keys_by_task[task], costs, memories)
            for key in ordered:
                if loads[task] <= ceiling + _EPS:
                    break
                candidates.add(key)
                loads[task] -= costs.get(key, 0.0)

        remaining = {key: task for key, task in working.items() if key not in candidates}

        # Phase III: LLFD.
        llfd = least_load_fit_decreasing(
            candidates,
            remaining,
            costs,
            memories,
            num_tasks,
            config.theta_max,
            assignment.hash_destination,
            criteria,
        )

        return self._build_result(
            assignment, stats, config, cleaned, llfd, observed
        )

    # -- result assembly --------------------------------------------------------

    def _build_result(
        self,
        assignment: AssignmentFunction,
        stats: StatisticsStore,
        config: PlannerConfig,
        cleaned: Set[Key],
        llfd: LLFDResult,
        observed: Set[Key],
    ) -> RebalanceResult:
        new_table = RoutingTable(max_size=None)
        # Keep old explicit entries for keys outside the statistics window —
        # they carry no state, so leaving them pinned costs nothing, and
        # dropping them would silently reroute live keys.  MinTable overrides
        # ``retain_unobserved_entries`` to drop them (full cleaning).
        if self.retain_unobserved_entries:
            for key, task in assignment.routing_table.items():
                if key not in observed:
                    new_table.set(key, task, enforce_limit=False)
        for key, task in llfd.routing_entries.items():
            new_table.set(key, task, enforce_limit=False)

        new_assignment = assignment.with_table(new_table)
        plan = build_migration_plan(
            assignment, new_assignment, observed, stats, config.window
        )
        fraction = migration_cost_fraction(plan.keys, stats, config.window)
        return RebalanceResult(
            algorithm=self.name,
            assignment=new_assignment,
            routing_table=new_table,
            migration_plan=plan,
            loads=dict(llfd.loads),
            balanced=llfd.balanced,
            max_theta=llfd.max_theta,
            migration_fraction=fraction,
            moved_back=len(cleaned),
        )

    #: Whether routing-table entries for keys unseen in the statistics window
    #: survive the planning round (True for MinMig/Mixed, False for MinTable).
    retain_unobserved_entries: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


# -- registry -------------------------------------------------------------------

_REGISTRY: Dict[str, Type[RebalanceAlgorithm]] = {}


def register_algorithm(cls: Type[RebalanceAlgorithm]) -> Type[RebalanceAlgorithm]:
    """Class decorator adding an algorithm to the name registry."""
    if not cls.name or cls.name == "base":
        raise ValueError(f"{cls.__name__} must define a unique non-default name")
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str, **kwargs) -> RebalanceAlgorithm:
    """Instantiate a registered algorithm by name (e.g. ``"mixed"``)."""
    # Importing the concrete modules lazily avoids circular imports while
    # still letting `get_algorithm` work without explicit imports by callers.
    from repro.core import minmig, mintable, mixed, simple  # noqa: F401

    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown rebalancing algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from exc
    return cls(**kwargs)


def list_algorithms() -> List[str]:
    """Names of every registered rebalancing algorithm."""
    from repro.core import minmig, mintable, mixed, simple  # noqa: F401

    return sorted(_REGISTRY)
