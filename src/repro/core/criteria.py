"""Key selection criteria (``ψ`` and ``η`` in the paper's algorithms).

The rebalancing algorithms of Section III are parameterised by *selection
criteria* used to decide which keys to act on:

* ``ψ`` — the criterion used when disassociating keys from overloaded tasks
  (Phase II) and when building the exchangeable set inside LLFD's ``Adjust``
  step.  MinTable uses "highest computation cost first"; MinMig and Mixed use
  "largest migration-priority index γ first".
* ``η`` — the criterion used by Mixed's cleaning phase to pick which routing
  table entries to move back: "smallest window memory ``S_i(k, w)`` first".

The migration priority index is ``γ_i(k, w) = c_i(k)^β / S_i(k, w)``: a key with
a large computation cost per unit of state is cheap to migrate relative to the
load it sheds.  ``β`` (default 1.5 per the paper's appendix) weights computation
against migration volume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, List, Mapping

__all__ = [
    "SelectionCriteria",
    "HighestCostFirst",
    "LargestGammaFirst",
    "SmallestMemoryFirst",
    "gamma_index",
    "DEFAULT_BETA",
]

Key = Hashable

#: Default weight scaling factor β selected by the paper's parameter study.
DEFAULT_BETA = 1.5

#: Memory floor used when a key has (virtually) no recorded state, so that the
#: γ index stays finite.  The exact value only matters for tie-breaking between
#: equally state-less keys.
_MEMORY_FLOOR = 1e-9


def gamma_index(cost: float, memory: float, beta: float = DEFAULT_BETA) -> float:
    """Migration priority index ``γ = cost^β / memory``.

    Keys with higher γ shed more load per unit of migrated state and are
    therefore preferred for migration by MinMig and Mixed.
    """
    if cost < 0 or memory < 0:
        raise ValueError("cost and memory must be non-negative")
    if beta < 0:
        raise ValueError("beta must be non-negative")
    return (cost ** beta) / max(memory, _MEMORY_FLOOR)


class SelectionCriteria(ABC):
    """Orders keys by *decreasing* selection priority.

    ``priority`` returns a score; keys are processed from the highest score to
    the lowest.  Ties are broken deterministically on the key's repr so that
    planning is reproducible run to run.
    """

    name: str = "criteria"

    @abstractmethod
    def priority(self, key: Key, cost: float, memory: float) -> float:
        """Return the selection score of ``key`` (higher = selected earlier)."""

    def sort(
        self,
        keys: Iterable[Key],
        costs: Mapping[Key, float],
        memories: Mapping[Key, float],
    ) -> List[Key]:
        """Return ``keys`` sorted by decreasing priority (deterministic)."""
        return sorted(
            keys,
            key=lambda k: (
                -self.priority(k, costs.get(k, 0.0), memories.get(k, 0.0)),
                repr(k),
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class HighestCostFirst(SelectionCriteria):
    """``ψ`` of MinTable: prefer keys with the largest computation cost."""

    name = "highest-cost-first"

    def priority(self, key: Key, cost: float, memory: float) -> float:
        return cost


class LargestGammaFirst(SelectionCriteria):
    """``ψ`` of MinMig/Mixed: prefer keys with the largest ``γ = c^β / S``."""

    name = "largest-gamma-first"

    def __init__(self, beta: float = DEFAULT_BETA) -> None:
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = float(beta)

    def priority(self, key: Key, cost: float, memory: float) -> float:
        return gamma_index(cost, memory, self.beta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LargestGammaFirst(beta={self.beta})"


class SmallestMemoryFirst(SelectionCriteria):
    """``η`` of Mixed's cleaning phase: prefer keys with the least state."""

    name = "smallest-memory-first"

    def priority(self, key: Key, cost: float, memory: float) -> float:
        return -memory
