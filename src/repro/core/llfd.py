"""Least-Load Fit Decreasing (LLFD) — Algorithm 1 of the paper.

LLFD is the Phase-III subroutine shared by MinTable, MinMig and Mixed.  It
takes a *candidate set* ``C`` of keys that have been disassociated from their
tasks and re-places them:

1. candidates are processed in non-increasing order of computation cost;
2. each candidate is offered to the tasks in non-decreasing order of their
   current (estimated) load;
3. ``Adjust`` accepts the placement if the task stays below the ceiling
   ``L_max = (1 + θ_max) · L̄``; otherwise it tries to build an *exchangeable
   set* ``E`` of strictly cheaper keys currently on that task whose removal
   makes room — those keys are disassociated and pushed back into ``C``;
4. if no task can accept the candidate even with exchanges, the key is placed
   on the least-loaded task as a best-effort fallback (the result is then
   reported as not balanced).

The exchangeable-set conditions (i)–(iii) guarantee progress: every key pushed
back into ``C`` has a strictly smaller cost than the key that displaced it, so
the multiset of candidate costs decreases lexicographically and the loop
terminates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.criteria import HighestCostFirst, SelectionCriteria
from repro.core.load import max_balance_indicator

__all__ = ["LLFDResult", "least_load_fit_decreasing"]

Key = Hashable
HashFunction = Callable[[Key], int]

#: Numerical slack for load-ceiling comparisons, so float accumulation noise
#: does not spuriously reject an assignment that is exactly at the ceiling.
_EPS = 1e-9


@dataclass
class LLFDResult:
    """Outcome of one LLFD run."""

    #: Final destination of every key the subroutine was aware of (candidates
    #: plus keys that stayed put plus keys displaced by exchanges).
    placements: Dict[Key, int] = field(default_factory=dict)
    #: Estimated per-task load after the placement.
    loads: Dict[int, float] = field(default_factory=dict)
    #: Entries ``(k, d)`` with ``d != h(k)`` — the new routing table content.
    routing_entries: Dict[Key, int] = field(default_factory=dict)
    #: Whether every task ended below the ``(1 + θ_max) · L̄`` ceiling.
    balanced: bool = True
    #: Number of candidates that had to be force-placed on the least-loaded
    #: task because no instance could accept them.
    fallback_placements: int = 0
    #: Number of Adjust exchanges performed.
    exchanges: int = 0

    @property
    def max_theta(self) -> float:
        """Largest balance indicator of the estimated final loads."""
        return max_balance_indicator(self.loads)


def least_load_fit_decreasing(
    candidates: Iterable[Key],
    assignment: Mapping[Key, int],
    costs: Mapping[Key, float],
    memories: Mapping[Key, float],
    num_tasks: int,
    theta_max: float,
    hash_function: HashFunction,
    criteria: Optional[SelectionCriteria] = None,
    *,
    base_loads: Optional[Mapping[int, float]] = None,
) -> LLFDResult:
    """Run LLFD (Algorithm 1).

    Parameters
    ----------
    candidates:
        Keys disassociated in Phase II — the candidate set ``C``.
    assignment:
        Current destination of every key *not* in the candidate set.  Keys in
        this mapping are eligible to join an exchangeable set.
    costs:
        ``c_{i-1}(k)`` for every key appearing in ``candidates`` or
        ``assignment``.
    memories:
        ``S_{i-1}(k, w)`` for the same keys (used only by γ-based criteria).
    num_tasks:
        ``N_D`` — number of downstream tasks.
    theta_max:
        Imbalance tolerance.
    hash_function:
        ``h`` — used to decide which placements need a routing-table entry.
    criteria:
        Selection criterion ``ψ`` for the exchangeable set.  Defaults to
        highest-cost-first.
    base_loads:
        Extra per-task load that is not described by ``assignment``/``costs``
        (e.g. load of keys outside the statistics window).  Defaults to zero.

    Returns
    -------
    LLFDResult
        Final placements, loads, routing entries and balance diagnostics.
    """
    if num_tasks <= 0:
        raise ValueError(f"num_tasks must be positive, got {num_tasks}")
    if theta_max < 0:
        raise ValueError(f"theta_max must be non-negative, got {theta_max}")
    criteria = criteria if criteria is not None else HighestCostFirst()

    candidate_set: Set[Key] = set(candidates)
    placements: Dict[Key, int] = {}
    per_task_keys: Dict[int, Set[Key]] = {task: set() for task in range(num_tasks)}
    loads: Dict[int, float] = {
        task: float(base_loads.get(task, 0.0)) if base_loads else 0.0
        for task in range(num_tasks)
    }

    for key, task in assignment.items():
        if key in candidate_set:
            continue
        if task < 0 or task >= num_tasks:
            raise ValueError(f"assignment routes key {key!r} to invalid task {task}")
        placements[key] = task
        per_task_keys[task].add(key)
        loads[task] += costs.get(key, 0.0)

    # The ceiling is fixed from the *total* load (which never changes during
    # the run): L_max = (1 + θ_max) · L̄_{i-1}.  Note the final division can
    # still underflow for subnormal totals — the underflow-proof comparisons
    # live in the product-form helpers of repro.core.load; at these magnitudes
    # a zero ceiling only makes the fit checks conservative.
    total_load = sum(loads.values()) + sum(costs.get(key, 0.0) for key in candidate_set)
    ceiling = (1.0 + theta_max) * total_load / num_tasks

    # Max-heap of candidates ordered by decreasing cost (ties broken on repr
    # for determinism).  Keys displaced by Adjust are pushed back in.
    counter = itertools.count()
    heap: List[Tuple[float, str, int, Key]] = []
    for key in candidate_set:
        heapq.heappush(heap, (-costs.get(key, 0.0), repr(key), next(counter), key))

    result = LLFDResult()

    def try_adjust(key: Key, cost: float, task: int) -> bool:
        """The Adjust function of Algorithm 1 (lines 10-20)."""
        if loads[task] + cost <= ceiling + _EPS:
            return True
        # Attempt to build an exchangeable set E of keys on `task`, each with a
        # strictly smaller cost than `key`, whose removal makes room.
        resident = [k for k in per_task_keys[task] if costs.get(k, 0.0) < cost]
        if not resident:
            return False
        ordered = criteria.sort(resident, costs, memories)
        selected: List[Key] = []
        freed = 0.0
        needed = loads[task] + cost - ceiling
        for other in ordered:
            if freed >= needed - _EPS:
                break
            selected.append(other)
            freed += costs.get(other, 0.0)
        if freed < needed - _EPS:
            return False
        # Disassociate the exchangeable set and push it back into C.
        for other in selected:
            per_task_keys[task].discard(other)
            loads[task] -= costs.get(other, 0.0)
            del placements[other]
            heapq.heappush(
                heap, (-costs.get(other, 0.0), repr(other), next(counter), other)
            )
            result.exchanges += 1
        return True

    while heap:
        _, _, _, key = heapq.heappop(heap)
        cost = costs.get(key, 0.0)
        # Offer the key to tasks in ascending order of current load.
        order = sorted(range(num_tasks), key=lambda task: (loads[task], task))
        placed = False
        for task in order:
            if try_adjust(key, cost, task):
                placements[key] = task
                per_task_keys[task].add(key)
                loads[task] += cost
                placed = True
                break
        if not placed:
            # Best-effort fallback for keys no task can absorb within the
            # ceiling (typically a single key whose cost exceeds L̄, outside
            # Theorem 1's precondition).  Place it on the least-loaded task and
            # displace strictly cheaper resident keys so the oversized key ends
            # up (almost) alone there — the same outcome Simple/LPT reaches.
            task = order[0]
            displaceable = criteria.sort(
                [k for k in per_task_keys[task] if costs.get(k, 0.0) < cost],
                costs,
                memories,
            )
            for other in displaceable:
                if loads[task] + cost <= ceiling + _EPS:
                    break
                per_task_keys[task].discard(other)
                loads[task] -= costs.get(other, 0.0)
                del placements[other]
                heapq.heappush(
                    heap, (-costs.get(other, 0.0), repr(other), next(counter), other)
                )
                result.exchanges += 1
            placements[key] = task
            per_task_keys[task].add(key)
            loads[task] += cost
            result.fallback_placements += 1

    result.placements = placements
    result.loads = loads
    result.routing_entries = {
        key: task for key, task in placements.items() if hash_function(key) != task
    }
    result.balanced = (
        result.fallback_placements == 0
        and max(loads.values(), default=0.0) <= ceiling + _EPS
    )
    return result
