"""Value discretisation for the compact statistics representation (Section IV-B).

The size of the 6-dimensional compact key space is proportional to the number
of distinct computation-cost and memory values, so both are discretised onto a
small set of representative values before records are grouped.

Two discretisers are provided:

* :class:`HLHEDiscretizer` — the paper's half-linear-half-exponential scheme
  ``φ(x)``: representative values are generated with a linear ladder of step
  ``R`` above ``R`` and an exponential ladder (R/2, R/4, …, 2, 1) below it, and
  each value is rounded to one of its two bracketing representatives so that
  the *accumulated* deviation stays as close to zero as possible (Theorem 3:
  the total deviation is ≈ 0).
* :class:`NearestValueDiscretizer` — the naive piecewise-constant baseline the
  paper argues against (each value independently takes its nearest
  representative); kept for the ablation benchmark.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "HLHEDiscretizer",
    "NearestValueDiscretizer",
    "representative_values",
    "total_deviation",
]

Key = Hashable


def _validate_degree(degree: int) -> int:
    """Check that the degree of discretisation ``R`` is a power of two ≥ 1."""
    if degree < 1:
        raise ValueError(f"degree R must be >= 1, got {degree}")
    if degree & (degree - 1) != 0:
        raise ValueError(f"degree R must be a power of two, got {degree}")
    return int(degree)


def representative_values(max_value: float, degree: int) -> List[float]:
    """Generate the HLHE representative ladder for values in ``[1, max_value]``.

    With ``R = 2^r`` and ``s = floor(max_value / R)`` the ladder is, in strictly
    decreasing order::

        s·R, (s-1)·R, …, R,   R/2, R/4, …, 2, 1

    i.e. ``s`` linear values followed by ``r`` exponential values.  When
    ``max_value < R`` the linear part is empty and the ladder starts at ``R/2``
    (still covering every value ≥ 1 thanks to the exponential part).
    """
    degree = _validate_degree(degree)
    if max_value < 1:
        max_value = 1.0
    r = degree.bit_length() - 1  # R = 2^r
    s = int(max_value // degree)
    ladder: List[float] = [float(step * degree) for step in range(s, 0, -1)]
    ladder.extend(float(2 ** power) for power in range(r - 1, -1, -1))
    if not ladder:
        ladder = [1.0]
    # Guarantee every value in [1, max_value] has a representative no larger
    # than itself; the exponential tail always ends at 1, so this only matters
    # for degenerate degree=1 ladders, where the linear part already reaches 1.
    return ladder


def total_deviation(values: Sequence[float], discretized: Sequence[float]) -> float:
    """``|δ| = |Σ (x_i − φ(x_i))|`` — the accumulated approximation error."""
    if len(values) != len(discretized):
        raise ValueError("values and discretized must have the same length")
    return abs(sum(v - d for v, d in zip(values, discretized)))


class _LadderDiscretizer:
    """Shared machinery: ladder construction and bracketing lookups."""

    def __init__(self, degree: int = 8) -> None:
        self.degree = _validate_degree(degree)

    def _ladder(self, values: Sequence[float]) -> List[float]:
        max_value = max((v for v in values if v > 0), default=1.0)
        return representative_values(max_value, self.degree)

    @staticmethod
    def _bracket(value: float, ladder: Sequence[float]) -> Tuple[float, float]:
        """Return the (upper, lower) representatives bracketing ``value``.

        ``ladder`` is strictly decreasing.  Values at or above the top of the
        ladder only have the single candidate ``ladder[0]``; values below 1 are
        clamped onto the smallest representative.
        """
        ascending = list(reversed(ladder))
        return _LadderDiscretizer._bracket_ascending(value, ascending)

    @staticmethod
    def _bracket_ascending(value: float, ascending: Sequence[float]) -> Tuple[float, float]:
        """Same as :meth:`_bracket` but over an *ascending* ladder (binary search)."""
        if value >= ascending[-1]:
            return ascending[-1], ascending[-1]
        if value < ascending[0]:
            return ascending[0], ascending[0]
        idx = bisect_right(ascending, value) - 1
        lower = ascending[idx]
        upper = ascending[idx + 1] if idx + 1 < len(ascending) else lower
        return upper, lower

    # -- public API ---------------------------------------------------------

    def discretize(self, values: Sequence[float]) -> List[float]:
        raise NotImplementedError

    def discretize_map(self, mapping: Mapping[Key, float]) -> Dict[Key, float]:
        """Discretise a ``{key: value}`` map, preserving keys."""
        keys = list(mapping.keys())
        values = [mapping[key] for key in keys]
        rounded = self.discretize(values)
        return dict(zip(keys, rounded))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(degree={self.degree})"


class HLHEDiscretizer(_LadderDiscretizer):
    """Half-linear-half-exponential discretisation ``φ(x)`` with greedy
    deviation cancelling (the paper's proposed approach, Fig. 6(b)).

    Values are processed in non-increasing order; for each value the bracketing
    representative that keeps the running accumulated deviation closest to zero
    is chosen (ties prefer the lower representative, which is exact whenever
    the value sits on the ladder).
    """

    def discretize(self, values: Sequence[float]) -> List[float]:
        """Return ``[φ(x) for x in values]`` in the original order."""
        if not values:
            return []
        for value in values:
            if value < 0:
                raise ValueError("values must be non-negative")
        ascending = list(reversed(self._ladder(values)))
        order = sorted(range(len(values)), key=lambda i: (-values[i], i))
        result: List[float] = [0.0] * len(values)
        accumulated = 0.0
        for idx in order:
            value = values[idx]
            if value <= 0:
                result[idx] = 0.0
                continue
            upper, lower = self._bracket_ascending(value, ascending)
            # Choose the representative minimising |accumulated + (value - rep)|.
            dev_upper = accumulated + (value - upper)
            dev_lower = accumulated + (value - lower)
            if abs(dev_upper) < abs(dev_lower):
                chosen, accumulated = upper, dev_upper
            else:
                chosen, accumulated = lower, dev_lower
            result[idx] = chosen
        return result


class NearestValueDiscretizer(_LadderDiscretizer):
    """Naive piecewise-constant discretisation (Fig. 6(a) baseline).

    Every value is rounded independently to whichever bracketing representative
    is closer (ties towards the lower one).  Used only for the ablation showing
    why the greedy deviation-cancelling pass matters.
    """

    def discretize(self, values: Sequence[float]) -> List[float]:
        if not values:
            return []
        for value in values:
            if value < 0:
                raise ValueError("values must be non-negative")
        ascending = list(reversed(self._ladder(values)))
        result: List[float] = []
        for value in values:
            if value <= 0:
                result.append(0.0)
                continue
            upper, lower = self._bracket_ascending(value, ascending)
            if abs(upper - value) < abs(lower - value):
                result.append(upper)
            else:
                result.append(lower)
        return result
