"""The rebalance controller (Section IV, Fig. 5 — steps 1, 2 and 3).

At the end of every interval the tasks of the downstream operator report their
per-key measurements; the controller

1. folds them into its :class:`~repro.core.statistics.StatisticsStore`,
2. evaluates the degree of imbalance of the current assignment,
3. when the imbalance exceeds ``θ_max``, runs the configured planning algorithm
   (Mixed by default, optionally over the compact representation) and
4. hands the resulting migration plan to the engine's migration protocol and
   installs the new assignment function.

The controller itself is engine-agnostic: the simulator (or a real DSPE
integration) drives it with interval snapshots and consumes the returned
:class:`~repro.core.planner.RebalanceResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.core.assignment import AssignmentFunction
from repro.core.compact import CompactMixedPlanner
from repro.core.criteria import DEFAULT_BETA
from repro.core.discretization import HLHEDiscretizer
from repro.core.load import load_from_costs, max_balance_indicator, max_skewness
from repro.core.planner import PlannerConfig, RebalanceAlgorithm, RebalanceResult, get_algorithm
from repro.core.statistics import IntervalStats, StatisticsStore

__all__ = ["ControllerConfig", "RebalanceController"]

Key = Hashable


@dataclass(frozen=True)
class ControllerConfig:
    """Configuration of the rebalance controller.

    Attributes
    ----------
    theta_max:
        Imbalance tolerance ``θ_max``.
    max_table_size:
        Routing-table cap ``A_max`` (``None`` = unbounded).
    beta:
        γ-index weight scaling factor.
    window:
        State window ``w`` in intervals.
    algorithm:
        Registered planning algorithm name (``"mixed"``, ``"mintable"``, …).
        Ignored when ``use_compact`` is set.
    use_compact:
        Plan over the compact 6-dimensional representation instead of raw keys.
    discretization_degree:
        ``R`` used by the compact representation's HLHE discretiser; ``None``
        keeps original values ("Original Key Space").
    cooldown_intervals:
        Minimum number of intervals between two rebalances (0 = none); models
        the paper's practice of not replanning while a migration is in flight.
    """

    theta_max: float = 0.08
    max_table_size: Optional[int] = None
    beta: float = DEFAULT_BETA
    window: int = 1
    algorithm: str = "mixed"
    use_compact: bool = False
    discretization_degree: Optional[int] = 8
    cooldown_intervals: int = 0

    def planner_config(self) -> PlannerConfig:
        """Project the controller configuration onto the planner knobs."""
        return PlannerConfig(
            theta_max=self.theta_max,
            max_table_size=self.max_table_size,
            beta=self.beta,
            window=self.window,
        )


class RebalanceController:
    """Monitors one operator's workload and rebalances it when needed."""

    def __init__(
        self,
        assignment: AssignmentFunction,
        config: Optional[ControllerConfig] = None,
        algorithm: Optional[RebalanceAlgorithm] = None,
    ) -> None:
        self.config = config if config is not None else ControllerConfig()
        self.assignment = assignment
        self.stats = StatisticsStore(window=self.config.window)
        if self.config.use_compact:
            discretizer = (
                HLHEDiscretizer(self.config.discretization_degree)
                if self.config.discretization_degree is not None
                else None
            )
            self._compact_planner: Optional[CompactMixedPlanner] = CompactMixedPlanner(
                discretizer
            )
            self._algorithm: Optional[RebalanceAlgorithm] = None
        else:
            self._compact_planner = None
            self._algorithm = (
                algorithm if algorithm is not None else get_algorithm(self.config.algorithm)
            )
        self.history: List[RebalanceResult] = []
        self._intervals_since_rebalance = 10 ** 9  # allow an immediate first plan

    # -- observation ---------------------------------------------------------------

    def observe(self, interval_stats: IntervalStats) -> None:
        """Ingest the statistics of a finished interval (step 1 of Fig. 5)."""
        self.stats.push(interval_stats)
        self._intervals_since_rebalance += 1

    # -- state queries ----------------------------------------------------------------

    def current_loads(self) -> Dict[int, float]:
        """Per-task load of the latest interval under the current assignment."""
        if not self.stats:
            return {task: 0.0 for task in self.assignment.tasks}
        return load_from_costs(
            self.stats.cost_map(), self.assignment, self.assignment.num_tasks
        )

    def current_imbalance(self) -> float:
        """Largest balance indicator ``θ`` over the tasks."""
        return max_balance_indicator(self.current_loads())

    def current_skewness(self) -> float:
        """Workload skewness ``max L(d) / L̄`` (Fig. 7 metric)."""
        return max_skewness(self.current_loads())

    def should_rebalance(self) -> bool:
        """True when the imbalance exceeds ``θ_max`` and the cooldown elapsed."""
        if not self.stats:
            return False
        if self._intervals_since_rebalance <= self.config.cooldown_intervals:
            return False
        return self.current_imbalance() > self.config.theta_max

    # -- planning -----------------------------------------------------------------------

    def rebalance(self) -> RebalanceResult:
        """Unconditionally build and install a new assignment function."""
        if not self.stats:
            raise RuntimeError("cannot rebalance before any interval was observed")
        planner_config = self.config.planner_config()
        if self._compact_planner is not None:
            outcome = self._compact_planner.plan(self.assignment, self.stats, planner_config)
            result = outcome.result
        else:
            assert self._algorithm is not None
            result = self._algorithm.plan(self.assignment, self.stats, planner_config)
        self.assignment = result.assignment
        self.history.append(result)
        self._intervals_since_rebalance = 0
        return result

    def maybe_rebalance(self) -> Optional[RebalanceResult]:
        """Rebalance only when :meth:`should_rebalance` says so (step 2 of Fig. 5)."""
        if not self.should_rebalance():
            return None
        return self.rebalance()

    # -- reporting -----------------------------------------------------------------------

    @property
    def total_migrated_state(self) -> float:
        """Cumulative migrated state volume across every planning round."""
        return sum(result.migration_cost for result in self.history)

    @property
    def average_generation_time(self) -> float:
        """Mean plan-generation wall time over the rounds performed so far."""
        if not self.history:
            return 0.0
        return sum(result.generation_time for result in self.history) / len(self.history)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RebalanceController(algorithm={self.config.algorithm!r}, "
            f"theta_max={self.config.theta_max}, rounds={len(self.history)})"
        )
