"""Load model of Section II-A: per-task load, balance indicator and skewness.

Given an interval snapshot and an assignment function ``F``:

* ``L_i(d, F) = Σ_{k : F(k) = d} c_i(k)`` — total computation load of task ``d``;
* ``L̄_i = (1 / N_D) Σ_d L_i(d, F)`` — the average load;
* ``θ_i(d, F) = |L_i(d, F) − L̄_i| / L̄_i`` — the balance indicator, which the
  controller keeps below the user-specified tolerance ``θ_max``;
* workload skewness ``max_d L_i(d, F) / L̄_i`` — the metric plotted in Fig. 7.

All ratios are computed from the *total* load rather than the divided mean:
``L̄ = total / N`` underflows to 0.0 when the total is subnormal (e.g.
``sum == 5e-324``), which would misfire the ``mean <= 0`` guards and report a
loaded operator as empty.  ``max / L̄`` is therefore evaluated as
``max / total · N`` and ``|L − L̄| / L̄`` as ``|L / total · N − 1|``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional

__all__ = [
    "load_per_task",
    "load_from_costs",
    "total_load",
    "average_load",
    "safe_mean",
    "balance_indicator",
    "balance_indicators",
    "max_balance_indicator",
    "max_skewness",
    "overloaded_tasks",
    "load_ceiling",
    "is_balanced",
]

Key = Hashable
Assignment = Callable[[Key], int]


def load_from_costs(
    costs: Mapping[Key, float],
    assignment: Assignment,
    num_tasks: int,
) -> Dict[int, float]:
    """Compute ``{d: L(d)}`` from a ``{key: cost}`` map and an assignment."""
    if num_tasks <= 0:
        raise ValueError(f"num_tasks must be positive, got {num_tasks}")
    loads: Dict[int, float] = {task: 0.0 for task in range(num_tasks)}
    assign_batch = getattr(assignment, "assign_batch", None)
    if assign_batch is not None:
        keys = list(costs)
        pairs = zip(keys, assign_batch(keys))
    else:
        pairs = ((key, assignment(key)) for key in costs)
    for key, destination in pairs:
        if destination not in loads:
            raise ValueError(
                f"assignment routed key {key!r} to task {destination}, "
                f"outside 0..{num_tasks - 1}"
            )
        loads[destination] += costs[key]
    return loads


def load_per_task(
    stats: "IntervalStatsLike",
    assignment: Assignment,
    num_tasks: int,
) -> Dict[int, float]:
    """Compute ``{d: L_i(d, F)}`` from an interval snapshot.

    ``stats`` may be any object with an ``items()`` yielding
    ``(key, KeyStats)`` pairs (duck-typed so the compact representation can
    reuse the same helpers).
    """
    costs = {key: stat.cost for key, stat in stats.items()}
    return load_from_costs(costs, assignment, num_tasks)


def total_load(loads: Mapping[int, float]) -> float:
    """``Σ_d L(d)`` — the underflow-safe basis for every relative load metric."""
    return sum(loads.values())


def safe_mean(total: float, count: int) -> float:
    """``total / count`` with a zero-count guard (0.0 for an empty population).

    Note that the quotient itself can still underflow to 0.0 for subnormal
    totals; callers comparing a value against the mean should compare
    ``value * count`` against ``total`` instead (see :func:`overloaded_tasks`).
    """
    if count <= 0:
        return 0.0
    return total / count


def average_load(loads: Mapping[int, float]) -> float:
    """``L̄``: the mean load over all tasks (0.0 for an empty mapping)."""
    return safe_mean(total_load(loads), len(loads))


def balance_indicator(load: float, mean: float) -> float:
    """``θ = |L(d) − L̄| / L̄``; defined as 0 when the mean load is 0.

    Prefer :func:`balance_indicators` when the full load map is available: it
    works from the total load and therefore survives subnormal means.
    """
    if mean <= 0.0:
        return 0.0
    return abs(load - mean) / mean


def balance_indicators(loads: Mapping[int, float]) -> Dict[int, float]:
    """Per-task balance indicators ``{d: θ(d)}``."""
    total = total_load(loads)
    if total <= 0.0:
        return {task: 0.0 for task in loads}
    count = len(loads)
    return {task: abs(load / total * count - 1.0) for task, load in loads.items()}


def max_balance_indicator(loads: Mapping[int, float]) -> float:
    """Largest ``θ(d)`` over all tasks (0.0 for an empty mapping)."""
    total = total_load(loads)
    if total <= 0.0:
        return 0.0
    count = len(loads)
    return max(abs(load / total * count - 1.0) for load in loads.values())


def max_skewness(loads: Mapping[int, float]) -> float:
    """Workload skewness ``max_d L(d) / L̄`` (the Fig. 7 metric).

    Returns 1.0 for a perfectly balanced operator and 0.0 when there is no load
    at all.  Evaluated as ``max / total · N`` so that a subnormal total (whose
    divided mean underflows to 0.0) still reports a skewness ≥ 1.
    """
    total = total_load(loads)
    if total <= 0.0:
        return 0.0
    return max(loads.values()) / total * len(loads)


def load_ceiling(loads: Mapping[int, float], theta_max: float) -> float:
    """``L_max = (1 + θ_max) · L̄`` — the per-task load ceiling.

    As a per-task float this can still underflow to 0.0 for subnormal totals
    (the quotient is below float resolution); overload *classification* must
    therefore go through :func:`overloaded_tasks`, which compares in product
    form and never divides.
    """
    if theta_max < 0:
        raise ValueError(f"theta_max must be non-negative, got {theta_max}")
    if not loads:
        return 0.0
    return (1.0 + theta_max) * total_load(loads) / len(loads)


def overloaded_tasks(loads: Mapping[int, float], theta_max: float) -> List[int]:
    """Tasks whose load exceeds the ceiling ``(1 + θ_max) · L̄``.

    The comparison is performed in product form (``L(d) · N`` against
    ``(1 + θ_max) · total``) so a subnormal total cannot zero out the ceiling
    and flag every loaded task as overloaded.
    """
    if theta_max < 0:
        raise ValueError(f"theta_max must be non-negative, got {theta_max}")
    total = total_load(loads)
    count = len(loads)
    if count == 0 or total <= 0.0:
        return []
    threshold = (1.0 + theta_max) * total
    slack = 1e-12 * count
    return sorted(
        task for task, load in loads.items() if load * count > threshold + slack
    )


def is_balanced(loads: Mapping[int, float], theta_max: float) -> bool:
    """True when every task satisfies ``θ(d) ≤ θ_max``.

    Note that the paper's constraint is one-sided in the algorithms
    (``L(d) ≤ L_max``) but the balance indicator itself is two-sided; we follow
    the algorithms and only check the upper side here, because an underloaded
    task never forces a migration.
    """
    return not overloaded_tasks(loads, theta_max)


class IntervalStatsLike:  # pragma: no cover - typing helper only
    """Structural type for objects accepted by :func:`load_per_task`."""

    def items(self) -> Iterable:  # noqa: D102 - protocol stub
        raise NotImplementedError
