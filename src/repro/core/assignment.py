"""The mixed assignment function ``F`` (Equation 1 of the paper).

``F(k)`` first consults the explicit routing table ``A``; if the key has no
entry, the universal hash ``h(k)`` decides the destination::

    F(k) = A[k]   if (k, d) ∈ A
         = h(k)   otherwise

The class also provides the bookkeeping the planner needs: the set of keys
whose destination changes between two assignment functions (``Δ(F, F′)``), and
construction helpers for a rebalanced copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set

from repro.core.hashing import UniversalHash
from repro.core.routing_table import RoutingTable

__all__ = ["AssignmentFunction"]

Key = Hashable
HashFunction = Callable[[Key], int]


class AssignmentFunction:
    """Mixed explicit/implicit key-to-task mapping.

    Parameters
    ----------
    hash_function:
        The implicit router ``h``; any callable ``key -> task`` works
        (:class:`~repro.core.hashing.UniversalHash`,
        :class:`~repro.core.hashing.ConsistentHashRing`, …).
    routing_table:
        The explicit routing table ``A``.  A fresh empty (unbounded) table is
        created when omitted.
    num_tasks:
        Number of downstream tasks ``N_D``.  Defaults to
        ``hash_function.num_tasks`` when the hash exposes it.
    """

    def __init__(
        self,
        hash_function: HashFunction,
        routing_table: Optional[RoutingTable] = None,
        num_tasks: Optional[int] = None,
    ) -> None:
        self._hash = hash_function
        self._table = routing_table if routing_table is not None else RoutingTable()
        if num_tasks is None:
            num_tasks = getattr(hash_function, "num_tasks", None)
        if num_tasks is None:
            raise ValueError(
                "num_tasks must be given when the hash function does not expose it"
            )
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        self._num_tasks = int(num_tasks)

    # -- basic accessors -------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of downstream task instances ``N_D``."""
        return self._num_tasks

    @property
    def routing_table(self) -> RoutingTable:
        """The explicit routing table ``A`` (mutable; edit with care)."""
        return self._table

    @property
    def hash_function(self) -> HashFunction:
        """The implicit hash router ``h``."""
        return self._hash

    @property
    def tasks(self) -> range:
        """The downstream task indices ``0..N_D-1``."""
        return range(self._num_tasks)

    # -- evaluation -------------------------------------------------------------

    def __call__(self, key: Key) -> int:
        destination = self._table.get(key)
        if destination is not None:
            return destination
        return self._hash(key)

    def assign_batch(self, keys: Iterable[Key]) -> List[int]:
        """Evaluate ``F`` over many keys in one pass.

        This is the batch fast path used by snapshot routing: the routing
        table is consulted through one bound lookup per key and the hash falls
        back to its own vectorised/memoised implementation, instead of paying
        the full ``__call__`` dispatch per tuple.
        """
        if not len(self._table):
            return self.hash_batch(keys)
        keys = list(keys)
        out = self._table.get_many(keys)
        misses = [index for index, destination in enumerate(out) if destination is None]
        if misses:
            hashed = self.hash_batch([keys[index] for index in misses])
            for index, destination in zip(misses, hashed):
                out[index] = destination
        return out  # type: ignore[return-value]  # every None was filled above

    def hash_destination(self, key: Key) -> int:
        """``h(k)`` — the destination ignoring the routing table."""
        return self._hash(key)

    def hash_batch(self, keys: Iterable[Key]) -> List[int]:
        """``h(k)`` over many keys (the table-less sibling of :meth:`assign_batch`)."""
        hash_batch = getattr(self._hash, "assign_batch", None)
        if hash_batch is not None:
            return hash_batch(keys)
        hash_fn = self._hash
        return [hash_fn(key) for key in keys]

    def is_explicit(self, key: Key) -> bool:
        """True when ``key`` is routed by the table rather than the hash."""
        return key in self._table

    def destinations(self, keys: Iterable[Key]) -> Dict[Key, int]:
        """Evaluate ``F`` over many keys at once."""
        keys = list(keys)
        return dict(zip(keys, self.assign_batch(keys)))

    def keys_of_task(self, task: int, keys: Iterable[Key]) -> List[Key]:
        """Subset of ``keys`` currently assigned to ``task``."""
        keys = list(keys)
        return [
            key
            for key, destination in zip(keys, self.assign_batch(keys))
            if destination == task
        ]

    def partition(self, keys: Iterable[Key]) -> Dict[int, List[Key]]:
        """Group ``keys`` by destination task."""
        groups: Dict[int, List[Key]] = {task: [] for task in self.tasks}
        keys = list(keys)
        for key, destination in zip(keys, self.assign_batch(keys)):
            groups[destination].append(key)
        return groups

    # -- rebalancing helpers -----------------------------------------------------

    def delta(self, other: "AssignmentFunction", keys: Iterable[Key]) -> Set[Key]:
        """``Δ(F, F′)``: keys whose destination differs between the two functions.

        Only keys in ``keys`` (typically the keys observed in the statistics
        window) are considered — unseen keys carry no state and therefore incur
        no migration.
        """
        keys = list(keys)
        return {
            key
            for key, mine, theirs in zip(
                keys, self.assign_batch(keys), other.assign_batch(keys)
            )
            if mine != theirs
        }

    def with_table(self, table: RoutingTable) -> "AssignmentFunction":
        """Return a new assignment function sharing ``h`` but with ``table``."""
        return AssignmentFunction(self._hash, table, num_tasks=self._num_tasks)

    def copy(self) -> "AssignmentFunction":
        """Deep-copy (the routing table is copied; the hash is shared)."""
        return AssignmentFunction(
            self._hash, self._table.copy(), num_tasks=self._num_tasks
        )

    def normalized_table(self) -> RoutingTable:
        """Return a copy of the table with redundant entries removed.

        An entry ``(k, d)`` is redundant when ``d == h(k)``; dropping it does
        not change ``F`` but shrinks ``N_A``.
        """
        table = self._table.copy()
        for key in list(table.keys()):
            if table[key] == self._hash(key):
                table.discard(key)
        return table

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def hashed(
        cls,
        num_tasks: int,
        *,
        seed: int = 0,
        max_table_size: Optional[int] = None,
    ) -> "AssignmentFunction":
        """Create a fresh mixed assignment with an empty routing table."""
        return cls(
            UniversalHash(num_tasks, seed=seed),
            RoutingTable(max_size=max_table_size),
            num_tasks=num_tasks,
        )

    @classmethod
    def from_mapping(
        cls,
        hash_function: HashFunction,
        mapping: Mapping[Key, int],
        *,
        num_tasks: Optional[int] = None,
        max_table_size: Optional[int] = None,
    ) -> "AssignmentFunction":
        """Create an assignment that pins ``mapping`` on top of ``hash_function``.

        Entries agreeing with the hash are dropped to keep the table minimal.
        """
        function = cls(
            hash_function,
            RoutingTable(max_size=max_table_size),
            num_tasks=num_tasks,
        )
        for key, task in mapping.items():
            if task != hash_function(key):
                function.routing_table.set(key, task, enforce_limit=False)
        return function

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AssignmentFunction(num_tasks={self._num_tasks}, "
            f"table_size={self._table.size})"
        )
