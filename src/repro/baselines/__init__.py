"""Baseline partitioning / load-balancing strategies used in the paper's evaluation.

* :class:`~repro.baselines.hash_only.HashPartitioner` — Apache Storm's default
  key (fields) grouping: a static hash, never rebalanced ("Storm" curves).
* :class:`~repro.baselines.shuffle.ShufflePartitioner` — key-oblivious shuffle
  grouping; the "Ideal" upper bound that cannot be used for stateful operators.
* :class:`~repro.baselines.readj.ReadjPartitioner` — Gedik's partitioning
  functions for stateful data parallelism (VLDBJ 2014): pairwise key
  swap/migrate search over the hot keys ("Readj").
* :class:`~repro.baselines.pkg.PartialKeyGrouping` — key splitting over the two
  hash choices with power-of-two-choices load estimation ("PKG"), plus the
  partial-aggregation/merge operator pair it requires.
* :class:`~repro.baselines.dkg.DKGPartitioner` — distribution-aware key
  grouping: heavy keys placed greedily, light keys hashed (related-work
  baseline).

All partitioners implement the small :class:`~repro.baselines.base.Partitioner`
protocol so the engine can drive any of them interchangeably.
"""

from repro.baselines.base import Partitioner, RebalancingPartitioner
from repro.baselines.dkg import DKGPartitioner
from repro.baselines.hash_only import HashPartitioner
from repro.baselines.pkg import PartialKeyGrouping
from repro.baselines.readj import ReadjPartitioner
from repro.baselines.shuffle import ShufflePartitioner

__all__ = [
    "DKGPartitioner",
    "HashPartitioner",
    "PartialKeyGrouping",
    "Partitioner",
    "ReadjPartitioner",
    "RebalancingPartitioner",
    "ShufflePartitioner",
]
