"""PKG — Partial Key Grouping (Nasir et al., ICDE 2015).

PKG splits the tuples of a key over the key's *two* hash choices and, for every
tuple, picks whichever of the two candidate tasks currently has the lower
estimated load ("the power of both choices").  This balances extremely well and
needs no migration, but it breaks key contiguity: downstream aggregations must
run as partial aggregations followed by an extra merge operator, and stateful
operators such as joins are not supported at all — which is why the paper's
Stock (self-join) and TPC-H experiments exclude PKG.

The merge overhead is modelled by :class:`repro.operators.windowed_aggregate.
PartialAggregateMergeTopology`; this module only provides the routing policy
and its bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.base import Partitioner
from repro.core.hashing import UniversalHash, memo_key
from repro.core.statistics import IntervalStats

__all__ = ["PartialKeyGrouping"]

Key = Hashable

#: Bound on memoised candidate lists (mirrors the base route-cache cap).
_CANDIDATES_CACHE_MAX = 1 << 20


class PartialKeyGrouping(Partitioner):
    """Power-of-two-choices key splitting.

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    choices:
        Number of candidate tasks per key (2 in the original paper; the
        follow-up work "when two choices are not enough" uses more, which is
        supported here for completeness).
    merge_period_ms:
        The ``p`` parameter of the open-source PKG bolt: interval between two
        consecutive partial-result merges.  Only used by the operator model to
        account for the added latency; 10 ms is the value the paper selects.
    seed:
        Hash seed.
    """

    name = "pkg"

    def __init__(
        self,
        num_tasks: int,
        choices: int = 2,
        merge_period_ms: float = 10.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_tasks)
        if choices < 1:
            raise ValueError("choices must be >= 1")
        if merge_period_ms < 0:
            raise ValueError("merge_period_ms must be non-negative")
        self.choices = int(choices)
        self.merge_period_ms = float(merge_period_ms)
        self.seed = int(seed)
        self._hash = UniversalHash(num_tasks, seed=seed)
        self._loads: Dict[int, float] = {task: 0.0 for task in range(num_tasks)}
        #: Memoised candidate lists — the hash positions of a key are static
        #: for a given parallelism, so they are computed once per key and
        #: reused across intervals (dropped on scale-out).
        self._candidates_cache: Dict[Key, List[int]] = {}
        #: Number of tuples routed per (key, task) — used by the merge operator
        #: model to know how many partials exist per key.
        self.split_counts: Dict[Key, Dict[int, int]] = {}

    # -- routing ---------------------------------------------------------------------

    def candidate_tasks(self, key: Key) -> List[int]:
        """The candidate tasks of ``key`` (its ``choices`` hash positions)."""
        memo = memo_key(key)
        if memo is None:
            return self._hash.candidates(key, self.choices)
        candidates = self._candidates_cache.get(memo)
        if candidates is None:
            if len(self._candidates_cache) >= _CANDIDATES_CACHE_MAX:
                self._candidates_cache.clear()
            candidates = self._candidates_cache[memo] = self._hash.candidates(
                key, self.choices
            )
        # Copy so a caller mutating the result cannot corrupt the cache.
        return list(candidates)

    def route(self, key: Key) -> int:
        candidates = self.candidate_tasks(key)
        task = min(candidates, key=lambda d: (self._loads[d], d))
        self._loads[task] += 1.0
        per_key = self.split_counts.setdefault(key, {})
        per_key[task] = per_key.get(task, 0) + 1
        return task

    def route_bulk(self, key: Key, count: float) -> Dict[int, float]:
        """Split a batch of ``count`` tuples of ``key`` over its candidates.

        The fluid equivalent of routing tuple-by-tuple with the two-choices
        rule: the batch is poured into the candidate tasks so that their loads
        equalise (water-filling), which is what the per-tuple greedy converges
        to for large batches.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return {}
        candidates = self.candidate_tasks(key)
        if len(candidates) == 1:
            task = candidates[0]
            self._loads[task] += count
            per_key = self.split_counts.setdefault(key, {})
            per_key[task] = per_key.get(task, 0) + int(count)
            return {task: count}
        # Water-filling over the candidates' current loads.
        remaining = float(count)
        shares: Dict[int, float] = {task: 0.0 for task in candidates}
        while remaining > 1e-9:
            lightest = min(candidates, key=lambda d: (self._loads[d] + shares[d], d))
            others = [d for d in candidates if d != lightest]
            next_level = min(self._loads[d] + shares[d] for d in others)
            gap = next_level - (self._loads[lightest] + shares[lightest])
            pour = min(remaining, gap) if gap > 0 else remaining / len(candidates)
            if pour <= 0:
                pour = remaining / len(candidates)
            shares[lightest] += pour
            remaining -= pour
        result = {task: share for task, share in shares.items() if share > 0}
        for task, share in result.items():
            self._loads[task] += share
            per_key = self.split_counts.setdefault(key, {})
            per_key[task] = per_key.get(task, 0) + int(round(share))
        return result

    def partials_per_key(self, key: Key) -> int:
        """How many distinct tasks currently hold partial state for ``key``."""
        return len(self.split_counts.get(key, {}))

    def total_partials(self) -> int:
        """Total number of (key, task) partial-state pairs this interval."""
        return sum(len(tasks) for tasks in self.split_counts.values())

    def split_assignment(self) -> Dict[Key, Tuple[int, ...]]:
        """The interval's split placement: each routed key's partial-holding
        tasks, sorted.

        A key routed to a single task maps to a 1-tuple; a *split* key (the
        hot keys the two-choices rule actually fans out) maps to several.
        This is the explicit form of the placement the downstream merge
        stage reconstructs from the ``(source, partial)`` tags — exposed so
        benches and tests can assert how many keys were split and how wide,
        without reverse-engineering :attr:`split_counts`.
        """
        return {
            key: tuple(sorted(per_task))
            for key, per_task in self.split_counts.items()
        }

    # -- lifecycle --------------------------------------------------------------------

    def on_interval_end(self, stats: IntervalStats) -> None:
        # PKG never migrates; it only resets its per-interval load estimates so
        # that stale history does not bias the two-choices decision.
        self._loads = {task: 0.0 for task in range(self.num_tasks)}
        self.split_counts = {}
        return None

    def supports_stateful(self) -> bool:
        return False

    def scale_out(self, new_num_tasks: int) -> None:
        super().scale_out(new_num_tasks)
        self._hash = UniversalHash(self.num_tasks, seed=self.seed)
        self._candidates_cache = {}
        for task in range(self.num_tasks):
            self._loads.setdefault(task, 0.0)

    def scale_in(self, new_num_tasks: int) -> None:
        super().scale_in(new_num_tasks)
        self._hash = UniversalHash(self.num_tasks, seed=self.seed)
        self._candidates_cache = {}
        self._loads = {
            task: load
            for task, load in self._loads.items()
            if task < new_num_tasks
        }
        self.split_counts = {}
