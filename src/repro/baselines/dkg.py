"""DKG — Distribution-aware Key Grouping (Rivetti et al., DEBS 2015).

DKG distinguishes *heavy* keys from *light* ones by their observed frequency:
heavy keys are placed greedily (largest first onto the least-loaded task),
light keys fall back to hashing.  It is a related-work baseline the paper cites
(not part of the headline comparison) and is included here both for
completeness and as a useful sanity check: with static workloads it behaves
like MinTable's Phase II/III without the migration awareness.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional

from repro.baselines.base import RebalancingPartitioner
from repro.core.assignment import AssignmentFunction
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.migration import build_migration_plan, migration_cost_fraction
from repro.core.planner import RebalanceResult
from repro.core.routing_table import RoutingTable
from repro.core.statistics import IntervalStats, StatisticsStore

__all__ = ["DKGPartitioner"]

Key = Hashable


class DKGPartitioner(RebalancingPartitioner):
    """Greedy placement of heavy keys, hashing for the light tail.

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    heavy_factor:
        A key is *heavy* when its cost exceeds ``heavy_factor × L̄ / num_keys``
        — i.e. it is responsible for more than ``heavy_factor`` "fair shares"
        of a single key.  The DEBS'15 paper derives a similar threshold from
        the desired imbalance ε.
    theta_max:
        Tolerance used only to decide whether a replanning round is needed.
    window:
        State window used for migration costing.
    seed:
        Hash seed.
    """

    name = "dkg"
    cache_routes = True

    def __init__(
        self,
        num_tasks: int,
        heavy_factor: float = 5.0,
        theta_max: float = 0.08,
        window: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(num_tasks)
        if heavy_factor <= 0:
            raise ValueError("heavy_factor must be positive")
        self.heavy_factor = float(heavy_factor)
        self.theta_max = float(theta_max)
        self.window = int(window)
        self.assignment = AssignmentFunction.hashed(num_tasks, seed=seed)
        self.stats = StatisticsStore(window=window)
        self.history: List[RebalanceResult] = []

    def route(self, key: Key) -> int:
        return self.assignment(key)

    def _route_epoch(self) -> object:
        return (len(self.history), self.assignment.routing_table.version)

    def plan_rebalance(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        self.stats.push(stats)
        costs = self.stats.cost_map()
        if not costs:
            return None
        loads = load_from_costs(costs, self.assignment, self.num_tasks)
        if max_balance_indicator(loads) <= self.theta_max:
            return None
        result = self._rebuild(costs)
        self.history.append(result)
        self.assignment = result.assignment
        return result

    def _rebuild(self, costs: Dict[Key, float]) -> RebalanceResult:
        start = time.perf_counter()
        # Product-form heavy test (cost · K > factor · total): a subnormal
        # total cost would underflow the divided mean and mark every key heavy.
        total_cost = sum(costs.values())
        count = len(costs)
        threshold = self.heavy_factor * total_cost
        heavy_keys: List[Key] = []
        light: List[Key] = []
        for key, cost in costs.items():
            (heavy_keys if cost * count > threshold else light).append(key)
        heavy = sorted(heavy_keys, key=lambda k: (-costs[k], repr(k)))

        loads: Dict[int, float] = {task: 0.0 for task in range(self.num_tasks)}
        placements: Dict[Key, int] = {}
        for key, task in zip(light, self.assignment.hash_batch(light)):
            placements[key] = task
            loads[task] += costs[key]
        for key in heavy:
            task = min(loads, key=lambda d: (loads[d], d))
            placements[key] = task
            loads[task] += costs[key]

        table = RoutingTable()
        for key, task in placements.items():
            if task != self.assignment.hash_destination(key):
                table.set(key, task, enforce_limit=False)
        new_assignment = self.assignment.with_table(table)
        plan = build_migration_plan(
            self.assignment, new_assignment, placements.keys(), self.stats, self.window
        )
        result = RebalanceResult(
            algorithm=self.name,
            assignment=new_assignment,
            routing_table=table,
            migration_plan=plan,
            loads=loads,
            balanced=max_balance_indicator(loads) <= self.theta_max,
            max_theta=max_balance_indicator(loads),
            migration_fraction=migration_cost_fraction(plan.keys, self.stats, self.window),
        )
        result.generation_time = time.perf_counter() - start
        return result

    def scale_out(self, new_num_tasks: int) -> None:
        super().scale_out(new_num_tasks)
        table = self.assignment.routing_table.copy()
        self.assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.assignment.hash_function.seed
        ).with_table(table)

    def scale_in(self, new_num_tasks: int) -> None:
        super().scale_in(new_num_tasks)
        # Entries pointing at removed tasks fall back to the (resized) hash.
        table = self.assignment.routing_table.copy()
        for key, task in list(table.items()):
            if task >= new_num_tasks:
                table.discard(key)
        self.assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.assignment.hash_function.seed
        ).with_table(table)
