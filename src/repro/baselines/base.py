"""Common interface for workload partitioners.

The engine talks to every strategy — the paper's mixed-routing controller and
all baselines — through this small protocol:

* :meth:`Partitioner.route` decides the destination task of one tuple;
* :meth:`Partitioner.assign_batch` and :meth:`Partitioner.route_snapshot` are
  the batch fast path: an entire ``{key: count}`` interval snapshot is routed
  in a single call (one pass, memoised key→task results for deterministic
  strategies) instead of one Python call per key;
* :meth:`Partitioner.on_interval_end` hands the partitioner the statistics of
  the finished interval and lets it rebalance; it returns a
  :class:`~repro.core.planner.RebalanceResult` when keys (and their state) were
  migrated, or ``None`` when nothing changed;
* :meth:`Partitioner.supports_stateful` advertises whether the strategy keeps
  the key-contiguity guarantee stateful operators need (PKG does not).

Strategies whose ``route`` is deterministic, side-effect free and
key-contiguous (plain hashing, the mixed-routing controller, Readj, DKG)
declare ``cache_routes = True``: the base class then memoises key→task results
across intervals and only recomputes them when the assignment changes (a
rebalance installs a new routing table, or the operator scales out).  The
cache epoch is provided by :meth:`Partitioner._route_epoch`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.hashing import memo_key
from repro.core.planner import RebalanceResult
from repro.core.statistics import IntervalStats

__all__ = ["Partitioner", "RebalancingPartitioner"]

Key = Hashable

#: Sentinel marking a route cache whose epoch has never been sampled.
_EPOCH_UNSET = object()

#: Bound on memoised key→task entries (matches the digest-cache cap): a
#: workload that keeps minting fresh keys must not grow the memo without limit.
_ROUTE_CACHE_MAX = 1 << 20

#: Key types eligible for the raw-key bulk route memo.  A per-type dict keyed
#: by the *raw* key needs no :func:`memo_key` boxing, so a whole batch reads
#: as one C-level ``map(cache.get, keys)`` — but it is only collision-safe
#: when every key of the batch has exactly that type (``1``/``True``/``1.0``
#: are equal dict keys that hash differently; the homogeneity check in
#: :meth:`Partitioner.assign_batch` rules the mix out, and ``float`` stays
#: excluded entirely because ``0.0``/``-0.0`` collide even within the type).
_BULK_MEMO_TYPES = frozenset((str, bytes, int))


class Partitioner(ABC):
    """Strategy deciding which downstream task processes each tuple."""

    #: Display name used by experiments and reports.
    name: str = "partitioner"

    #: True when ``route`` is deterministic, side-effect free and
    #: key-contiguous, enabling the shared key→task memo used by the batch API.
    cache_routes: bool = False

    def __init__(self, num_tasks: int) -> None:
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        self.num_tasks = int(num_tasks)
        self._route_cache: Dict[Key, int] = {}
        #: Raw-key memos for homogeneously-typed batches (see _BULK_MEMO_TYPES).
        self._typed_route_caches: Dict[type, Dict[Key, int]] = {}
        self._route_cache_epoch: object = _EPOCH_UNSET

    @abstractmethod
    def route(self, key: Key) -> int:
        """Return the destination task index for a tuple with ``key``."""

    # -- batch routing ------------------------------------------------------

    def _route_epoch(self) -> object:
        """Token identifying the current assignment; a change drops the cache.

        Static strategies return a constant; rebalancing strategies return
        something that changes whenever their assignment function does (e.g.
        ``(rounds, routing_table.version)``).
        """
        return None

    def invalidate_route_cache(self) -> None:
        """Drop all memoised key→task results (after rebalance/scale-out)."""
        self._route_cache.clear()
        self._typed_route_caches.clear()
        self._route_cache_epoch = _EPOCH_UNSET

    def _check_snapshot_num_tasks(self, num_tasks: Optional[int]) -> None:
        """Reject a caller whose view of the parallelism is out of sync."""
        if num_tasks is not None and int(num_tasks) != self.num_tasks:
            raise ValueError(
                f"snapshot routed for {num_tasks} tasks but partitioner has "
                f"{self.num_tasks}"
            )

    def _sync_route_epoch(self) -> None:
        """Drop every memo if the assignment epoch moved."""
        epoch = self._route_epoch()
        if epoch != self._route_cache_epoch:
            self._route_cache.clear()
            self._typed_route_caches.clear()
            self._route_cache_epoch = epoch

    def _valid_route_cache(self) -> Dict[Key, int]:
        """The memo dict, cleared first if the assignment epoch moved."""
        self._sync_route_epoch()
        if len(self._route_cache) >= _ROUTE_CACHE_MAX:
            self._route_cache.clear()
        return self._route_cache

    def assign_batch(self, keys: Iterable[Key]) -> List[int]:
        """Destination task of every key in ``keys`` (one call, in order).

        Semantically identical to ``[self.route(k) for k in keys]``; cached
        strategies answer repeated keys from the key→task memo.  A batch
        whose keys are homogeneously ``str``/``bytes``/``int`` takes the
        **bulk memo path**: one C-level ``map`` over a raw-key dict, with a
        Python-level loop only over the cache misses — this is what lets the
        runtime router dispatch a chunk without per-key Python work.
        """
        if not self.cache_routes:
            route = self.route
            return [route(key) for key in keys]
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        if keys and len(types := set(map(type, keys))) == 1:
            (cls,) = types
            if cls in _BULK_MEMO_TYPES:
                return self._assign_batch_bulk(keys, cls)
        cache = self._valid_route_cache()
        cache_get = cache.get
        route = self.route
        out: List[int] = []
        for key in keys:
            memo = memo_key(key)
            if memo is None:
                out.append(route(key))
                continue
            task = cache_get(memo)
            if task is None:
                task = cache[memo] = route(key)
            out.append(task)
        return out

    def _bulk_route_cache(self, cls: type) -> Dict[Key, int]:
        """The raw-key memo dict of one key type (epoch-synced, capped)."""
        self._sync_route_epoch()
        cache = self._typed_route_caches.get(cls)
        if cache is None:
            cache = self._typed_route_caches[cls] = {}
        elif len(cache) >= _ROUTE_CACHE_MAX:
            cache.clear()
        return cache

    def _assign_batch_bulk(self, keys: Sequence[Key], cls: type) -> List[int]:
        """Raw-key memo lookup of a homogeneously-``cls``-typed batch."""
        cache = self._bulk_route_cache(cls)
        out = list(map(cache.get, keys))
        if None in out:  # first sighting of some keys under this assignment
            route = self.route
            cache_get = cache.get
            for index, task in enumerate(out):
                if task is None:
                    key = keys[index]
                    task = cache_get(key)
                    if task is None:
                        task = cache[key] = route(key)
                    out[index] = task
        return out

    def assign_batch_array(self, keys: Sequence[Key]) -> np.ndarray:
        """Destinations as an ``intp`` ndarray (the router's dispatch shape).

        Same semantics as :meth:`assign_batch`; on the all-hits bulk path the
        array is filled straight from the raw-key memo (one C-level
        ``fromiter`` over ``map(cache.get, …)``) without materialising the
        intermediate Python list.
        """
        if self.cache_routes and isinstance(keys, (list, tuple)) and keys:
            if len(types := set(map(type, keys))) == 1:
                (cls,) = types
                if cls in _BULK_MEMO_TYPES:
                    cache = self._bulk_route_cache(cls)
                    try:
                        return np.fromiter(
                            map(cache.get, keys), dtype=np.intp, count=len(keys)
                        )
                    except TypeError:
                        # A miss surfaced as None; fall through to the list
                        # path, which computes and memoises the new routes.
                        pass
        return np.asarray(self.assign_batch(keys), dtype=np.intp)

    def route_snapshot(
        self,
        snapshot: Mapping[Key, float],
        num_tasks: Optional[int] = None,
    ) -> Dict[int, Dict[Key, float]]:
        """Route a whole ``{key: count}`` interval snapshot in one call.

        Returns ``{task: {key: count}}`` with an (initially empty) bucket for
        every task in ``0..num_tasks-1``.  Key-splitting strategies (PKG,
        shuffle) spread each key's batch over several buckets exactly like
        :meth:`route_bulk` does; key-contiguous strategies send the whole
        count to the key's single destination.  Non-positive counts are
        skipped.  ``num_tasks``, when given, must match the partitioner's
        current parallelism (it exists so callers can assert their view of the
        operator is in sync).
        """
        self._check_snapshot_num_tasks(num_tasks)
        per_task: Dict[int, Dict[Key, float]] = {
            task: {} for task in range(self.num_tasks)
        }
        if self.cache_routes:
            cache = self._valid_route_cache()
            cache_get = cache.get
            route = self.route
            for key, count in snapshot.items():
                if count <= 0:
                    continue
                memo = memo_key(key)
                if memo is None:
                    task = route(key)
                else:
                    task = cache_get(memo)
                    if task is None:
                        task = cache[memo] = route(key)
                per_task[task][key] = count
            return per_task
        for key, count in snapshot.items():
            if count <= 0:
                continue
            for task, share in self.route_bulk(key, count).items():
                bucket = per_task[task]
                bucket[key] = bucket.get(key, 0.0) + share
        return per_task

    def route_bulk(self, key: Key, count: float) -> Dict[int, float]:
        """Route ``count`` tuples of ``key`` in one call (fluid simulation path).

        Key-contiguous strategies send the whole batch to :meth:`route`;
        key-splitting strategies (PKG, shuffle) override this to spread the
        batch over several tasks.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return {}
        return {self.route(key): count}

    def on_interval_end(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        """Observe the finished interval; rebalance if the strategy does that.

        The default implementation is a no-op (static strategies).
        """
        return None

    def supports_stateful(self) -> bool:
        """True when all tuples of a key are guaranteed to visit a single task."""
        return True

    def scale_out(self, new_num_tasks: int) -> None:
        """Grow the downstream operator to ``new_num_tasks`` tasks.

        Static strategies simply update their hash range; rebalancing
        strategies additionally fold the change into their next planning round.
        """
        if new_num_tasks < self.num_tasks:
            raise ValueError("scale_out cannot shrink the operator")
        self.num_tasks = int(new_num_tasks)
        self.invalidate_route_cache()

    def scale_in(self, new_num_tasks: int) -> None:
        """Shrink the downstream operator to ``new_num_tasks`` tasks.

        The mirror of :meth:`scale_out` for elastic scale-in: after the
        resize every key must route to a task ``< new_num_tasks`` (the
        drained tasks stop existing), so strategies that learned a routing
        table additionally re-home the entries pointing at removed tasks.
        """
        if new_num_tasks > self.num_tasks:
            raise ValueError("scale_in cannot grow the operator")
        if new_num_tasks < 1:
            raise ValueError("scale_in needs at least one remaining task")
        self.num_tasks = int(new_num_tasks)
        self.invalidate_route_cache()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_tasks={self.num_tasks})"


class RebalancingPartitioner(Partitioner):
    """Base class for strategies that migrate keys between intervals.

    Sub-classes implement :meth:`plan_rebalance`; the bookkeeping of applying
    the produced assignment is shared here.
    """

    @abstractmethod
    def plan_rebalance(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        """Produce (and install) a new assignment from the interval statistics."""

    def on_interval_end(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        result = self.plan_rebalance(stats)
        if result is not None:
            # The assignment changed: memoised key→task routes are stale.
            self.invalidate_route_cache()
        return result
