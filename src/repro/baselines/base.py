"""Common interface for workload partitioners.

The engine talks to every strategy — the paper's mixed-routing controller and
all baselines — through this small protocol:

* :meth:`Partitioner.route` decides the destination task of one tuple;
* :meth:`Partitioner.on_interval_end` hands the partitioner the statistics of
  the finished interval and lets it rebalance; it returns a
  :class:`~repro.core.planner.RebalanceResult` when keys (and their state) were
  migrated, or ``None`` when nothing changed;
* :meth:`Partitioner.supports_stateful` advertises whether the strategy keeps
  the key-contiguity guarantee stateful operators need (PKG does not).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Optional

from repro.core.planner import RebalanceResult
from repro.core.statistics import IntervalStats

__all__ = ["Partitioner", "RebalancingPartitioner"]

Key = Hashable


class Partitioner(ABC):
    """Strategy deciding which downstream task processes each tuple."""

    #: Display name used by experiments and reports.
    name: str = "partitioner"

    def __init__(self, num_tasks: int) -> None:
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        self.num_tasks = int(num_tasks)

    @abstractmethod
    def route(self, key: Key) -> int:
        """Return the destination task index for a tuple with ``key``."""

    def route_bulk(self, key: Key, count: float) -> Dict[int, float]:
        """Route ``count`` tuples of ``key`` in one call (fluid simulation path).

        Key-contiguous strategies send the whole batch to :meth:`route`;
        key-splitting strategies (PKG, shuffle) override this to spread the
        batch over several tasks.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return {}
        return {self.route(key): count}

    def on_interval_end(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        """Observe the finished interval; rebalance if the strategy does that.

        The default implementation is a no-op (static strategies).
        """
        return None

    def supports_stateful(self) -> bool:
        """True when all tuples of a key are guaranteed to visit a single task."""
        return True

    def scale_out(self, new_num_tasks: int) -> None:
        """Grow the downstream operator to ``new_num_tasks`` tasks.

        Static strategies simply update their hash range; rebalancing
        strategies additionally fold the change into their next planning round.
        """
        if new_num_tasks < self.num_tasks:
            raise ValueError("scale_out cannot shrink the operator")
        self.num_tasks = int(new_num_tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_tasks={self.num_tasks})"


class RebalancingPartitioner(Partitioner):
    """Base class for strategies that migrate keys between intervals.

    Sub-classes implement :meth:`plan_rebalance`; the bookkeeping of applying
    the produced assignment is shared here.
    """

    @abstractmethod
    def plan_rebalance(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        """Produce (and install) a new assignment from the interval statistics."""

    def on_interval_end(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        return self.plan_rebalance(stats)
