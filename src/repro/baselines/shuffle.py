"""Shuffle grouping — the "Ideal" upper bound of Fig. 13.

Tuples are spread over the tasks regardless of their key (round-robin, or
join-the-least-loaded when load feedback is enabled), so the workload is
perfectly balanced by construction.  The price is that key contiguity is lost:
the strategy cannot be used for stateful key-based operators (aggregations,
joins) without an additional merge stage, which is exactly why the paper uses
it only as a theoretical performance bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.baselines.base import Partitioner
from repro.core.statistics import IntervalStats

__all__ = ["ShufflePartitioner"]

Key = Hashable


class ShufflePartitioner(Partitioner):
    """Key-oblivious tuple spreading.

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    least_loaded:
        When True, each tuple joins the task with the least load routed so far
        in the current interval (a fluid approximation of Storm's local
        shuffle + backpressure); otherwise strict round-robin.
    """

    name = "shuffle"

    def __init__(self, num_tasks: int, least_loaded: bool = False) -> None:
        super().__init__(num_tasks)
        self.least_loaded = bool(least_loaded)
        self._next = 0
        self._interval_load: Dict[int, float] = {task: 0.0 for task in range(num_tasks)}

    def route(self, key: Key) -> int:
        if self.least_loaded:
            task = min(self._interval_load, key=lambda d: (self._interval_load[d], d))
            self._interval_load[task] += 1.0
            return task
        task = self._next
        self._next = (self._next + 1) % self.num_tasks
        return task

    def route_bulk(self, key: Key, count: float) -> Dict[int, float]:
        """Spread a batch evenly over all tasks (perfect key-oblivious balance)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return {}
        share = count / self.num_tasks
        for task in range(self.num_tasks):
            self._interval_load[task] += share
        return {task: share for task in range(self.num_tasks)}

    def route_snapshot(
        self,
        snapshot,
        num_tasks=None,
    ) -> Dict[int, Dict[Key, float]]:
        """Vectorised even spread: every task receives ``count / N`` per key."""
        self._check_snapshot_num_tasks(num_tasks)
        n = self.num_tasks
        shares = {
            key: count / n for key, count in snapshot.items() if count > 0
        }
        per_task_total = sum(shares.values())
        per_task: Dict[int, Dict[Key, float]] = {}
        for task in range(n):
            per_task[task] = dict(shares)
            self._interval_load[task] += per_task_total
        return per_task

    def on_interval_end(self, stats: IntervalStats) -> None:
        # Reset the per-interval load estimate; shuffle never migrates state.
        self._interval_load = {task: 0.0 for task in range(self.num_tasks)}
        return None

    def supports_stateful(self) -> bool:
        return False

    def scale_out(self, new_num_tasks: int) -> None:
        super().scale_out(new_num_tasks)
        for task in range(new_num_tasks):
            self._interval_load.setdefault(task, 0.0)

    def scale_in(self, new_num_tasks: int) -> None:
        super().scale_in(new_num_tasks)
        self._interval_load = {
            task: load
            for task, load in self._interval_load.items()
            if task < new_num_tasks
        }
