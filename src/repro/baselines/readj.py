"""Readj — re-implementation of Gedik's partitioning functions (VLDBJ 2014).

Readj uses the same mixed hash + explicit-table routing model as the paper but
a very different rebalancing procedure:

1. it first tries to *move back* explicitly routed keys to their hash
   destination whenever that does not overload the receiving task (restoring
   the "ideal" compact table);
2. it then repeatedly searches over all pairs of (task, candidate key) — and
   pairs of candidate keys for swaps — applying the single move or swap that
   best reduces the load spread, until the operator is balanced or no operation
   improves it.

Only *hot* keys participate: a key is a candidate when its computation cost is
at least ``sigma`` times the average key cost.  A smaller ``sigma`` tracks more
keys and finds better plans at a steep planning-time cost — exactly the
behaviour the paper reports in Fig. 12 (Readj's generation time explodes under
frequent distribution change) and Fig. 14 (it only matches Mixed under loose
``θ_max``).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.baselines.base import RebalancingPartitioner
from repro.core.assignment import AssignmentFunction
from repro.core.load import load_ceiling, load_from_costs, max_balance_indicator
from repro.core.migration import build_migration_plan, migration_cost_fraction
from repro.core.planner import RebalanceResult
from repro.core.routing_table import RoutingTable
from repro.core.statistics import IntervalStats, StatisticsStore

__all__ = ["ReadjPartitioner"]

Key = Hashable

_EPS = 1e-9


class ReadjPartitioner(RebalancingPartitioner):
    """Pairwise swap/move rebalancer over hot keys.

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    theta_max:
        Imbalance tolerance the search tries to reach.
    sigma:
        Hot-key threshold: keys with cost ≥ ``sigma ×`` (average key cost) are
        candidates for moves and swaps.
    window:
        State window used for migration costing.
    max_operations:
        Safety cap on the number of moves/swaps applied per planning round.
    seed:
        Hash seed (kept equal to the mixed-routing configuration for fair
        comparisons).
    """

    name = "readj"
    cache_routes = True

    def __init__(
        self,
        num_tasks: int,
        theta_max: float = 0.08,
        sigma: float = 2.0,
        window: int = 1,
        max_operations: int = 2000,
        seed: int = 0,
    ) -> None:
        super().__init__(num_tasks)
        if theta_max < 0:
            raise ValueError("theta_max must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.theta_max = float(theta_max)
        self.sigma = float(sigma)
        self.window = int(window)
        self.max_operations = int(max_operations)
        self.assignment = AssignmentFunction.hashed(num_tasks, seed=seed)
        self.stats = StatisticsStore(window=window)
        self.history: List[RebalanceResult] = []

    # -- routing ----------------------------------------------------------------

    def route(self, key: Key) -> int:
        return self.assignment(key)

    def _route_epoch(self) -> object:
        return (len(self.history), self.assignment.routing_table.version)

    def scale_out(self, new_num_tasks: int) -> None:
        super().scale_out(new_num_tasks)
        table = self.assignment.routing_table.copy()
        self.assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.assignment.hash_function.seed
        ).with_table(table)

    def scale_in(self, new_num_tasks: int) -> None:
        super().scale_in(new_num_tasks)
        # Entries pointing at removed tasks fall back to the (resized) hash.
        table = self.assignment.routing_table.copy()
        for key, task in list(table.items()):
            if task >= new_num_tasks:
                table.discard(key)
        self.assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.assignment.hash_function.seed
        ).with_table(table)

    # -- planning ----------------------------------------------------------------

    def plan_rebalance(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        self.stats.push(stats)
        costs = self.stats.cost_map()
        if not costs:
            return None
        loads = load_from_costs(costs, self.assignment, self.num_tasks)
        if max_balance_indicator(loads) <= self.theta_max:
            return None
        result = self._rebalance(costs)
        self.history.append(result)
        self.assignment = result.assignment
        return result

    def _candidates(self, costs: Dict[Key, float]) -> List[Key]:
        """Hot keys: cost at least ``sigma`` times the average key cost.

        Compared in product form (``cost · K ≥ σ · total``) so a subnormal
        total cost cannot underflow the mean to 0 and declare every key hot.
        """
        if not costs:
            return []
        total = sum(costs.values())
        count = len(costs)
        return [key for key, cost in costs.items() if cost * count >= self.sigma * total]

    def _rebalance(self, costs: Dict[Key, float]) -> RebalanceResult:
        start = time.perf_counter()
        keys = list(costs)
        working: Dict[Key, int] = dict(zip(keys, self.assignment.assign_batch(keys)))
        loads = load_from_costs(costs, working.__getitem__, self.num_tasks)
        ceiling = load_ceiling(loads, self.theta_max)

        # Step 1: move explicitly routed keys back to their hash destination
        # whenever the receiving task has room.
        for key in list(self.assignment.routing_table.keys()):
            if key not in working:
                continue
            home = self.assignment.hash_destination(key)
            current = working[key]
            if home == current:
                continue
            if loads[home] + costs[key] <= ceiling + _EPS:
                loads[current] -= costs[key]
                loads[home] += costs[key]
                working[key] = home

        # Step 2: best-operation search over hot keys.  Evaluating one move or
        # swap needs the load spread with two tasks excluded; keeping the three
        # highest and three lowest loads of the round makes that O(1) instead
        # of a full O(N_D) pass per candidate pair.
        candidates = self._candidates(costs)
        operations = 0
        while operations < self.max_operations:
            if max_balance_indicator(loads) <= self.theta_max:
                break
            best_gain = 0.0
            best_op: Optional[Tuple[str, Key, Optional[Key], int, int]] = None
            by_load = sorted(loads.items(), key=lambda item: item[1])
            lowest3 = by_load[:3]
            highest3 = by_load[-3:]
            spread = by_load[-1][1] - by_load[0][1]

            def spread_excluding(task_x: int, task_y: int, val_x: float, val_y: float) -> float:
                """Spread after tasks x/y take loads val_x/val_y."""
                high = val_x if val_x >= val_y else val_y
                for task, load in reversed(highest3):
                    if task != task_x and task != task_y:
                        if load > high:
                            high = load
                        break
                low = val_x if val_x <= val_y else val_y
                for task, load in lowest3:
                    if task != task_x and task != task_y:
                        if load < low:
                            low = load
                        break
                return high - low

            # Moves: hot key from its task to any other task.
            for key in candidates:
                source = working[key]
                cost = costs[key]
                for target in range(self.num_tasks):
                    if target == source:
                        continue
                    new_src = loads[source] - cost
                    new_dst = loads[target] + cost
                    gain = spread - spread_excluding(source, target, new_src, new_dst)
                    if gain > best_gain + _EPS:
                        best_gain = gain
                        best_op = ("move", key, None, source, target)

            # Swaps: exchange two hot keys sitting on different tasks.
            for i, key_a in enumerate(candidates):
                for key_b in candidates[i + 1 :]:
                    task_a, task_b = working[key_a], working[key_b]
                    if task_a == task_b:
                        continue
                    diff = costs[key_a] - costs[key_b]
                    new_a = loads[task_a] - diff
                    new_b = loads[task_b] + diff
                    gain = spread - spread_excluding(task_a, task_b, new_a, new_b)
                    if gain > best_gain + _EPS:
                        best_gain = gain
                        best_op = ("swap", key_a, key_b, task_a, task_b)

            if best_op is None:
                break
            kind, key_a, key_b, task_a, task_b = best_op
            if kind == "move":
                loads[task_a] -= costs[key_a]
                loads[task_b] += costs[key_a]
                working[key_a] = task_b
            else:
                assert key_b is not None
                working[key_a], working[key_b] = task_b, task_a
                diff = costs[key_a] - costs[key_b]
                loads[task_a] -= diff
                loads[task_b] += diff
            operations += 1

        # Materialise the new assignment function and migration plan.
        new_table = RoutingTable()
        for key, task in self.assignment.routing_table.items():
            if key not in working:
                new_table.set(key, task, enforce_limit=False)
        for key, task in working.items():
            if task != self.assignment.hash_destination(key):
                new_table.set(key, task, enforce_limit=False)
        new_assignment = self.assignment.with_table(new_table)
        plan = build_migration_plan(
            self.assignment, new_assignment, working.keys(), self.stats, self.window
        )
        result = RebalanceResult(
            algorithm=self.name,
            assignment=new_assignment,
            routing_table=new_table,
            migration_plan=plan,
            loads=dict(loads),
            balanced=max(loads.values(), default=0.0) <= ceiling + _EPS,
            max_theta=max_balance_indicator(loads),
            migration_fraction=migration_cost_fraction(plan.keys, self.stats, self.window),
        )
        result.generation_time = time.perf_counter() - start
        return result
