"""Plain hash partitioning — Apache Storm's default fields grouping.

Every tuple with key ``k`` goes to ``h(k)``; the mapping never changes, so no
state is ever migrated, but the operator inherits whatever imbalance the key
distribution produces (the "Storm" curves of Figs. 13–16 and the subject of the
Fig. 7 skewness study).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.baselines.base import Partitioner
from repro.core.hashing import ConsistentHashRing, UniversalHash

__all__ = ["HashPartitioner"]

Key = Hashable


class HashPartitioner(Partitioner):
    """Static key hashing (optionally by consistent hashing).

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    seed:
        Hash seed.
    consistent:
        Use a consistent-hash ring instead of modulo hashing.  The paper uses
        consistent hashing as the base hash function; both are provided because
        the skewness behaviour (Fig. 7) is essentially identical.
    """

    name = "hash"
    cache_routes = True

    def __init__(self, num_tasks: int, seed: int = 0, consistent: bool = False) -> None:
        super().__init__(num_tasks)
        self.seed = int(seed)
        self.consistent = bool(consistent)
        self._rebuild()

    def _rebuild(self) -> None:
        if self.consistent:
            self._hash = ConsistentHashRing(range(self.num_tasks), seed=self.seed)
        else:
            self._hash = UniversalHash(self.num_tasks, seed=self.seed)

    def route(self, key: Key) -> int:
        return self._hash(key)

    def scale_out(self, new_num_tasks: int) -> None:
        old = self.num_tasks
        super().scale_out(new_num_tasks)
        if self.consistent and new_num_tasks > old:
            for task in range(old, new_num_tasks):
                self._hash.add_task(task)
        elif not self.consistent:
            self._hash = UniversalHash(self.num_tasks, seed=self.seed)

    def scale_in(self, new_num_tasks: int) -> None:
        old = self.num_tasks
        super().scale_in(new_num_tasks)
        if self.consistent:
            for task in range(new_num_tasks, old):
                self._hash.remove_task(task)
        else:
            self._hash = UniversalHash(self.num_tasks, seed=self.seed)

    @property
    def hash_function(self):
        """The underlying hash callable (shared with the mixed assignment)."""
        return self._hash
