"""DBGen-like TPC-H generator and the continuous-Q5 stream.

The paper generates a 1 GB TPC-H dataset with DBGen, "producing zipf skewness
on foreign keys with z = 0.8", and revises Q5 (local supplier volume) into a
continuous query over a sliding window.  This module provides:

* :func:`generate_tpch` / :class:`TPCHDataset` — small-scale synthetic versions
  of the tables Q5 touches (region, nation, supplier, customer, orders,
  lineitem), with Zipf-skewed foreign keys;
* :class:`TPCHStreamWorkload` — the per-interval stream of lineitem arrivals
  keyed by order key, with the periodic distribution change the Fig. 16
  experiment triggers every 15 minutes.

Only the columns Q5 needs are materialised; the point of the substrate is the
join/aggregation structure and the foreign-key skew, not TPC-H's full schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "TPCHDataset",
    "ForeignKeyLookup",
    "draw_lineitem_revenue",
    "generate_tpch",
    "TPCHStreamWorkload",
    "TPCHLineitemTrace",
]


class ForeignKeyLookup:
    """A picklable foreign-key mapping with hash-spread fallback.

    Carries *only* the mapping it needs — unlike a bound
    :class:`TPCHDataset` method, which would drag the whole dataset
    (lineitems included) into every worker process that pickles it.
    Unknown keys spread over ``modulus`` deterministically, matching the
    dataset's ``*_of_*`` helpers.
    """

    __slots__ = ("mapping", "modulus")

    def __init__(self, mapping: Dict[int, int], modulus: int) -> None:
        self.mapping = mapping
        self.modulus = max(1, int(modulus))

    def __call__(self, key: int) -> int:
        value = self.mapping.get(key)
        return value if value is not None else key % self.modulus

    def __getstate__(self):
        return (self.mapping, self.modulus)

    def __setstate__(self, state):
        self.mapping, self.modulus = state

#: The 5 TPC-H regions and 25 nations (name lists shortened to what Q5 needs).
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS_PER_REGION = 5


def _zipf_weights(size: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def draw_lineitem_revenue(rng: np.random.Generator, size: int) -> np.ndarray:
    """Lineitem revenue samples, ``extendedprice × (1 − discount)``.

    The DBGen-style price/discount ranges used by :func:`generate_tpch`,
    shared so synthetic streams price their tuples identically."""
    prices = rng.uniform(900.0, 105_000.0, size=size)
    discounts = rng.uniform(0.0, 0.1, size=size)
    return prices * (1.0 - discounts)


@dataclass
class TPCHDataset:
    """The slice of TPC-H that the continuous Q5 needs.

    Foreign keys are stored as dense integer arrays indexed by the referencing
    key, which keeps lookups O(1) for the stream topology's key mappers.
    """

    scale: float
    num_customers: int
    num_suppliers: int
    num_orders: int
    num_lineitems: int
    #: nation key -> region key
    nation_region: Dict[int, int] = field(default_factory=dict)
    #: customer key -> nation key
    customer_nation: Dict[int, int] = field(default_factory=dict)
    #: supplier key -> nation key
    supplier_nation: Dict[int, int] = field(default_factory=dict)
    #: order key -> customer key (zipf-skewed)
    order_customer: Dict[int, int] = field(default_factory=dict)
    #: lineitem id -> (order key, supplier key, extended price * (1 - discount))
    lineitems: List[Tuple[int, int, float]] = field(default_factory=list)

    # -- Q5 helpers -----------------------------------------------------------------

    def customer_of_order(self, order_key: int) -> int:
        """The customer that placed ``order_key`` (hash-spread for unknown keys)."""
        if order_key in self.order_customer:
            return self.order_customer[order_key]
        return order_key % max(1, self.num_customers)

    def nation_of_customer(self, customer_key: int) -> int:
        if customer_key in self.customer_nation:
            return self.customer_nation[customer_key]
        return customer_key % (len(_REGIONS) * _NATIONS_PER_REGION)

    def nation_of_supplier(self, supplier_key: int) -> int:
        if supplier_key in self.supplier_nation:
            return self.supplier_nation[supplier_key]
        return supplier_key % (len(_REGIONS) * _NATIONS_PER_REGION)

    def region_of_nation(self, nation_key: int) -> int:
        return self.nation_region.get(nation_key, nation_key % len(_REGIONS))

    def q5_reference_answer(self, region: int = 0) -> Dict[int, float]:
        """Batch (non-streaming) answer of Q5 restricted to ``region``.

        revenue per nation = Σ extendedprice·(1−discount) over lineitems whose
        order's customer and whose supplier share a nation in ``region``.
        Used by tests to validate the streaming topology's semantics.
        """
        revenue: Dict[int, float] = {}
        for order_key, supplier_key, price in self.lineitems:
            customer = self.customer_of_order(order_key)
            cust_nation = self.nation_of_customer(customer)
            supp_nation = self.nation_of_supplier(supplier_key)
            if cust_nation != supp_nation:
                continue
            if self.region_of_nation(cust_nation) != region:
                continue
            revenue[cust_nation] = revenue.get(cust_nation, 0.0) + price
        return revenue


def generate_tpch(
    scale: float = 0.01,
    *,
    fk_skew: float = 0.8,
    seed: int = 0,
) -> TPCHDataset:
    """Generate a synthetic TPC-H slice at ``scale`` (1.0 ≈ DBGen's 1 GB).

    Row counts follow TPC-H's ratios (150k customers, 10k suppliers, 1.5M
    orders and ~6M lineitems per scale factor); foreign keys from orders to
    customers and from lineitems to suppliers follow a Zipf distribution with
    exponent ``fk_skew`` — the skew the paper injects with z = 0.8.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if fk_skew < 0:
        raise ValueError("fk_skew must be non-negative")
    rng = np.random.default_rng(seed)
    num_customers = max(10, int(150_000 * scale))
    num_suppliers = max(5, int(10_000 * scale))
    num_orders = max(20, int(1_500_000 * scale))
    num_lineitems = max(40, int(6_000_000 * scale))
    num_nations = len(_REGIONS) * _NATIONS_PER_REGION

    dataset = TPCHDataset(
        scale=scale,
        num_customers=num_customers,
        num_suppliers=num_suppliers,
        num_orders=num_orders,
        num_lineitems=num_lineitems,
    )

    for nation in range(num_nations):
        dataset.nation_region[nation] = nation % len(_REGIONS)
    for customer in range(num_customers):
        dataset.customer_nation[customer] = int(rng.integers(0, num_nations))
    for supplier in range(num_suppliers):
        dataset.supplier_nation[supplier] = int(rng.integers(0, num_nations))

    customer_weights = _zipf_weights(num_customers, fk_skew)
    order_customers = rng.choice(num_customers, size=num_orders, p=customer_weights)
    for order, customer in enumerate(order_customers):
        dataset.order_customer[order] = int(customer)

    order_weights = _zipf_weights(num_orders, fk_skew)
    lineitem_orders = rng.choice(num_orders, size=num_lineitems, p=order_weights)
    supplier_weights = _zipf_weights(num_suppliers, fk_skew)
    lineitem_suppliers = rng.choice(num_suppliers, size=num_lineitems, p=supplier_weights)
    revenue = draw_lineitem_revenue(rng, num_lineitems)
    for order, supplier, amount in zip(lineitem_orders, lineitem_suppliers, revenue):
        dataset.lineitems.append((int(order), int(supplier), float(amount)))

    return dataset


class TPCHStreamWorkload:
    """Per-interval lineitem arrivals keyed by order key.

    The Fig. 16 experiment runs Q5 for one hour with a 5-minute window and a
    distribution change triggered every 15 minutes with ``f = 1``: the mapping
    from ranks to order keys is reshuffled among the hot orders, abruptly
    moving the heavy keys.

    Parameters
    ----------
    dataset:
        The TPC-H slice providing the order-key domain.
    tuples_per_interval:
        Lineitems arriving per interval.
    skew:
        Zipf skew of order popularity in the stream.
    change_every:
        Interval period of the triggered distribution change (``None`` = never).
    change_fraction:
        Fraction of the hot-key mass whose identity changes at each trigger
        (``f = 1`` in the paper corresponds to rotating the full hot set).
    intervals:
        Number of intervals (``None`` = unbounded).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        dataset: TPCHDataset,
        tuples_per_interval: int = 50_000,
        skew: float = 0.8,
        change_every: Optional[int] = 15,
        change_fraction: float = 1.0,
        intervals: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if tuples_per_interval < 0:
            raise ValueError("tuples_per_interval must be non-negative")
        if change_every is not None and change_every < 1:
            raise ValueError("change_every must be >= 1 or None")
        if not 0 <= change_fraction <= 1:
            raise ValueError("change_fraction must be in [0, 1]")
        self.dataset = dataset
        self.tuples_per_interval = int(tuples_per_interval)
        self.skew = float(skew)
        self.change_every = change_every
        self.change_fraction = float(change_fraction)
        self.intervals = intervals
        self.seed = int(seed)

    def __iter__(self) -> Iterator[Dict[int, float]]:
        rng = np.random.default_rng(self.seed)
        num_orders = self.dataset.num_orders
        weights = _zipf_weights(num_orders, self.skew)
        permutation = np.arange(num_orders)

        produced = 0
        while self.intervals is None or produced < self.intervals:
            if (
                self.change_every is not None
                and produced > 0
                and produced % self.change_every == 0
            ):
                hot = max(2, int(num_orders * 0.01))
                rotate = max(1, int(hot * self.change_fraction))
                # Move the hottest `rotate` orders to previously cold positions.
                cold_positions = rng.choice(
                    np.arange(hot, num_orders), size=rotate, replace=False
                )
                for hot_pos, cold_pos in zip(range(rotate), cold_positions):
                    permutation[[hot_pos, cold_pos]] = permutation[[cold_pos, hot_pos]]

            current = weights[np.argsort(permutation)]
            counts = rng.multinomial(self.tuples_per_interval, current / current.sum())
            yield {
                int(order): float(count)
                for order, count in enumerate(counts)
                if count > 0
            }
            produced += 1

    def take(self, intervals: int) -> List[Dict[int, float]]:
        """Materialise the first ``intervals`` snapshots."""
        result: List[Dict[int, float]] = []
        for snapshot in self:
            result.append(snapshot)
            if len(result) >= intervals:
                break
        return result


class TPCHLineitemTrace:
    """Replays the generated lineitem table as a per-interval tuple trace.

    Where :class:`TPCHStreamWorkload` *synthesises* per-interval key
    frequencies, the trace replays the concrete rows DBGen-style generation
    produced — ``(order key, revenue)`` tuples in arrival order, revenue
    being ``extendedprice × (1 − discount)`` — the open-loop "replayed
    trace" source of the runtime benchmarks.  The foreign-key Zipf skew of
    the generator (z = 0.8 in the paper) is therefore baked into the key
    stream.  A trace shorter than the requested volume wraps around.

    Parameters
    ----------
    dataset:
        The TPC-H slice whose ``lineitems`` are replayed.
    tuples_per_interval:
        Lineitems per interval.
    intervals:
        Number of intervals to materialise.
    """

    def __init__(
        self,
        dataset: TPCHDataset,
        tuples_per_interval: int = 50_000,
        intervals: int = 10,
    ) -> None:
        if tuples_per_interval <= 0:
            raise ValueError("tuples_per_interval must be positive")
        if intervals <= 0:
            raise ValueError("intervals must be positive")
        if not dataset.lineitems:
            raise ValueError("dataset has no lineitems to replay")
        self.dataset = dataset
        self.tuples_per_interval = int(tuples_per_interval)
        self.intervals = int(intervals)

    def take(self, intervals: Optional[int] = None) -> List[List[Tuple[int, float]]]:
        """Materialise ``intervals`` (default: all configured) tuple lists."""
        count = self.intervals if intervals is None else int(intervals)
        rows = self.dataset.lineitems
        trace: List[List[Tuple[int, float]]] = []
        cursor = 0
        for _ in range(count):
            interval: List[Tuple[int, float]] = []
            for _ in range(self.tuples_per_interval):
                order_key, _supplier, revenue = rows[cursor]
                interval.append((order_key, revenue))
                cursor = (cursor + 1) % len(rows)
            trace.append(interval)
        return trace
