"""Workload generators.

The evaluation uses four workloads; since the original datasets (a 5-day
microblog crawl, 3 days of stock-exchange records and TPC-H's dbgen output) are
not redistributable, each is replaced by a synthetic generator that reproduces
the characteristics the paper relies on:

* :mod:`repro.workloads.zipf` — the synthetic generator of Section V: tuples
  drawn from a Zipf distribution with skew ``z`` over a key domain of size
  ``K``, with per-interval distribution fluctuation controlled by ``f``
  (implemented, as in the paper, by swapping key frequencies between task
  assignments until the workload change reaches ``f``).
* :mod:`repro.workloads.social` — Social-feed surrogate: heavy-tailed word
  popularity with slow topic drift (the paper: "word frequency … changes
  slowly").
* :mod:`repro.workloads.stock` — Stock-exchange surrogate: a small key domain
  (1,036 stock ids) with abrupt regime-switching bursts on individual keys.
* :mod:`repro.workloads.tpch` — DBGen-like generator of the TPC-H tables with
  Zipf-skewed foreign keys, plus the order→customer→nation mappings the
  continuous Q5 topology needs.
"""

from repro.workloads.fluctuation import FluctuationController, apply_fluctuation
from repro.workloads.social import SocialFeedWorkload
from repro.workloads.stock import StockExchangeWorkload
from repro.workloads.tpch import TPCHDataset, TPCHStreamWorkload, generate_tpch
from repro.workloads.zipf import ZipfWorkload, zipf_frequencies

__all__ = [
    "FluctuationController",
    "SocialFeedWorkload",
    "StockExchangeWorkload",
    "TPCHDataset",
    "TPCHStreamWorkload",
    "ZipfWorkload",
    "apply_fluctuation",
    "generate_tpch",
    "zipf_frequencies",
]
