"""Short-term workload fluctuation (the ``f`` knob of the synthetic generator).

The paper's generator "keeps swapping frequencies between keys from different
task instances until the change on workload is significant enough, i.e.
``|L_i(d) − L_{i−1}(d)| / L̄ ≥ f``".  :func:`apply_fluctuation` reproduces that
procedure: frequencies of randomly chosen key pairs (that live on different
tasks under the reference assignment) are exchanged until the maximum relative
per-task load change reaches the requested rate.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

import numpy as np

__all__ = ["apply_fluctuation", "FluctuationController", "per_task_loads", "workload_change"]

Key = Hashable


def per_task_loads(
    frequencies: Dict[Key, float],
    task_of: Callable[[Key], int],
    num_tasks: int,
) -> Dict[int, float]:
    """Aggregate a key-frequency snapshot into per-task loads."""
    loads = {task: 0.0 for task in range(num_tasks)}
    for key, freq in frequencies.items():
        loads[task_of(key)] += freq
    return loads


def workload_change(
    before: Dict[int, float],
    after: Dict[int, float],
) -> float:
    """``max_d |L_i(d) − L_{i−1}(d)| / L̄`` — the paper's fluctuation measure.

    Evaluated as ``max |Δ| / total · N`` so a subnormal total load does not
    underflow the mean and zero out the measure (same family as the skewness
    fix in :mod:`repro.core.load`).
    """
    if not before:
        return 0.0
    total = sum(before.values())
    if total <= 0:
        return 0.0
    tasks = set(before) | set(after)
    change = max(abs(after.get(d, 0.0) - before.get(d, 0.0)) for d in tasks)
    return change / total * len(before)


def apply_fluctuation(
    frequencies: Dict[Key, float],
    *,
    fluctuation: float,
    task_of: Callable[[Key], int],
    num_tasks: int,
    rng: Optional[np.random.Generator] = None,
    max_swaps: int = 1_000_000,
) -> Dict[Key, float]:
    """Return a new snapshot whose per-task load differs from the input by ≥ ``f``.

    Key frequencies are swapped between keys assigned to *different* tasks (so
    the overall key-popularity distribution is unchanged) until the maximum
    relative per-task load change reaches ``fluctuation``.  ``max_swaps`` bounds
    the work for degenerate inputs (e.g. a single task).
    """
    if fluctuation < 0:
        raise ValueError("fluctuation must be non-negative")
    if num_tasks <= 0:
        raise ValueError("num_tasks must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    result = dict(frequencies)
    if fluctuation == 0 or len(result) < 2 or num_tasks < 2:
        return result

    before = per_task_loads(result, task_of, num_tasks)
    current = dict(before)
    mean = sum(before.values()) / len(before)
    if mean <= 0:
        return result

    # Concentrate the change on one randomly chosen target task: swapping its
    # coldest keys against hotter keys of the other tasks raises its load by
    # (hot − cold) per swap.  Each swap is sized to the *remaining* change still
    # needed, so the delivered fluctuation tracks ``f`` instead of overshooting
    # it (a small f must stay a small disturbance), and even f = 2.0 is reached
    # in O(K log K) work.
    from bisect import bisect_right

    target = int(rng.integers(0, num_tasks))
    inside = sorted(
        (key for key in result if task_of(key) == target), key=lambda k: result[k]
    )
    outside = sorted(
        (key for key in result if task_of(key) != target), key=lambda k: result[k]
    )
    outside_freqs = [result[key] for key in outside]
    used = set()
    swaps = 0
    for cold_key in inside:
        if swaps >= max_swaps:
            break
        needed = fluctuation * mean - abs(current[target] - before[target])
        if needed <= 0:
            break
        cold = result[cold_key]
        # Largest outside key whose swap gain stays within the needed change;
        # fall back to the smallest strictly hotter key when every candidate
        # overshoots (progress must still be made).
        idx = bisect_right(outside_freqs, cold + needed) - 1
        hot_key = None
        while idx >= 0:
            candidate = outside[idx]
            if candidate not in used and result[candidate] > cold:
                hot_key = candidate
                break
            idx -= 1
        if hot_key is None:
            idx = bisect_right(outside_freqs, cold)
            while idx < len(outside):
                candidate = outside[idx]
                if candidate not in used and result[candidate] > cold:
                    hot_key = candidate
                    break
                idx += 1
        if hot_key is None:
            break
        used.add(hot_key)
        hot = result[hot_key]
        result[cold_key], result[hot_key] = hot, cold
        other = task_of(hot_key)
        current[target] += hot - cold
        current[other] -= hot - cold
        swaps += 1
    return result


class FluctuationController:
    """Stateful helper producing a fluctuating sequence from a base snapshot.

    Keeps the previous snapshot so that successive calls measure the change
    against the *delivered* workload rather than the original one, matching how
    the generator tool is used in the experiments.
    """

    def __init__(
        self,
        fluctuation: float,
        task_of: Callable[[Key], int],
        num_tasks: int,
        seed: int = 0,
    ) -> None:
        if fluctuation < 0:
            raise ValueError("fluctuation must be non-negative")
        self.fluctuation = float(fluctuation)
        self.task_of = task_of
        self.num_tasks = int(num_tasks)
        self.rng = np.random.default_rng(seed)

    def next(self, frequencies: Dict[Key, float]) -> Dict[Key, float]:
        """Perturb ``frequencies`` by at least the configured fluctuation rate."""
        return apply_fluctuation(
            frequencies,
            fluctuation=self.fluctuation,
            task_of=self.task_of,
            num_tasks=self.num_tasks,
            rng=self.rng,
        )
