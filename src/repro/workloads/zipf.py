"""Synthetic Zipf workload (Section V, "Synthetic Data").

Tuples are drawn from a Zipf distribution with skew parameter ``z`` over an
integer key domain of size ``K``.  At the beginning of every interval the
generator perturbs the distribution until the per-task workload change reaches
the fluctuation rate ``f`` (``|L_i(d) − L_{i−1}(d)| / L̄ ≥ f``), exactly as the
paper describes — frequencies are *swapped* between keys that hash to different
tasks, so the total workload stays constant while its placement shifts.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional

import numpy as np

from repro.workloads.fluctuation import apply_fluctuation

__all__ = ["zipf_frequencies", "ZipfWorkload"]

Key = Hashable


def zipf_frequencies(
    num_keys: int,
    skew: float,
    total_tuples: int,
    rng: Optional[np.random.Generator] = None,
    *,
    exact: bool = False,
) -> Dict[int, float]:
    """Draw one interval's ``{key: count}`` snapshot from a Zipf distribution.

    Parameters
    ----------
    num_keys:
        Size of the key domain ``K`` (keys are ``0 .. K-1``).
    skew:
        Zipf exponent ``z`` (0 = uniform; the paper's default is 0.85).
    total_tuples:
        Number of tuples in the interval.
    rng:
        Numpy random generator; a fixed default seed is used when omitted.
    exact:
        When True the expected (deterministic) counts are returned instead of a
        multinomial draw — useful for property tests.
    """
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    if total_tuples < 0:
        raise ValueError("total_tuples must be non-negative")
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    if exact:
        counts = weights * total_tuples
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        counts = rng.multinomial(total_tuples, weights).astype(np.float64)
    return {int(key): float(count) for key, count in enumerate(counts) if count > 0}


class ZipfWorkload:
    """Iterator of per-interval key-frequency snapshots.

    Parameters
    ----------
    num_keys:
        Key domain size ``K``.
    skew:
        Zipf skew ``z``.
    tuples_per_interval:
        Interval volume.
    fluctuation:
        Fluctuation rate ``f``: the minimum relative per-task workload change
        between consecutive intervals (0 = static distribution).
    num_tasks / task_of:
        The fluctuation definition is relative to a task assignment; either
        pass the number of tasks (keys are assigned by ``hash``-less modulo for
        the purpose of measuring the change, matching the generator the paper
        built on) or an explicit ``task_of(key)`` callable (e.g. the same hash
        the system under test uses).
    intervals:
        Number of intervals to generate (``None`` = unbounded).
    seed:
        RNG seed.
    sampled:
        Draw multinomial samples (True) or use exact expected counts (False).
    """

    def __init__(
        self,
        num_keys: int = 100_000,
        skew: float = 0.85,
        tuples_per_interval: int = 100_000,
        fluctuation: float = 1.0,
        num_tasks: int = 10,
        task_of: Optional[Callable[[int], int]] = None,
        intervals: Optional[int] = None,
        seed: int = 0,
        sampled: bool = True,
    ) -> None:
        if num_keys <= 0 or tuples_per_interval < 0:
            raise ValueError("num_keys must be positive and tuples_per_interval >= 0")
        if fluctuation < 0:
            raise ValueError("fluctuation must be non-negative")
        if num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        self.num_keys = int(num_keys)
        self.skew = float(skew)
        self.tuples_per_interval = int(tuples_per_interval)
        self.fluctuation = float(fluctuation)
        self.num_tasks = int(num_tasks)
        self.task_of = task_of if task_of is not None else (lambda key: key % self.num_tasks)
        self.intervals = intervals
        self.seed = int(seed)
        self.sampled = bool(sampled)

    def __iter__(self) -> Iterator[Dict[int, float]]:
        rng = np.random.default_rng(self.seed)
        # The base popularity ranking; fluctuation permutes which key holds
        # which rank, so the marginal distribution stays Zipf(z).
        base = zipf_frequencies(
            self.num_keys,
            self.skew,
            self.tuples_per_interval,
            rng,
            exact=not self.sampled,
        )
        current = dict(base)
        produced = 0
        while self.intervals is None or produced < self.intervals:
            yield dict(current)
            produced += 1
            if self.intervals is not None and produced >= self.intervals:
                break
            if self.fluctuation > 0:
                current = apply_fluctuation(
                    current,
                    fluctuation=self.fluctuation,
                    task_of=self.task_of,
                    num_tasks=self.num_tasks,
                    rng=rng,
                )
            if self.sampled:
                # Re-draw the sampling noise on top of the (possibly permuted)
                # expected frequencies.
                keys = list(current.keys())
                weights = np.array([current[key] for key in keys], dtype=np.float64)
                total = weights.sum()
                if total > 0:
                    draws = rng.multinomial(self.tuples_per_interval, weights / total)
                    current = {
                        key: float(count)
                        for key, count in zip(keys, draws)
                        if count > 0
                    }

    def take(self, intervals: int) -> List[Dict[int, float]]:
        """Materialise the first ``intervals`` snapshots as a list."""
        result: List[Dict[int, float]] = []
        for snapshot in self:
            result.append(snapshot)
            if len(result) >= intervals:
                break
        return result
