"""Stock-exchange surrogate workload.

The paper's Stock dataset contains 3 days of exchange records: ~6 million
tuples over 1,036 distinct stock ids, fed into a windowed self-join.  Its
defining property is that it "contains more abrupt and unexpected bursts on
certain keys".

The surrogate keeps the small key domain and models trading volume per stock as
a base heavy-tailed level plus regime-switching bursts: every interval each
stock has a small probability of entering a burst during which its volume is
multiplied by a large factor for a few intervals — abrupt, key-local change.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

__all__ = ["StockExchangeWorkload"]


class StockExchangeWorkload:
    """Bursty per-stock trade volume stream.

    Parameters
    ----------
    num_stocks:
        Number of stock ids (the paper's dataset has 1,036).
    tuples_per_interval:
        Trades per interval.
    skew:
        Zipf exponent of the base volume distribution over stocks.
    burst_probability:
        Per-interval probability that a given stock starts a burst.
    burst_magnitude:
        Volume multiplier while a stock is bursting.
    burst_duration:
        Number of intervals a burst lasts.
    intervals:
        Number of intervals to generate (``None`` = unbounded).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        num_stocks: int = 1036,
        tuples_per_interval: int = 100_000,
        skew: float = 1.0,
        burst_probability: float = 0.01,
        burst_magnitude: float = 20.0,
        burst_duration: int = 2,
        intervals: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if num_stocks <= 0 or tuples_per_interval < 0:
            raise ValueError("num_stocks must be positive and tuples_per_interval >= 0")
        if not 0 <= burst_probability <= 1:
            raise ValueError("burst_probability must be in [0, 1]")
        if burst_magnitude < 1:
            raise ValueError("burst_magnitude must be >= 1")
        if burst_duration < 1:
            raise ValueError("burst_duration must be >= 1")
        self.num_stocks = int(num_stocks)
        self.tuples_per_interval = int(tuples_per_interval)
        self.skew = float(skew)
        self.burst_probability = float(burst_probability)
        self.burst_magnitude = float(burst_magnitude)
        self.burst_duration = int(burst_duration)
        self.intervals = intervals
        self.seed = int(seed)

    def __iter__(self) -> Iterator[Dict[str, float]]:
        rng = np.random.default_rng(self.seed)
        ranks = np.arange(1, self.num_stocks + 1, dtype=np.float64)
        base = ranks ** (-self.skew)
        rng.shuffle(base)  # volume is not ordered by stock id
        burst_remaining = np.zeros(self.num_stocks, dtype=np.int64)

        produced = 0
        while self.intervals is None or produced < self.intervals:
            new_bursts = rng.random(self.num_stocks) < self.burst_probability
            burst_remaining = np.where(
                new_bursts, self.burst_duration, np.maximum(burst_remaining - 1, 0)
            )
            multipliers = np.where(burst_remaining > 0, self.burst_magnitude, 1.0)
            weights = base * multipliers
            weights = weights / weights.sum()
            counts = rng.multinomial(self.tuples_per_interval, weights)
            yield {
                f"STK{stock:04d}": float(count)
                for stock, count in enumerate(counts)
                if count > 0
            }
            produced += 1

    def take(self, intervals: int) -> List[Dict[str, float]]:
        """Materialise the first ``intervals`` snapshots."""
        result: List[Dict[str, float]] = []
        for snapshot in self:
            result.append(snapshot)
            if len(result) >= intervals:
                break
        return result
