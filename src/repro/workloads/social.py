"""Social-feed surrogate workload.

The paper's Social dataset is a 5-day crawl of a microblog service: ~5 million
feeds whose words (≈180,000 distinct topic words) are the keys of the word
count topology.  Its defining property for the evaluation is that "the word
frequency in Social data usually changes slowly".

The surrogate draws word frequencies from a heavy-tailed (Zipf) popularity
distribution and lets the *ranking* of the words drift slowly across intervals:
every interval a small fraction of adjacent ranks swap, and occasionally a
"trending" word rises sharply over several intervals — slow evolution with the
occasional emerging topic, but no abrupt global change.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

__all__ = ["SocialFeedWorkload"]


class SocialFeedWorkload:
    """Slowly drifting heavy-tailed word-frequency stream.

    Parameters
    ----------
    num_words:
        Key-domain size (distinct topic words); default scaled down from the
        paper's 180k so that laptop-scale runs stay fast.
    tuples_per_interval:
        Words observed per interval (one interval = one day in the paper; the
        simulator's interval length is orthogonal).
    skew:
        Zipf exponent of word popularity.
    drift_rate:
        Fraction of adjacent rank pairs swapped each interval (slow drift).
    trend_probability:
        Probability that a new trending word starts rising in a given interval.
    trend_boost:
        Multiplicative popularity boost a trending word gains per interval
        while the trend lasts.
    trend_duration:
        Number of intervals a trend lasts.
    intervals:
        Number of intervals to generate (``None`` = unbounded).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        num_words: int = 20_000,
        tuples_per_interval: int = 100_000,
        skew: float = 0.9,
        drift_rate: float = 0.02,
        trend_probability: float = 0.3,
        trend_boost: float = 2.0,
        trend_duration: int = 3,
        intervals: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if num_words <= 0 or tuples_per_interval < 0:
            raise ValueError("num_words must be positive and tuples_per_interval >= 0")
        if not 0 <= drift_rate <= 1:
            raise ValueError("drift_rate must be in [0, 1]")
        if not 0 <= trend_probability <= 1:
            raise ValueError("trend_probability must be in [0, 1]")
        if trend_boost < 1:
            raise ValueError("trend_boost must be >= 1")
        if trend_duration < 1:
            raise ValueError("trend_duration must be >= 1")
        self.num_words = int(num_words)
        self.tuples_per_interval = int(tuples_per_interval)
        self.skew = float(skew)
        self.drift_rate = float(drift_rate)
        self.trend_probability = float(trend_probability)
        self.trend_boost = float(trend_boost)
        self.trend_duration = int(trend_duration)
        self.intervals = intervals
        self.seed = int(seed)

    def __iter__(self) -> Iterator[Dict[str, float]]:
        rng = np.random.default_rng(self.seed)
        ranks = np.arange(1, self.num_words + 1, dtype=np.float64)
        weights = ranks ** (-self.skew)
        # word index -> current rank position (permutation drifts slowly)
        permutation = np.arange(self.num_words)
        trends: List[List[int]] = []  # [word, remaining intervals]

        produced = 0
        while self.intervals is None or produced < self.intervals:
            # Slow drift: swap a small fraction of adjacent rank pairs.
            num_swaps = int(self.drift_rate * self.num_words)
            if num_swaps:
                positions = rng.integers(0, self.num_words - 1, size=num_swaps)
                for pos in positions:
                    permutation[[pos, pos + 1]] = permutation[[pos + 1, pos]]

            # Occasionally start a trend on a previously unpopular word.
            if rng.random() < self.trend_probability:
                word = int(rng.integers(self.num_words // 2, self.num_words))
                trends.append([word, self.trend_duration])

            boosts = np.ones(self.num_words)
            still_active: List[List[int]] = []
            for word, remaining in trends:
                age = self.trend_duration - remaining + 1
                boosts[word] *= self.trend_boost ** age
                if remaining > 1:
                    still_active.append([word, remaining - 1])
            trends = still_active

            current = weights[np.argsort(permutation)] * boosts
            current = current / current.sum()
            counts = rng.multinomial(self.tuples_per_interval, current)
            yield {
                f"word{word}": float(count)
                for word, count in enumerate(counts)
                if count > 0
            }
            produced += 1

    def take(self, intervals: int) -> List[Dict[str, float]]:
        """Materialise the first ``intervals`` snapshots."""
        result: List[Dict[str, float]] = []
        for snapshot in self:
            result.append(snapshot)
            if len(result) >= intervals:
                break
        return result
