"""The pause → migrate → ack → resume protocol of Fig. 5.

When the controller decides on a new assignment function, the affected keys
(``Δ(F, F′)``) are handled as follows:

1. the controller broadcasts the new assignment, the affected-key set and a
   *Pause* signal to the upstream tasks, which stop sending (but locally
   buffer) tuples of the affected keys (steps 3–4);
2. the downstream tasks move the windowed state of the affected keys to their
   new owners and acknowledge (steps 5–6);
3. the controller sends *Resume*; buffered tuples are released (step 7).

Tuples of *unaffected* keys flow normally throughout.  The protocol therefore
costs (a) a transfer time proportional to the migrated state volume and (b) a
processing pause — limited to the affected keys — on the sending and receiving
tasks.  :class:`MigrationProtocol` executes the state hand-off on the in-memory
:class:`~repro.engine.operator.Task` objects and reports both costs so the
simulator can charge them to the next interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set

from repro.core.migration import MigrationPlan
from repro.engine.operator import Task

__all__ = ["MigrationConfig", "MigrationReport", "MigrationProtocol"]

Key = Hashable


@dataclass(frozen=True)
class MigrationConfig:
    """Cost parameters of the migration path.

    Attributes
    ----------
    bytes_per_state_unit:
        Serialised size of one abstract memory unit of state.
    bandwidth_bytes_per_second:
        Network bandwidth available for state transfer between two tasks.
    pause_overhead_seconds:
        Fixed protocol overhead (pause/resume round trips, acknowledgements).
    parallel_transfers:
        Whether transfers between disjoint task pairs proceed in parallel
        (duration = slowest pair) or sequentially (duration = sum).
    """

    bytes_per_state_unit: float = 100.0
    bandwidth_bytes_per_second: float = 50e6
    pause_overhead_seconds: float = 0.05
    parallel_transfers: bool = True

    def __post_init__(self) -> None:
        if self.bytes_per_state_unit < 0:
            raise ValueError("bytes_per_state_unit must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth_bytes_per_second must be positive")
        if self.pause_overhead_seconds < 0:
            raise ValueError("pause_overhead_seconds must be non-negative")


@dataclass
class MigrationReport:
    """Outcome of executing one migration plan."""

    moved_keys: int = 0
    moved_state: float = 0.0
    duration_seconds: float = 0.0
    paused_keys: Set[Key] = field(default_factory=set)
    #: Fraction of the next interval each affected task spends on the hand-off.
    pause_fraction_by_task: Dict[int, float] = field(default_factory=dict)

    @property
    def affected_tasks(self) -> Set[int]:
        return set(self.pause_fraction_by_task)


class MigrationProtocol:
    """Executes migration plans against in-memory task instances."""

    def __init__(self, config: Optional[MigrationConfig] = None) -> None:
        self.config = config if config is not None else MigrationConfig()

    def execute(
        self,
        plan: MigrationPlan,
        tasks: Mapping[int, Task],
        *,
        interval_seconds: float = 10.0,
    ) -> MigrationReport:
        """Move the state of every key in ``plan`` between the given tasks.

        Returns a report with the transfer volume, the wall-clock duration of
        the hand-off and the per-task pause fractions (relative to
        ``interval_seconds``) that the simulator charges to the next interval.
        """
        report = MigrationReport()
        if not plan:
            return report

        per_pair_bytes: Dict[tuple, float] = {}
        per_task_bytes: Dict[int, float] = {}
        for move in plan:
            source = tasks.get(move.source)
            target = tasks.get(move.target)
            if source is None or target is None:
                raise KeyError(
                    f"migration plan references unknown task(s) "
                    f"{move.source}->{move.target}"
                )
            snapshot = source.extract_key(move.key)
            actual_size = sum(size for _, _, size in snapshot)
            # Prefer the actual state held by the task; fall back to the
            # planner's estimate for keys whose state lives off-simulation.
            size = actual_size if actual_size > 0 else move.state_size
            target.install_key(move.key, snapshot)
            report.moved_keys += 1
            report.moved_state += size
            report.paused_keys.add(move.key)
            volume = size * self.config.bytes_per_state_unit
            per_pair_bytes[(move.source, move.target)] = (
                per_pair_bytes.get((move.source, move.target), 0.0) + volume
            )
            per_task_bytes[move.source] = per_task_bytes.get(move.source, 0.0) + volume
            per_task_bytes[move.target] = per_task_bytes.get(move.target, 0.0) + volume

        bandwidth = self.config.bandwidth_bytes_per_second
        if self.config.parallel_transfers:
            transfer_seconds = max(
                (volume / bandwidth for volume in per_pair_bytes.values()), default=0.0
            )
        else:
            transfer_seconds = sum(per_pair_bytes.values()) / bandwidth
        report.duration_seconds = transfer_seconds + self.config.pause_overhead_seconds

        for task_id, volume in per_task_bytes.items():
            busy = volume / bandwidth + self.config.pause_overhead_seconds
            report.pause_fraction_by_task[task_id] = min(1.0, busy / interval_seconds)
        return report
