"""The tuple data model.

A stream is a sequence of key-value pairs ``τ = (k, v)`` stamped with the
interval (and optionally a fine-grained timestamp) they belong to.  The paper's
operators only require the key for routing and the value for state updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

__all__ = ["StreamTuple"]


@dataclass(frozen=True)
class StreamTuple:
    """One key-value tuple flowing between operators.

    Attributes
    ----------
    key:
        Routing key (word, stock id, join key, …).
    value:
        Payload carried by the tuple; opaque to the engine.
    interval:
        Index of the time interval the tuple was emitted in.
    timestamp:
        Optional fine-grained emission time in seconds (event-level runs).
    stream:
        Name of the logical stream the tuple belongs to (used by multi-input
        operators such as joins; defaults to ``"default"``).
    """

    key: Hashable
    value: Any = None
    interval: int = 0
    timestamp: Optional[float] = None
    stream: str = "default"

    def with_stream(self, stream: str) -> "StreamTuple":
        """Return a copy tagged as belonging to ``stream``."""
        return StreamTuple(
            key=self.key,
            value=self.value,
            interval=self.interval,
            timestamp=self.timestamp,
            stream=stream,
        )

    def rekey(self, key: Hashable) -> "StreamTuple":
        """Return a copy routed by a different ``key`` (downstream re-keying)."""
        return StreamTuple(
            key=key,
            value=self.value,
            interval=self.interval,
            timestamp=self.timestamp,
            stream=self.stream,
        )
