"""Interval-driven simulators.

The evaluation's system-level metrics (throughput, latency, recovery time after
scale-out, behaviour under distribution change) are produced by running a
topology against a workload source with a *fluid* per-interval model:

* the workload source yields, for every interval, a ``{key: tuple count}``
  snapshot for the spout;
* each stage routes the snapshot through its partitioner in a single
  :meth:`~repro.baselines.base.Partitioner.route_snapshot` call (the batch
  fast path: key→task results are memoised across intervals until the
  partitioner rebalances), offers the resulting per-task load to the task
  executors (single-server fluid queues), and feeds the processed share —
  scaled by the stage's selectivity and re-keyed — to the next stage;
* at the end of the interval the stage's partitioner sees the operator-level
  statistics and may rebalance; the migration protocol is executed on the
  in-memory task state and its pause cost is charged to the next interval;
* per-interval metrics are collected for every stage and for the pipeline as a
  whole.

:class:`OperatorSimulator` is the single-stage convenience wrapper used by most
figure drivers; :class:`PipelineSimulator` handles multi-operator chains such
as the TPC-H Q5 topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.baselines.base import Partitioner
from repro.core.load import max_balance_indicator, max_skewness
from repro.engine.backpressure import ShedLedger
from repro.core.statistics import IntervalStats
from repro.engine.executor import ExecutorConfig, TaskExecutor
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.migration_protocol import MigrationConfig, MigrationProtocol
from repro.engine.operator import OperatorLogic, Task
from repro.engine.topology import PipelineStage, Topology

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "OperatorSimulator",
    "PipelineSimulator",
]

Key = Hashable
WorkloadSnapshot = Mapping[Key, float]


@dataclass(frozen=True)
class SimulationConfig:
    """Global knobs of the fluid simulation.

    Attributes
    ----------
    interval_seconds:
        Wall-clock length of one interval (the paper uses 10 s).
    capacity_factor:
        Per-task capacity expressed as a multiple of the fair-share load
        observed during calibration.  Values slightly above 1 put the operator
        at the CPU saturation point, as in the paper's setup.
    fixed_capacity:
        Absolute per-task capacity in cost units per interval; overrides the
        calibration when set.
    service_time_ms:
        Base per-tuple service time.
    max_backlog_intervals:
        Queue bound per task, in multiples of its per-interval capacity
        (Storm's max-pending behaviour); work beyond it is shed.
    migration:
        Cost parameters of the migration protocol.
    """

    interval_seconds: float = 10.0
    capacity_factor: float = 1.15
    fixed_capacity: Optional[float] = None
    service_time_ms: float = 1.0
    max_backlog_intervals: float = 2.0
    migration: MigrationConfig = field(default_factory=MigrationConfig)

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        if self.fixed_capacity is not None and self.fixed_capacity <= 0:
            raise ValueError("fixed_capacity must be positive")
        if self.max_backlog_intervals < 0:
            raise ValueError("max_backlog_intervals must be non-negative")


@dataclass
class SimulationResult:
    """Output of one simulated run."""

    pipeline: MetricsCollector
    stages: Dict[str, MetricsCollector] = field(default_factory=dict)

    def stage(self, name: str) -> MetricsCollector:
        return self.stages[name]

    @property
    def primary_stage(self) -> MetricsCollector:
        """Metrics of the first stage (the operator under study in most runs)."""
        return next(iter(self.stages.values()))


class _StageRuntime:
    """Mutable runtime state of one pipeline stage."""

    def __init__(self, stage: PipelineStage, config: SimulationConfig) -> None:
        self.stage = stage
        self.config = config
        self.capacity: Optional[float] = config.fixed_capacity
        self.tasks: Dict[int, Task] = {
            task_id: Task(task_id, stage.logic) for task_id in range(stage.parallelism)
        }
        self.executors: Dict[int, TaskExecutor] = {}
        self.protocol = MigrationProtocol(config.migration)
        self.pending_pause: Dict[int, float] = {}
        #: Tuples admitted but not yet processed, per task and key (the tuple-
        #: level view of the executor's cost backlog) — they are forwarded
        #: downstream in the interval they are eventually served.
        self.pending_freqs: Dict[int, Dict[Key, float]] = {}
        #: Cumulative shed tuples per task (observable backpressure drops).
        self.shed_ledger = ShedLedger()
        self.metrics = MetricsCollector(label=stage.name)
        if self.capacity is not None:
            self._build_executors()

    # -- capacity management ------------------------------------------------------

    def _build_executors(self) -> None:
        assert self.capacity is not None
        executor_config = ExecutorConfig(
            capacity=self.capacity,
            interval_seconds=self.config.interval_seconds,
            service_time_ms=self.config.service_time_ms,
            max_backlog=self.capacity * self.config.max_backlog_intervals,
        )
        for task_id in self.tasks:
            if task_id not in self.executors:
                self.executors[task_id] = TaskExecutor(executor_config)

    def _calibrate(self, total_cost: float) -> None:
        """Fix the per-task capacity from the first interval's offered load."""
        factor = (
            self.stage.capacity_factor
            if self.stage.capacity_factor is not None
            else self.config.capacity_factor
        )
        fair_share = total_cost / max(1, self.stage.parallelism)
        self.capacity = max(fair_share * factor, 1e-9)
        self._build_executors()

    def calibrate_from(self, in_freqs: WorkloadSnapshot) -> Dict[Key, float]:
        """Fix the stage capacity from an *unthrottled* input estimate.

        Used by the pipeline simulator before the first interval so that a
        downstream stage is not permanently under-provisioned just because its
        upstream happened to be throttled during the very first interval.
        Returns the stage's full (no capacity limit) output snapshot so the
        next stage can calibrate in turn.
        """
        logic = self.stage.logic
        total_cost = sum(count * logic.tuple_cost(key) for key, count in in_freqs.items())
        if self.capacity is None:
            self._calibrate(total_cost)
        out: Dict[Key, float] = {}
        if self.stage.selectivity > 0:
            for key, count in in_freqs.items():
                out_key = self.stage.map_key(key)
                out[out_key] = out.get(out_key, 0.0) + count * self.stage.selectivity
        return out

    def scale_out(self, new_parallelism: int) -> None:
        """Grow the stage; new tasks reuse the calibrated per-task capacity."""
        self.stage.partitioner.scale_out(new_parallelism)
        for task_id in range(new_parallelism):
            if task_id not in self.tasks:
                self.tasks[task_id] = Task(task_id, self.stage.logic)
        if self.capacity is not None:
            self._build_executors()

    # -- one interval ---------------------------------------------------------------

    def run_interval(
        self, interval: int, in_freqs: WorkloadSnapshot
    ) -> Tuple[IntervalMetrics, Dict[Key, float]]:
        logic = self.stage.logic
        partitioner = self.stage.partitioner
        num_tasks = partitioner.num_tasks

        # Per-key unit cost / state delta, evaluated once per snapshot and
        # shared by every consumer below (routing, executors, statistics).
        tuple_cost = logic.tuple_cost
        state_delta = logic.state_delta
        cost_of: Dict[Key, float] = {key: tuple_cost(key) for key in in_freqs}
        delta_of: Dict[Key, float] = {key: state_delta(key) for key in in_freqs}

        total_cost = sum(count * cost_of[key] for key, count in in_freqs.items())
        if self.capacity is None:
            self._calibrate(total_cost)
        assert self.capacity is not None

        # Route the whole snapshot through the partitioner's batch fast path.
        per_task_freqs = partitioner.route_snapshot(in_freqs, num_tasks)

        offered_cost: Dict[int, float] = {}
        offered_tuples: Dict[int, float] = {}
        for task_id in range(num_tasks):
            freqs = per_task_freqs.get(task_id, {})
            offered_cost[task_id] = sum(
                count * cost_of[key] for key, count in freqs.items()
            )
            offered_tuples[task_id] = sum(freqs.values())

        # Execute the interval on every task.
        processed_tuples = 0.0
        processed_cost = 0.0
        shed_tuples = 0.0
        shed_by_task: Dict[int, float] = {}
        backlog_total = 0.0
        latency_weighted = 0.0
        #: Per-task tuples served this interval, by key (drives the output stream).
        served_freqs: Dict[int, Dict[Key, float]] = {}
        for task_id in range(num_tasks):
            task = self.tasks[task_id]
            executor = self.executors[task_id]
            start_backlog = executor.backlog
            freqs = per_task_freqs.get(task_id, {})
            task.ingest_counts(interval, freqs, cost_of=cost_of, delta_of=delta_of)

            # Merge the new arrivals into the task's pending tuple mix.
            pending = self.pending_freqs.setdefault(task_id, {})
            for key, count in freqs.items():
                pending[key] = pending.get(key, 0.0) + count

            outcome = executor.run_interval(
                offered_cost[task_id],
                paused_fraction=self.pending_pause.get(task_id, 0.0),
            )
            queue_cost = start_backlog + offered_cost[task_id]
            served_fraction = (
                1.0 if queue_cost <= 0 else min(1.0, outcome.processed / queue_cost)
            )
            shed_fraction = (
                0.0 if queue_cost <= 0 else min(1.0 - served_fraction, outcome.shed / queue_cost)
            )

            task_served: Dict[Key, float] = {}
            task_processed_tuples = 0.0
            task_shed_tuples = 0.0
            for key in list(pending.keys()):
                waiting = pending[key]
                served = waiting * served_fraction
                shed = waiting * shed_fraction
                if served > 0:
                    task_served[key] = served
                    task_processed_tuples += served
                task_shed_tuples += shed
                remaining = waiting - served - shed
                if remaining > 1e-9:
                    pending[key] = remaining
                else:
                    del pending[key]
            served_freqs[task_id] = task_served

            processed_tuples += task_processed_tuples
            processed_cost += outcome.processed
            shed_tuples += task_shed_tuples
            if task_shed_tuples > 0:
                shed_by_task[task_id] = task_shed_tuples
                self.shed_ledger.record(task_id, task_shed_tuples)
            backlog_total += outcome.backlog
            latency_weighted += outcome.latency_ms * max(task_processed_tuples, 0.0)
            task.end_interval()
        self.pending_pause = {}

        mean_latency = (
            latency_weighted / processed_tuples if processed_tuples > 0 else 0.0
        )

        # Split-key strategies pay the partial-result merge overhead.
        if not partitioner.supports_stateful() and logic.stateful:
            partials = getattr(partitioner, "total_partials", lambda: 0)()
            merge_cost = logic.merge_overhead(int(partials))
            merge_period = getattr(partitioner, "merge_period_ms", 0.0)
            if processed_tuples > 0:
                mean_latency += merge_period / 2.0
                mean_latency += merge_cost / processed_tuples * self.config.service_time_ms
            # Merging consumes downstream capacity: account for it as a small
            # throughput tax proportional to the number of partials.
            if self.capacity and merge_cost > 0:
                tax = min(0.5, merge_cost / (self.capacity * num_tasks))
                processed_tuples *= 1.0 - tax

        # Operator-level statistics for the rebalancing strategies.
        op_stats = IntervalStats(interval)
        op_stats.record_bulk(
            (key, count, count * cost_of[key], count * delta_of[key])
            for key, count in in_freqs.items()
            if count > 0
        )

        rebalance = partitioner.on_interval_end(op_stats)
        migration_seconds = 0.0
        migrated_state = 0.0
        migration_fraction = 0.0
        generation_time = 0.0
        table_size = 0
        if rebalance is not None:
            report = self.protocol.execute(
                rebalance.migration_plan,
                self.tasks,
                interval_seconds=self.config.interval_seconds,
            )
            self.pending_pause = dict(report.pause_fraction_by_task)
            migration_seconds = report.duration_seconds
            migrated_state = report.moved_state
            migration_fraction = rebalance.migration_fraction
            generation_time = rebalance.generation_time
            table_size = rebalance.table_size
        elif hasattr(partitioner, "routing_table_size"):
            table_size = partitioner.routing_table_size

        record = IntervalMetrics(
            interval=interval,
            offered_tuples=sum(offered_tuples.values()),
            processed_tuples=processed_tuples,
            shed_tuples=shed_tuples,
            throughput=processed_tuples / self.config.interval_seconds,
            latency_ms=mean_latency,
            skewness=max_skewness(offered_cost),
            max_theta=max_balance_indicator(offered_cost),
            backlog=backlog_total,
            migrated_state=migrated_state,
            migration_fraction=migration_fraction,
            migration_seconds=migration_seconds,
            generation_time=generation_time,
            routing_table_size=table_size,
            rebalanced=rebalance is not None,
            num_tasks=num_tasks,
            per_task_load=dict(offered_cost),
            per_task_shed=shed_by_task,
        )
        self.metrics.record(record)

        # Build the stream handed to the next stage: the tuples actually served
        # this interval (including drained backlog), scaled by the stage
        # selectivity and re-keyed.
        out_freqs: Dict[Key, float] = {}
        if self.stage.selectivity > 0:
            for freqs in served_freqs.values():
                for key, count in freqs.items():
                    out_key = self.stage.map_key(key)
                    out_freqs[out_key] = (
                        out_freqs.get(out_key, 0.0) + count * self.stage.selectivity
                    )
        return record, out_freqs


class PipelineSimulator:
    """Runs a multi-stage topology over an interval workload."""

    def __init__(self, topology: Topology, config: Optional[SimulationConfig] = None) -> None:
        self.topology = topology
        self.config = config if config is not None else SimulationConfig()
        self.runtimes: List[_StageRuntime] = [
            _StageRuntime(stage, self.config) for stage in topology.stages
        ]

    def run(
        self,
        workload: Iterable[WorkloadSnapshot],
        *,
        scale_out_schedule: Optional[Mapping[int, Mapping[str, int]]] = None,
    ) -> SimulationResult:
        """Simulate the topology over every snapshot produced by ``workload``.

        ``scale_out_schedule`` maps an interval index to ``{stage_name: new
        parallelism}``; the change takes effect at the *start* of that interval
        (the moment the paper adds a worker thread in Fig. 15).
        """
        pipeline_metrics = MetricsCollector(label=self.topology.name)
        calibrated = False
        for interval, snapshot in enumerate(workload):
            if not calibrated:
                estimate: Dict[Key, float] = dict(snapshot)
                for runtime in self.runtimes:
                    estimate = runtime.calibrate_from(estimate)
                calibrated = True
            if scale_out_schedule and interval in scale_out_schedule:
                for stage_name, parallelism in scale_out_schedule[interval].items():
                    self._runtime(stage_name).scale_out(parallelism)

            stage_records: List[IntervalMetrics] = []
            current: Dict[Key, float] = dict(snapshot)
            for runtime in self.runtimes:
                record, current = runtime.run_interval(interval, current)
                stage_records.append(record)

            pipeline_metrics.record(self._pipeline_record(interval, stage_records))

        stages = {runtime.stage.name: runtime.metrics for runtime in self.runtimes}
        return SimulationResult(pipeline=pipeline_metrics, stages=stages)

    def _runtime(self, stage_name: str) -> _StageRuntime:
        for runtime in self.runtimes:
            if runtime.stage.name == stage_name:
                return runtime
        raise KeyError(f"no stage named {stage_name!r}")

    def _pipeline_record(
        self, interval: int, stage_records: List[IntervalMetrics]
    ) -> IntervalMetrics:
        last = stage_records[-1]
        first = stage_records[0]
        return IntervalMetrics(
            interval=interval,
            offered_tuples=first.offered_tuples,
            processed_tuples=last.processed_tuples,
            shed_tuples=sum(record.shed_tuples for record in stage_records),
            throughput=last.throughput,
            latency_ms=sum(record.latency_ms for record in stage_records),
            skewness=max(record.skewness for record in stage_records),
            max_theta=max(record.max_theta for record in stage_records),
            backlog=sum(record.backlog for record in stage_records),
            migrated_state=sum(record.migrated_state for record in stage_records),
            migration_fraction=max(
                record.migration_fraction for record in stage_records
            ),
            migration_seconds=sum(record.migration_seconds for record in stage_records),
            generation_time=sum(record.generation_time for record in stage_records),
            routing_table_size=sum(
                record.routing_table_size for record in stage_records
            ),
            rebalanced=any(record.rebalanced for record in stage_records),
            num_tasks=sum(record.num_tasks for record in stage_records),
        )


class OperatorSimulator:
    """Single-operator convenience wrapper (spout → one downstream operator)."""

    def __init__(
        self,
        partitioner: Partitioner,
        logic: OperatorLogic,
        config: Optional[SimulationConfig] = None,
        *,
        name: str = "operator",
    ) -> None:
        stage = PipelineStage(name=name, logic=logic, partitioner=partitioner)
        self.topology = Topology(name=name, stages=[stage])
        self.simulator = PipelineSimulator(self.topology, config)

    def run(
        self,
        workload: Iterable[WorkloadSnapshot],
        *,
        scale_out_at: Optional[Mapping[int, int]] = None,
    ) -> MetricsCollector:
        """Run and return the operator's metrics collector.

        ``scale_out_at`` maps interval → new parallelism for the operator.
        """
        schedule = None
        if scale_out_at:
            stage_name = self.topology.stages[0].name
            schedule = {
                interval: {stage_name: parallelism}
                for interval, parallelism in scale_out_at.items()
            }
        result = self.simulator.run(workload, scale_out_schedule=schedule)
        return result.primary_stage

    @property
    def tasks(self) -> Dict[int, Task]:
        """The operator's task instances (for state inspection in tests)."""
        return self.simulator.runtimes[0].tasks
