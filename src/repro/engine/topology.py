"""Topology description: spouts, stages and the builder.

The paper's workloads are pipelines of logical operators (word count:
spout → counter; stock self-join: spout → join; TPC-H Q5: a chain of windowed
joins and an aggregation).  A :class:`Topology` is an ordered list of
:class:`PipelineStage` objects; each stage couples an
:class:`~repro.engine.operator.OperatorLogic` with the
:class:`~repro.baselines.base.Partitioner` that routes tuples into its tasks,
plus the selectivity and re-keying function that describe the stream it emits
to the next stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.baselines.base import Partitioner
from repro.engine.operator import OperatorLogic

__all__ = ["PipelineStage", "Topology", "TopologyBuilder"]

Key = Hashable
KeyMapper = Callable[[Key], Key]


@dataclass
class PipelineStage:
    """One logical operator inside a topology.

    Attributes
    ----------
    name:
        Stage name (unique within the topology).
    logic:
        The operator behaviour (cost model, state model, processing function).
    partitioner:
        Routing strategy feeding this stage's tasks.
    selectivity:
        Output tuples emitted per processed input tuple (e.g. a filter has
        selectivity < 1, a join usually > 1 on matching keys).
    key_mapper:
        Optional function re-keying output tuples for the next stage (e.g. the
        TPC-H Q5 chain re-keys order tuples by customer key).
    capacity_factor:
        Per-stage override of the simulator's capacity factor (``None`` uses
        the simulation default).
    """

    name: str
    logic: OperatorLogic
    partitioner: Partitioner
    selectivity: float = 1.0
    key_mapper: Optional[KeyMapper] = None
    capacity_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.selectivity < 0:
            raise ValueError("selectivity must be non-negative")
        if not self.name:
            raise ValueError("stage name must be non-empty")

    @property
    def parallelism(self) -> int:
        """Number of task instances of the stage."""
        return self.partitioner.num_tasks

    def map_key(self, key: Key) -> Key:
        """Apply the re-keying function (identity when none is configured)."""
        if self.key_mapper is None:
            return key
        return self.key_mapper(key)


@dataclass
class Topology:
    """An ordered pipeline of stages fed by a single spout."""

    name: str
    stages: List[PipelineStage] = field(default_factory=list)
    spout_parallelism: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topology name must be non-empty")
        if self.spout_parallelism <= 0:
            raise ValueError("spout_parallelism must be positive")
        names = [stage.name for stage in self.stages]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate stage names in topology: {names}")

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def stage(self, name: str) -> PipelineStage:
        """Look a stage up by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in topology {self.name!r}")

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]


class TopologyBuilder:
    """Fluent builder mirroring Storm's ``TopologyBuilder`` API."""

    def __init__(self, name: str, spout_parallelism: int = 10) -> None:
        self._name = name
        self._spout_parallelism = spout_parallelism
        self._stages: List[PipelineStage] = []

    def add_stage(
        self,
        name: str,
        logic: OperatorLogic,
        partitioner: Partitioner,
        *,
        selectivity: float = 1.0,
        key_mapper: Optional[KeyMapper] = None,
        capacity_factor: Optional[float] = None,
    ) -> "TopologyBuilder":
        """Append a stage to the pipeline and return the builder (chainable)."""
        self._stages.append(
            PipelineStage(
                name=name,
                logic=logic,
                partitioner=partitioner,
                selectivity=selectivity,
                key_mapper=key_mapper,
                capacity_factor=capacity_factor,
            )
        )
        return self

    def build(self) -> Topology:
        """Materialise the topology (at least one stage is required)."""
        if not self._stages:
            raise ValueError("a topology needs at least one stage")
        return Topology(
            name=self._name,
            stages=list(self._stages),
            spout_parallelism=self._spout_parallelism,
        )
