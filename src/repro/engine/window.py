"""Sliding windows over time intervals.

Stateful operators in the paper keep state for the last ``w`` intervals only:
"the task instance erases the state from time interval ``T_{i−w}`` after
finishing the computation on all tuples in time interval ``T_i``".
:class:`SlidingWindow` implements exactly that retention policy for arbitrary
per-interval payloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["SlidingWindow"]

T = TypeVar("T")


class SlidingWindow(Generic[T]):
    """Keeps one payload per interval for the most recent ``size`` intervals."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self.size = int(size)
        self._slots: "OrderedDict[int, T]" = OrderedDict()

    def append(self, interval: int, payload: T) -> List[int]:
        """Store ``payload`` for ``interval``; return the intervals evicted.

        Intervals must be appended in non-decreasing order; re-appending the
        current interval replaces its payload.
        """
        return [interval for interval, _ in self.append_evict(interval, payload)]

    def append_evict(self, interval: int, payload: T) -> List[Tuple[int, T]]:
        """Like :meth:`append` but returns the evicted ``(interval, payload)``
        pairs, letting callers (e.g. the keyed state's incremental size
        accounting) see what fell out of the window without a second lookup."""
        if self._slots:
            newest = next(reversed(self._slots))
            if interval < newest:
                raise ValueError(
                    f"intervals must be non-decreasing: got {interval} after {newest}"
                )
        self._slots[interval] = payload
        self._slots.move_to_end(interval)
        evicted: List[Tuple[int, T]] = []
        while len(self._slots) > self.size:
            evicted.append(self._slots.popitem(last=False))
        return evicted

    def get(self, interval: int) -> Optional[T]:
        """Payload stored for ``interval`` (``None`` when expired or unknown)."""
        return self._slots.get(interval)

    def oldest_interval(self) -> Optional[int]:
        """Oldest retained interval index (``None`` when empty)."""
        if not self._slots:
            return None
        return next(iter(self._slots))

    def intervals(self) -> Tuple[int, ...]:
        """Retained interval indices, oldest first."""
        return tuple(self._slots.keys())

    def payloads(self) -> List[T]:
        """Retained payloads, oldest first."""
        return list(self._slots.values())

    def items(self) -> Iterator[Tuple[int, T]]:
        return iter(self._slots.items())

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, interval: int) -> bool:
        return interval in self._slots

    def clear(self) -> None:
        self._slots.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlidingWindow(size={self.size}, retained={len(self._slots)})"
