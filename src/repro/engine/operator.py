"""Logical operators and their task instances.

An :class:`OperatorLogic` describes *what* an operator does with a tuple: the
CPU cost of processing it, how much windowed state it adds for the tuple's key,
and (for the event-level API) the concrete processing function.  A
:class:`Task` is one parallel instance of the operator: it owns a
:class:`~repro.engine.state.KeyedState`, applies the logic to the tuples routed
to it, and records the per-key measurements that the rebalance controller
consumes at the end of every interval.
"""

from __future__ import annotations

from abc import ABC
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.statistics import IntervalStats
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple

__all__ = ["BatchCost", "OperatorLogic", "Task", "TaskMetrics"]

Key = Hashable

#: A whole batch's processing cost: either one scalar (the shared per-tuple
#: cost — every constant/affine cost model) or an array of per-tuple costs
#: aligned with the batch's keys.
BatchCost = Union[float, np.ndarray]


class OperatorLogic(ABC):
    """Behavioural description of a logical operator.

    Sub-classes override the cost/state models and, when event-level execution
    is wanted, :meth:`process`.  The defaults describe a stateless map-like
    operator with unit cost.
    """

    #: Operator name (topology display / metrics).
    name: str = "operator"
    #: Whether the operator keeps per-key state (and therefore needs key-based
    #: routing and state migration).
    stateful: bool = False
    #: Number of intervals of state retained per key.
    window: int = 1

    # -- fluid model ---------------------------------------------------------------

    def tuple_cost(self, key: Key, value: Any = None) -> float:
        """CPU cost units consumed by one tuple with ``key``."""
        return 1.0

    def state_delta(self, key: Key, value: Any = None) -> float:
        """Memory units of state added by one tuple with ``key``."""
        return 1.0 if self.stateful else 0.0

    def batch_cost(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        """Processing cost of a whole batch of tuples (router/worker hot path).

        Returns either a **scalar** — the shared per-tuple cost when every
        tuple of the batch costs the same, which is true of every constant or
        affine cost model in the repo (word count, windowed aggregate, the
        TPC-H joins) — or an ndarray of per-tuple costs aligned with
        ``keys``.  Callers multiply a scalar by per-destination tuple counts
        (no per-tuple work at all) and ``np.bincount``-reduce an array.

        The default falls back to one :meth:`tuple_cost` call per tuple, so
        any operator with a genuinely key/value-dependent cost stays correct
        without overriding anything.
        """
        if values is None:
            iterator = (self.tuple_cost(key) for key in keys)
        else:
            iterator = (
                self.tuple_cost(key, value) for key, value in zip(keys, values)
            )
        return np.fromiter(iterator, dtype=np.float64, count=len(keys))

    def batch_state_delta(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        """State added by a whole batch of tuples (same shape as batch_cost).

        Scalar when every tuple adds the same state (all shipped operators);
        the default falls back to one :meth:`state_delta` call per tuple —
        value included — so value-dependent state models stay exact.
        """
        if values is None:
            iterator = (self.state_delta(key) for key in keys)
        else:
            iterator = (
                self.state_delta(key, value) for key, value in zip(keys, values)
            )
        return np.fromiter(iterator, dtype=np.float64, count=len(keys))

    # -- event-level model ------------------------------------------------------------

    def process(
        self,
        tup: StreamTuple,
        state: KeyedState,
        task_id: int,
    ) -> List[StreamTuple]:
        """Process one tuple against the task-local ``state``.

        Returns the tuples emitted downstream.  The default implementation
        forwards the tuple unchanged and, for stateful operators, accumulates
        ``state_delta`` units of state for the key.
        """
        if self.stateful:
            state.accumulate(tup.key, tup.interval, self.state_delta(tup.key, tup.value))
        return [tup]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        """Process a whole batch; returns the emissions columnar.

        Semantically identical to calling :meth:`process` once per tuple (in
        order) and flattening the emitted tuples into parallel
        ``(out_keys, out_values)`` lists — which is exactly what this default
        does, so every operator is batch-callable.  Hot operators override it
        to skip the per-tuple :class:`StreamTuple` boxing, the kwargs dict
        and the output-list allocation of the scalar path.
        """
        out_keys: List[Key] = []
        out_values: List[Any] = []
        process = self.process
        for key, value in zip(keys, values):
            for tup in process(
                StreamTuple(key=key, value=value, interval=interval), state, task_id
            ):
                out_keys.append(tup.key)
                out_values.append(tup.value)
        return out_keys, out_values

    #: Whether the operator participates in the split-key execution mode:
    #: its emissions are *partial* aggregates that a downstream merge stage
    #: recombines per original key via :meth:`merge`.
    mergeable: bool = False

    def merge(self, key: Key, partials: Sequence[Any]) -> Any:
        """Combine split-key partial aggregates of ``key`` into one value.

        The merge-stage contract of the PKG execution mode (paper Fig. 2):
        an upstream operator fans a hot key's tuples across replicas, each
        replica emits a partial result, and the merge stage — fed by one or
        more upstream branches — calls this with every partial collected for
        ``key``.  Must be associative in the partials (replicas and branches
        deliver in arbitrary order) so that merging any grouping of the
        partials yields the same value.

        Only meaningful when :attr:`mergeable` is True; key-contiguous
        operators have nothing to merge.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not mergeable: it emits final values, "
            f"not split-key partials"
        )

    def merge_overhead(self, distinct_partials: int) -> float:
        """Extra per-interval cost of merging split-key partial results.

        Only non-zero for operators that support the PKG execution mode; the
        default (key-contiguous operators) is zero.
        """
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, stateful={self.stateful})"


@dataclass
class TaskMetrics:
    """Running counters of one task instance."""

    tuples_processed: int = 0
    cost_processed: float = 0.0
    state_installed: float = 0.0
    state_evicted: float = 0.0
    migrations_in: int = 0
    migrations_out: int = 0


class Task:
    """One parallel instance of a logical operator."""

    def __init__(self, task_id: int, logic: OperatorLogic) -> None:
        if task_id < 0:
            raise ValueError("task_id must be non-negative")
        self.task_id = int(task_id)
        self.logic = logic
        self.state = KeyedState(window=max(1, logic.window))
        self.metrics = TaskMetrics()
        self._interval_stats: Optional[IntervalStats] = None
        self._current_interval: Optional[int] = None

    # -- processing -------------------------------------------------------------------

    def begin_interval(self, interval: int) -> None:
        """Open measurement for ``interval`` (called by the simulator)."""
        self._current_interval = interval
        self._interval_stats = IntervalStats(interval)

    def process(self, tup: StreamTuple) -> List[StreamTuple]:
        """Event-level processing of a single tuple."""
        if self._interval_stats is None:
            self.begin_interval(tup.interval)
        cost = self.logic.tuple_cost(tup.key, tup.value)
        delta = self.logic.state_delta(tup.key, tup.value)
        outputs = self.logic.process(tup, self.state, self.task_id)
        self.metrics.tuples_processed += 1
        self.metrics.cost_processed += cost
        self.metrics.state_installed += delta
        assert self._interval_stats is not None
        self._interval_stats.record(tup.key, frequency=1.0, cost=cost, memory=delta)
        return outputs

    def process_batch(
        self, keys: Sequence[Key], values: Sequence[Any], interval: int
    ) -> Tuple[List[Key], List[Any]]:
        """Event-level processing of a whole batch (runtime worker hot path).

        The batch sibling of :meth:`process`: the operator logic runs once
        per tuple (through :meth:`OperatorLogic.process_batch`, which hot
        operators vectorise), but the metrics counters and the per-key
        interval statistics are updated **once per batch** — a
        :class:`~collections.Counter` over the keys plus the operator's
        :meth:`~OperatorLogic.batch_cost` / :meth:`~OperatorLogic.
        batch_state_delta`, instead of per-tuple dict updates.  Both batch
        models default to exact per-tuple evaluation (value included) and
        are evaluated **before** the processing mutates the windowed state,
        matching the scalar path's ordering (a cost model that reads its own
        accumulated state still sees pre-batch rather than pre-tuple state —
        chunk granularity is the documented resolution of the batch path).
        """
        if self._interval_stats is None:
            self.begin_interval(interval)
        logic = self.logic
        count = len(keys)
        if count:
            costs = logic.batch_cost(keys, values)
            deltas = logic.batch_state_delta(keys, values)
        outputs = logic.process_batch(keys, values, interval, self.state, self.task_id)
        if count:
            freqs = Counter(keys)
            entries: List[Tuple[Key, float, float, float]] = []
            total_cost = 0.0
            total_delta = 0.0
            if np.ndim(costs) == 0 and np.ndim(deltas) == 0:
                unit_cost = float(costs)
                unit_delta = float(deltas)
                total_cost = unit_cost * count
                total_delta = unit_delta * count
                for key, freq in freqs.items():
                    entries.append(
                        (key, float(freq), unit_cost * freq, unit_delta * freq)
                    )
            else:
                cost_seq = (
                    costs.tolist() if np.ndim(costs) else [float(costs)] * count
                )
                delta_seq = (
                    deltas.tolist() if np.ndim(deltas) else [float(deltas)] * count
                )
                cost_of: Dict[Key, float] = {}
                delta_of: Dict[Key, float] = {}
                for key, cost, delta in zip(keys, cost_seq, delta_seq):
                    cost_of[key] = cost_of.get(key, 0.0) + cost
                    delta_of[key] = delta_of.get(key, 0.0) + delta
                    total_cost += cost
                    total_delta += delta
                entries.extend(
                    (key, float(freq), cost_of[key], delta_of[key])
                    for key, freq in freqs.items()
                )
            assert self._interval_stats is not None
            self._interval_stats.record_bulk(entries)
            self.metrics.tuples_processed += count
            self.metrics.cost_processed += total_cost
            self.metrics.state_installed += total_delta
        return outputs

    def ingest_counts(
        self,
        interval: int,
        frequencies: Dict[Key, float],
        cost_of: Optional[Dict[Key, float]] = None,
        delta_of: Optional[Dict[Key, float]] = None,
    ) -> None:
        """Fluid-model ingestion: account for ``frequencies`` without running
        the event-level logic (used by the interval simulator for speed).

        ``cost_of``/``delta_of`` optionally carry per-key unit cost and state
        delta precomputed by the caller (the simulator evaluates them once per
        snapshot and shares the maps across all tasks of the stage).
        """
        if self._interval_stats is None or self._current_interval != interval:
            self.begin_interval(interval)
        assert self._interval_stats is not None
        logic = self.logic
        stateful = logic.stateful
        state = self.state
        entries = []
        tuples = 0
        total_cost = 0.0
        total_delta = 0.0
        for key, freq in frequencies.items():
            unit_cost = cost_of[key] if cost_of is not None else logic.tuple_cost(key)
            unit_delta = delta_of[key] if delta_of is not None else logic.state_delta(key)
            cost = unit_cost * freq
            delta = unit_delta * freq
            entries.append((key, freq, cost, delta))
            if stateful and delta > 0:
                state.accumulate(key, interval, delta)
            tuples += int(freq)
            total_cost += cost
            total_delta += delta
        self._interval_stats.record_bulk(entries)
        self.metrics.tuples_processed += tuples
        self.metrics.cost_processed += total_cost
        self.metrics.state_installed += total_delta

    @property
    def has_open_interval(self) -> bool:
        """True when tuples were measured since the last :meth:`end_interval`."""
        return self._interval_stats is not None

    def end_interval(self, interval: Optional[int] = None) -> IntervalStats:
        """Close the current interval and return its measurements (step 1).

        ``interval`` overrides the expiry horizon (default: the interval the
        measurement opened on).  The process runtime passes the marker's
        interval explicitly: in a pipelined topology the task may already
        have processed tuples of a later interval from a fast upstream
        producer, and expiring at that watermark would drop window state one
        interval early.
        """
        if self._interval_stats is None:
            raise RuntimeError("end_interval called before begin_interval")
        stats = self._interval_stats
        self._interval_stats = None
        horizon = interval if interval is not None else self._current_interval
        if self.logic.stateful and horizon is not None:
            before = self.state.total_size()
            self.state.expire(horizon)
            self.metrics.state_evicted += before - self.state.total_size()
        return stats

    # -- migration ------------------------------------------------------------------------

    def extract_key(self, key: Key):
        """Hand over the windowed state of ``key`` (source side of a move)."""
        self.metrics.migrations_out += 1
        return self.state.extract(key)

    def snapshot_key(self, key: Key):
        """Copy the windowed state of ``key`` without giving it up.

        Checkpointing path: unlike :meth:`extract_key` the key stays owned
        by (and served on) this task, and no migration is counted.
        """
        return self.state.snapshot(key)

    def install_key(self, key: Key, snapshot) -> None:
        """Receive the windowed state of ``key`` (target side of a move)."""
        self.metrics.migrations_in += 1
        self.state.install(key, snapshot)

    @property
    def state_size(self) -> float:
        """Total windowed state currently held by the task."""
        return self.state.total_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(id={self.task_id}, logic={self.logic.name!r}, keys={len(self.state)})"
