"""Keyed, windowed operator state.

Each task of a stateful operator owns a :class:`KeyedState`: for every active
key it keeps one payload per retained interval (the ``w``-interval window of
the paper) plus a size estimate in abstract "memory units" — the quantity the
migration cost model is expressed in.  When a key is migrated, its entire
windowed state is extracted on the source task and installed on the target
task (steps 5–6 of Fig. 5).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.engine.window import SlidingWindow

__all__ = ["KeyedState", "KeyStateSnapshot"]

Key = Hashable

#: The serialised form of one key's windowed state, as shipped during migration:
#: a list of ``(interval, payload, size)`` triples.
KeyStateSnapshot = List[Tuple[int, Any, float]]


class KeyedState:
    """Per-task store of windowed per-key state."""

    def __init__(self, window: int = 1) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._per_key: Dict[Key, SlidingWindow[Tuple[Any, float]]] = {}
        #: Running total of all retained sizes, so :meth:`total_size` is O(1)
        #: instead of a full scan per interval.
        self._total_size = 0.0

    # -- updates -----------------------------------------------------------------

    def update(
        self,
        key: Key,
        interval: int,
        payload: Any,
        size: float,
    ) -> None:
        """Replace the state of ``key`` for ``interval`` with ``payload``.

        ``size`` is the memory footprint of the payload in abstract units.
        """
        if size < 0:
            raise ValueError("state size must be non-negative")
        window = self._per_key.get(key)
        if window is None:
            window = SlidingWindow(self.window)
            self._per_key[key] = window
        existing = window.get(interval)
        replaced_size = existing[1] if existing is not None else 0.0
        self._store(window, interval, payload, float(size), replaced_size)

    def _store(
        self,
        window: SlidingWindow,
        interval: int,
        payload: Any,
        size: float,
        replaced_size: float,
    ) -> None:
        """Write one ``(payload, size)`` slot and keep ``_total_size`` exact.

        ``replaced_size`` is the size previously stored for ``interval`` (0.0
        when the slot is new); capacity-evicted slots are subtracted too.
        """
        evicted = window.append_evict(interval, (payload, size))
        self._total_size += size - replaced_size
        for _, (_, evicted_size) in evicted:
            self._total_size -= evicted_size

    def accumulate(
        self,
        key: Key,
        interval: int,
        delta_size: float,
        payload_update=None,
    ) -> Any:
        """Grow the state of ``key`` in ``interval`` by ``delta_size``.

        ``payload_update`` is an optional callable ``old_payload -> new_payload``
        (``old_payload`` is ``None`` the first time); when omitted, the payload
        is a plain counter of accumulated size.  Returns the new payload.
        """
        window = self._per_key.get(key)
        existing = window.get(interval) if window is not None else None
        old_payload, old_size = existing if existing is not None else (None, 0.0)
        if payload_update is not None:
            new_payload = payload_update(old_payload)
        else:
            new_payload = (old_payload or 0) + delta_size
        new_size = old_size + delta_size
        if new_size < 0:
            raise ValueError("state size must be non-negative")
        if window is None:
            window = SlidingWindow(self.window)
            self._per_key[key] = window
        self._store(window, interval, new_payload, new_size, old_size)
        return new_payload

    def expire(self, newest_interval: int) -> None:
        """Drop state older than ``newest_interval − window + 1`` and empty keys."""
        cutoff = newest_interval - self.window + 1
        stale_keys: List[Key] = []
        for key, window in self._per_key.items():
            oldest = window.oldest_interval()
            if oldest is None or oldest >= cutoff:
                # Nothing stale for this key — the common case, since a key
                # touched this interval was already trimmed by the window's
                # capacity eviction.
                continue
            rebuilt: SlidingWindow[Tuple[Any, float]] = SlidingWindow(self.window)
            for interval, payload in window.items():
                if interval >= cutoff:
                    rebuilt.append(interval, payload)
                else:
                    self._total_size -= payload[1]
            if len(rebuilt):
                self._per_key[key] = rebuilt
            else:
                stale_keys.append(key)
        for key in stale_keys:
            del self._per_key[key]
        if not self._per_key:
            # Re-anchor the running total so an empty state reports exactly
            # 0.0 even after float drift at extreme size magnitudes.
            self._total_size = 0.0

    # -- queries --------------------------------------------------------------------

    def keys(self) -> Iterable[Key]:
        return self._per_key.keys()

    def __contains__(self, key: Key) -> bool:
        return key in self._per_key

    def __len__(self) -> int:
        return len(self._per_key)

    def payloads(self, key: Key) -> List[Any]:
        """All retained payloads of ``key``, oldest interval first."""
        window = self._per_key.get(key)
        if window is None:
            return []
        return [payload for payload, _ in window.payloads()]

    def latest_payload(self, key: Key) -> Optional[Any]:
        """Most recent payload of ``key`` (``None`` when the key is unknown)."""
        payloads = self.payloads(key)
        return payloads[-1] if payloads else None

    def key_size(self, key: Key) -> float:
        """Total windowed state size of ``key`` (``S(k, w)``)."""
        window = self._per_key.get(key)
        if window is None:
            return 0.0
        return sum(size for _, size in window.payloads())

    def total_size(self) -> float:
        """Total state held by this task (tracked incrementally; O(1)).

        The running total carries ordinary float summation error relative to a
        fresh recomputation when sizes span many orders of magnitude; it is
        re-anchored to exactly 0.0 whenever the state empties.
        """
        return self._total_size

    def size_map(self) -> Dict[Key, float]:
        """``{key: S(k, w)}`` for every key with state on this task."""
        return {key: self.key_size(key) for key in self._per_key}

    # -- migration ---------------------------------------------------------------------

    def snapshot(self, key: Key) -> KeyStateSnapshot:
        """Copy the full windowed state of ``key`` without removing it.

        The non-destructive twin of :meth:`extract`, used by checkpointing:
        the returned snapshot has exactly the shipped-state shape, but the
        key keeps serving tuples on this task.  Payloads are shared by
        reference; the caller serialises them before the state mutates again
        (the worker loop ships the snapshot before touching the next batch).
        """
        window = self._per_key.get(key)
        if window is None:
            return []
        return [
            (interval, payload, size)
            for interval, (payload, size) in window.items()
        ]

    def extract(self, key: Key) -> KeyStateSnapshot:
        """Remove and return the full windowed state of ``key``.

        Returns an empty snapshot when the key holds no state (migrating a
        stateless key is a no-op).
        """
        window = self._per_key.pop(key, None)
        if window is None:
            return []
        snapshot = [
            (interval, payload, size)
            for interval, (payload, size) in window.items()
        ]
        for _, _, size in snapshot:
            self._total_size -= size
        if not self._per_key:
            self._total_size = 0.0
        return snapshot

    def install(self, key: Key, snapshot: KeyStateSnapshot) -> None:
        """Install a previously extracted snapshot for ``key``.

        Installing over existing state merges interval-wise (the incoming
        snapshot wins on conflicts), which matches the at-most-once hand-off of
        the pause/resume protocol.
        """
        for interval, payload, size in snapshot:
            self.update(key, interval, payload, size)

    def clear(self) -> None:
        self._per_key.clear()
        self._total_size = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedState(window={self.window}, keys={len(self._per_key)})"
