"""Built-in strategy declarations for the :mod:`repro.core.strategy` registry.

One :class:`~repro.core.strategy.StrategySpec` per evaluation label: the
static/baseline partitioners, the paper's mixed-routing controller variants
(one per core rebalancing algorithm) and the compact-representation
controller.  Importing this module populates the registry; the accessors in
:mod:`repro.core.strategy` do so lazily.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import (
    DKGPartitioner,
    HashPartitioner,
    PartialKeyGrouping,
    Partitioner,
    ReadjPartitioner,
    ShufflePartitioner,
)
from repro.core.controller import ControllerConfig
from repro.core.criteria import DEFAULT_BETA
from repro.core.strategy import register_strategy
from repro.engine.routing import MixedRoutingPartitioner

__all__: list = []


@register_strategy(
    "storm",
    tunables=("seed",),
    description="static universal hashing (Storm's default field grouping)",
    theta_sensitive=False,
)
def _build_storm(num_tasks: int, *, seed: int = 0) -> Partitioner:
    return HashPartitioner(num_tasks, seed=seed)


@register_strategy(
    "ideal",
    description="shuffle grouping; the key-oblivious upper bound of Fig. 13",
    theta_sensitive=False,
)
def _build_ideal(num_tasks: int) -> Partitioner:
    return ShufflePartitioner(num_tasks)


@register_strategy(
    "pkg",
    tunables=("seed",),
    description="Partial Key Grouping (two-choice key splitting)",
    theta_sensitive=False,
)
def _build_pkg(num_tasks: int, *, seed: int = 0) -> Partitioner:
    return PartialKeyGrouping(num_tasks, seed=seed)


@register_strategy(
    "readj",
    tunables=("theta_max", "readj_sigma", "window", "seed"),
    description="Readj baseline (pairwise load re-adjustment)",
    rebalancing=True,
)
def _build_readj(
    num_tasks: int,
    *,
    theta_max: float = 0.08,
    readj_sigma: float = 2.0,
    window: int = 1,
    seed: int = 0,
) -> Partitioner:
    return ReadjPartitioner(
        num_tasks, theta_max=theta_max, sigma=readj_sigma, window=window, seed=seed
    )


@register_strategy(
    "dkg",
    tunables=("theta_max", "window", "seed"),
    description="DKG baseline (distribution-aware key grouping)",
    rebalancing=True,
)
def _build_dkg(
    num_tasks: int, *, theta_max: float = 0.08, window: int = 1, seed: int = 0
) -> Partitioner:
    return DKGPartitioner(num_tasks, theta_max=theta_max, window=window, seed=seed)


def _controller_builder(algorithm: str):
    def build(
        num_tasks: int,
        *,
        theta_max: float = 0.08,
        max_table_size: Optional[int] = None,
        beta: float = DEFAULT_BETA,
        window: int = 1,
        seed: int = 0,
    ) -> Partitioner:
        config = ControllerConfig(
            theta_max=theta_max,
            max_table_size=max_table_size,
            beta=beta,
            window=window,
            algorithm=algorithm,
        )
        return MixedRoutingPartitioner(num_tasks, config, seed=seed)

    return build


_CONTROLLER_DESCRIPTIONS = {
    "mixed": "the paper's Mixed algorithm behind the mixed-routing controller",
    "mintable": "MinTable (smallest routing table) controller variant",
    "minmig": "MinMig (no cleaning, minimum migration) controller variant",
    "mixedbf": "brute-force Mixed (exhaustive cleaning trials) controller variant",
    "simple": "single-criterion simple rebalancer controller variant",
}

for _algorithm, _description in _CONTROLLER_DESCRIPTIONS.items():
    register_strategy(
        _algorithm,
        tunables=("theta_max", "max_table_size", "beta", "window", "seed"),
        description=_description,
        core_algorithm=_algorithm,
        rebalancing=True,
    )(_controller_builder(_algorithm))


@register_strategy(
    "compact",
    tunables=(
        "theta_max",
        "max_table_size",
        "beta",
        "window",
        "seed",
        "discretization_degree",
    ),
    description="Mixed planned over the compact 6-dimensional representation",
    rebalancing=True,
)
def _build_compact(
    num_tasks: int,
    *,
    theta_max: float = 0.08,
    max_table_size: Optional[int] = None,
    beta: float = DEFAULT_BETA,
    window: int = 1,
    seed: int = 0,
    discretization_degree: Optional[int] = 8,
) -> Partitioner:
    config = ControllerConfig(
        theta_max=theta_max,
        max_table_size=max_table_size,
        beta=beta,
        window=window,
        use_compact=True,
        discretization_degree=discretization_degree,
    )
    return MixedRoutingPartitioner(num_tasks, config, seed=seed)
