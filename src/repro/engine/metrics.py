"""Metric collection for simulated runs.

The evaluation reports, per strategy and per experiment: throughput (tuples per
second), average processing latency (ms), workload skewness, migration cost
(fraction of operator state moved) and plan generation time.
:class:`MetricsCollector` stores one :class:`IntervalMetrics` record per
simulated interval and offers the aggregates (mean / min / max, time series)
that the figure drivers print.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["IntervalMetrics", "MetricsCollector"]


@dataclass
class IntervalMetrics:
    """Everything measured during one simulated interval."""

    interval: int
    offered_tuples: float = 0.0
    processed_tuples: float = 0.0
    shed_tuples: float = 0.0
    throughput: float = 0.0  # tuples per second
    latency_ms: float = 0.0  # processed-weighted average
    #: Measured latency percentiles of the interval, from the per-interval
    #: histogram deltas the process runtime's workers ship (0.0 in fluid
    #: simulations, which model the mean only).
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    skewness: float = 0.0  # max task load / average task load
    max_theta: float = 0.0  # max |L(d) - L̄| / L̄
    backlog: float = 0.0
    migrated_state: float = 0.0
    migration_fraction: float = 0.0
    migration_seconds: float = 0.0
    generation_time: float = 0.0
    routing_table_size: int = 0
    rebalanced: bool = False
    num_tasks: int = 0
    per_task_load: Dict[int, float] = field(default_factory=dict)
    #: Shed (dropped) tuples per task this interval — kept per task so the
    #: overloaded task is identifiable, not just the aggregate volume.
    per_task_shed: Dict[int, float] = field(default_factory=dict)


class MetricsCollector:
    """Accumulates per-interval metrics and exposes summary statistics."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.intervals: List[IntervalMetrics] = []

    # -- ingestion --------------------------------------------------------------------

    def record(self, metrics: IntervalMetrics) -> None:
        self.intervals.append(metrics)

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self):
        return iter(self.intervals)

    # -- time series --------------------------------------------------------------------

    def series(self, attribute: str) -> List[float]:
        """Time series of one attribute (e.g. ``"throughput"``)."""
        return [getattr(record, attribute) for record in self.intervals]

    # -- aggregates ----------------------------------------------------------------------

    @staticmethod
    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def mean(self, attribute: str, *, skip_warmup: int = 0) -> float:
        """Mean of an attribute, optionally dropping the first intervals."""
        return self._mean(self.series(attribute)[skip_warmup:])

    def minimum(self, attribute: str) -> float:
        values = self.series(attribute)
        return min(values) if values else 0.0

    def maximum(self, attribute: str) -> float:
        values = self.series(attribute)
        return max(values) if values else 0.0

    @property
    def mean_throughput(self) -> float:
        return self.mean("throughput")

    @property
    def mean_latency_ms(self) -> float:
        weights = self.series("processed_tuples")
        latencies = self.series("latency_ms")
        total = sum(weights)
        if total <= 0:
            return self._mean(latencies)
        return sum(w * l for w, l in zip(weights, latencies)) / total

    @property
    def mean_skewness(self) -> float:
        return self.mean("skewness")

    @property
    def total_migrated_state(self) -> float:
        return sum(self.series("migrated_state"))

    @property
    def mean_migration_fraction(self) -> float:
        """Average migration fraction over the intervals that rebalanced."""
        fractions = [
            record.migration_fraction for record in self.intervals if record.rebalanced
        ]
        return self._mean(fractions)

    @property
    def mean_generation_time(self) -> float:
        """Average plan-generation time over the intervals that rebalanced."""
        times = [
            record.generation_time for record in self.intervals if record.rebalanced
        ]
        return self._mean(times)

    @property
    def rebalance_count(self) -> int:
        return sum(1 for record in self.intervals if record.rebalanced)

    @property
    def total_shed_tuples(self) -> float:
        return sum(self.series("shed_tuples"))

    def shed_by_task(self) -> Dict[int, float]:
        """Cumulative shed-tuple totals per task across the whole run."""
        totals: Dict[int, float] = {}
        for record in self.intervals:
            for task, shed in record.per_task_shed.items():
                totals[task] = totals.get(task, 0.0) + shed
        return totals

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of headline numbers for reports."""
        return {
            "intervals": float(len(self.intervals)),
            "throughput_mean": self.mean_throughput,
            "throughput_min": self.minimum("throughput"),
            "throughput_max": self.maximum("throughput"),
            "latency_ms_mean": self.mean_latency_ms,
            "skewness_mean": self.mean_skewness,
            "skewness_max": self.maximum("skewness"),
            "migration_fraction_mean": self.mean_migration_fraction,
            "generation_time_mean": self.mean_generation_time,
            "rebalances": float(self.rebalance_count),
        }

    # -- persistence ----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation: label plus one record per interval."""
        records = []
        for record in self.intervals:
            row = asdict(record)
            # JSON object keys are strings; keep task ids recoverable.
            row["per_task_load"] = {
                str(task): load for task, load in record.per_task_load.items()
            }
            row["per_task_shed"] = {
                str(task): shed for task, shed in record.per_task_shed.items()
            }
            records.append(row)
        return {"label": self.label, "intervals": records}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsCollector":
        """Inverse of :meth:`to_dict`."""
        collector = cls(label=payload.get("label", ""))
        known = {f.name for f in fields(IntervalMetrics)}
        for row in payload.get("intervals", []):
            values = {key: value for key, value in row.items() if key in known}
            values["per_task_load"] = {
                int(task): load
                for task, load in (row.get("per_task_load") or {}).items()
            }
            values["per_task_shed"] = {
                int(task): shed
                for task, shed in (row.get("per_task_shed") or {}).items()
            }
            collector.record(IntervalMetrics(**values))
        return collector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsCollector(label={self.label!r}, intervals={len(self.intervals)})"
