"""Adapter exposing the paper's rebalance controller as an engine partitioner.

The simulators drive every strategy through the
:class:`~repro.baselines.base.Partitioner` protocol; this module wraps a
:class:`~repro.core.controller.RebalanceController` (mixed hash + routing-table
assignment, rebalanced by Mixed/MinTable/… at interval ends) so it plugs in the
same way the baselines do.

Snapshot routing goes through the batch API: ``assign_batch`` delegates to the
assignment function's bulk evaluation and the base class memoises the per-key
results between rebalances (the cache epoch tracks the controller's planning
rounds and routing-table edits, so an installed plan invalidates it).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.baselines.base import RebalancingPartitioner
from repro.core.assignment import AssignmentFunction
from repro.core.controller import ControllerConfig, RebalanceController
from repro.core.planner import RebalanceResult
from repro.core.statistics import IntervalStats

__all__ = ["MixedRoutingPartitioner"]

Key = Hashable


class MixedRoutingPartitioner(RebalancingPartitioner):
    """The paper's approach wrapped as an engine partitioner.

    Parameters
    ----------
    num_tasks:
        Number of downstream tasks.
    config:
        Controller configuration (algorithm, ``θ_max``, ``A_max``, β, window,
        compact representation on/off).  Defaults to Mixed with the paper's
        default parameters.
    seed:
        Hash seed of the implicit router.
    """

    def __init__(
        self,
        num_tasks: int,
        config: Optional[ControllerConfig] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_tasks)
        config = config if config is not None else ControllerConfig()
        assignment = AssignmentFunction.hashed(num_tasks, seed=seed)
        self.controller = RebalanceController(assignment, config)
        self.seed = int(seed)
        self.name = config.algorithm if not config.use_compact else "compact-mixed"

    cache_routes = True

    # -- Partitioner protocol -----------------------------------------------------

    def route(self, key: Key) -> int:
        return self.controller.assignment(key)

    def _route_epoch(self) -> object:
        assignment = self.controller.assignment
        return (len(self.controller.history), assignment.routing_table.version)

    def plan_rebalance(self, stats: IntervalStats) -> Optional[RebalanceResult]:
        self.controller.observe(stats)
        return self.controller.maybe_rebalance()

    def supports_stateful(self) -> bool:
        return True

    def scale_out(self, new_num_tasks: int) -> None:
        """Add task instances; existing explicit routes are preserved.

        The next planning round naturally spreads keys onto the new tasks
        (their load is zero, so they are the least-loaded LLFD targets), which
        is exactly the scale-out behaviour measured in Fig. 15.
        """
        super().scale_out(new_num_tasks)
        controller = self.controller
        old_assignment = controller.assignment
        new_assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.seed
        ).with_table(old_assignment.routing_table.copy())
        controller.assignment = new_assignment

    def scale_in(self, new_num_tasks: int) -> None:
        """Remove task instances; routes to surviving tasks are preserved.

        Explicit routes onto the removed tasks are dropped, so those keys
        fall back to the resized hash — the runtime migrates their state off
        the drained workers as part of the same boundary.
        """
        super().scale_in(new_num_tasks)
        controller = self.controller
        table = controller.assignment.routing_table.copy()
        for key, task in list(table.items()):
            if task >= new_num_tasks:
                table.discard(key)
        controller.assignment = AssignmentFunction.hashed(
            new_num_tasks, seed=self.seed
        ).with_table(table)

    # -- convenience -----------------------------------------------------------------

    @property
    def assignment(self) -> AssignmentFunction:
        """The controller's current assignment function ``F``."""
        return self.controller.assignment

    @property
    def routing_table_size(self) -> int:
        return self.controller.assignment.routing_table.size
