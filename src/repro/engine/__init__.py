"""Storm-like distributed stream processing engine substrate.

The engine provides everything the paper's evaluation environment (Apache
Storm on a 21-node cluster) contributed to the experiments, re-implemented as a
simulator:

* the data model (:mod:`repro.engine.tuples`), keyed windowed state
  (:mod:`repro.engine.state`, :mod:`repro.engine.window`),
* logical operators, task instances and topologies
  (:mod:`repro.engine.operator`, :mod:`repro.engine.topology`),
* a fluid per-interval execution model with queueing, backpressure and latency
  (:mod:`repro.engine.executor`, :mod:`repro.engine.backpressure`),
* the pause → migrate → ack → resume migration protocol of Fig. 5
  (:mod:`repro.engine.migration_protocol`),
* the interval-driven simulators used by the experiments
  (:mod:`repro.engine.simulator`) and metric collection
  (:mod:`repro.engine.metrics`),
* the adapter exposing the paper's rebalance controller as an engine
  partitioner (:mod:`repro.engine.routing`).
"""

from repro.engine.executor import ExecutorConfig, TaskExecutor
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.migration_protocol import MigrationProtocol, MigrationReport
from repro.engine.operator import OperatorLogic, Task
from repro.engine.routing import MixedRoutingPartitioner
from repro.engine.simulator import OperatorSimulator, PipelineSimulator, SimulationConfig
from repro.engine.state import KeyedState
from repro.engine.topology import PipelineStage, Topology, TopologyBuilder
from repro.engine.tuples import StreamTuple
from repro.engine.window import SlidingWindow

__all__ = [
    "ExecutorConfig",
    "IntervalMetrics",
    "KeyedState",
    "MetricsCollector",
    "MigrationProtocol",
    "MigrationReport",
    "MixedRoutingPartitioner",
    "OperatorLogic",
    "OperatorSimulator",
    "PipelineSimulator",
    "PipelineStage",
    "SimulationConfig",
    "SlidingWindow",
    "StreamTuple",
    "Task",
    "TaskExecutor",
    "Topology",
    "TopologyBuilder",
]
