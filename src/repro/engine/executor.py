"""Fluid (per-interval) execution model of one task.

The evaluation of the paper runs the cluster at the saturation point of the CPU
resource, so the interesting quantities — throughput loss and latency growth —
are entirely determined by how close each task's offered load is to its service
capacity.  :class:`TaskExecutor` models a task as a fluid single-server queue:

* every interval the task is offered ``offered`` cost units of work on top of
  its queued backlog;
* it can serve at most ``capacity`` cost units per interval (reduced by any
  time spent paused for state migration);
* unserved work stays in the backlog (bounded by ``max_backlog``, beyond which
  tuples are shed — modelling Storm's max-pending backpressure);
* the per-tuple latency is the service time plus the expected queueing delay
  ``(backlog + offered/2) / service_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ExecutorConfig", "ExecutionOutcome", "TaskExecutor"]


@dataclass(frozen=True)
class ExecutorConfig:
    """Capacity and latency parameters of a task executor.

    Attributes
    ----------
    capacity:
        Cost units the task can serve per interval.
    interval_seconds:
        Wall-clock length of one interval (10 s in the paper's setup).
    service_time_ms:
        Time to process a single cost unit when the queue is empty.
    max_backlog:
        Maximum queued cost units before new work is shed (backpressure limit).
    """

    capacity: float
    interval_seconds: float = 10.0
    service_time_ms: float = 1.0
    max_backlog: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.service_time_ms < 0:
            raise ValueError("service_time_ms must be non-negative")
        if self.max_backlog is not None and self.max_backlog < 0:
            raise ValueError("max_backlog must be non-negative")


@dataclass
class ExecutionOutcome:
    """What happened on one task during one interval."""

    offered: float
    processed: float
    backlog: float
    shed: float
    utilization: float
    latency_ms: float
    paused_fraction: float = 0.0


class TaskExecutor:
    """Fluid queueing model for one task instance."""

    def __init__(self, config: ExecutorConfig) -> None:
        self.config = config
        self.backlog = 0.0

    def run_interval(
        self,
        offered: float,
        *,
        paused_fraction: float = 0.0,
    ) -> ExecutionOutcome:
        """Serve one interval's offered load.

        ``paused_fraction`` is the fraction of the interval during which the
        task could not process tuples (e.g. while its keys were paused and its
        thread was busy sending/receiving migrated state).
        """
        if offered < 0:
            raise ValueError("offered load must be non-negative")
        paused_fraction = min(max(paused_fraction, 0.0), 1.0)
        effective_capacity = self.config.capacity * (1.0 - paused_fraction)

        start_backlog = self.backlog
        total = start_backlog + offered
        processed = min(total, effective_capacity)
        remaining = total - processed
        shed = 0.0
        if self.config.max_backlog is not None and remaining > self.config.max_backlog:
            shed = remaining - self.config.max_backlog
            remaining = self.config.max_backlog
        self.backlog = remaining

        utilization = total / self.config.capacity if self.config.capacity else 0.0
        latency = self._latency(start_backlog, offered, effective_capacity, paused_fraction)
        return ExecutionOutcome(
            offered=offered,
            processed=processed,
            backlog=self.backlog,
            shed=shed,
            utilization=utilization,
            latency_ms=latency,
            paused_fraction=paused_fraction,
        )

    def _latency(
        self,
        start_backlog: float,
        offered: float,
        effective_capacity: float,
        paused_fraction: float,
    ) -> float:
        """Average per-tuple latency for the interval, in milliseconds."""
        service = self.config.service_time_ms
        interval_ms = self.config.interval_seconds * 1000.0
        if effective_capacity <= 0:
            # The task never ran this interval: tuples wait out the pause.
            return service + interval_ms * paused_fraction
        service_rate = effective_capacity / interval_ms  # cost units per ms
        total = start_backlog + offered
        rho = total / effective_capacity
        if rho < 1.0:
            # Steady-state single-server approximation: the queue drains within
            # the interval, so the wait is governed by the utilisation, plus the
            # time needed to work off any backlog inherited from the previous
            # interval.
            queueing = service * rho / max(1.0 - rho, 1e-3) + start_backlog / service_rate
            queueing = min(queueing, interval_ms)
        else:
            # Overloaded: the queue never drains.  An average arrival waits for
            # the inherited backlog plus half of this interval's excess work.
            excess = total - effective_capacity
            queueing = (start_backlog + excess / 2.0) / service_rate
        pause_penalty = paused_fraction * interval_ms / 2.0
        return service + queueing + pause_penalty

    def reset(self) -> None:
        """Drop any queued backlog (used when an operator is re-deployed)."""
        self.backlog = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskExecutor(capacity={self.config.capacity}, backlog={self.backlog:.1f})"
