"""Backpressure model.

In Storm, when one task of a downstream operator cannot keep up, the spout (and
every upstream operator) is throttled: the *whole* pipeline runs at the pace of
the slowest task ("operator 1 is forced to slow down its processing speed under
backpushing effect" — Fig. 1 of the paper).  The fluid simulator uses
:func:`admissible_fraction` to decide which share of the offered workload the
upstream may actually emit in an interval, given the per-task offered loads and
capacities of the bottleneck operator.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["ShedLedger", "admissible_fraction", "throttled_loads"]


class ShedLedger:
    """Observable per-task account of shed (dropped) tuples.

    Shedding used to vanish into an aggregate counter; the ledger keeps the
    per-task totals so the metrics layer can report *which* task dropped work
    (the overloaded one) rather than only how much was dropped overall.  Both
    execution engines use it: the fluid simulator records the executor's
    per-interval shed volume, and the process runtime's router records batches
    dropped when a worker queue stays full past the shed timeout.
    """

    def __init__(self) -> None:
        self._by_task: Dict[int, float] = {}

    def record(self, task: int, tuples: float) -> None:
        """Charge ``tuples`` shed tuples to ``task`` (non-positive is a no-op)."""
        if tuples <= 0:
            return
        self._by_task[task] = self._by_task.get(task, 0.0) + tuples

    def by_task(self) -> Dict[int, float]:
        """``{task: shed tuples}`` for every task that shed anything."""
        return dict(self._by_task)

    @property
    def total(self) -> float:
        return sum(self._by_task.values())

    def clear(self) -> None:
        self._by_task.clear()

    def __bool__(self) -> bool:
        return bool(self._by_task)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShedLedger(total={self.total:.0f}, tasks={sorted(self._by_task)})"


def admissible_fraction(
    offered: Mapping[int, float],
    capacities: Mapping[int, float],
    backlogs: Mapping[int, float],
    *,
    headroom: float = 1.0,
) -> float:
    """Fraction of the offered interval workload the upstream may emit.

    The pipeline is throttled by the most overloaded task: if a task is offered
    twice its (remaining) capacity, only half of *every* task's tuples can be
    emitted this interval — the rest stays buffered at the spout.  ``headroom``
    > 1 allows transient over-admission (Storm's max-pending window).
    """
    worst = 1.0
    for task, load in offered.items():
        capacity = capacities.get(task, 0.0)
        if capacity <= 0:
            return 0.0
        remaining = max(capacity * headroom - backlogs.get(task, 0.0), 0.0)
        if load <= 0:
            continue
        worst = min(worst, remaining / load)
    return max(0.0, min(1.0, worst))


def throttled_loads(
    offered: Mapping[int, float],
    fraction: float,
) -> Dict[int, float]:
    """Scale every task's offered load by the admissible ``fraction``."""
    fraction = max(0.0, min(1.0, fraction))
    return {task: load * fraction for task, load in offered.items()}
