"""Supervised worker recovery: retention log, respawn, restore, replay.

The coordinator normally aborts the topology when a worker process dies
(``_StageLoop._checkpoint`` raises).  With a :class:`StageSupervisor`
attached, the same detection point instead *heals* the stage:

1. the dead worker's inbound queue is drained (its backlog is re-created
   exactly by the replay below, so leaving it would double-process),
2. a fresh process is spawned on the **same** queue,
3. the latest durable checkpoint is restored (state + lifetime counters,
   including the emission sequence number),
4. the per-task :class:`RetentionLog` — every coordinator→worker message
   put since that checkpoint — is replayed in original FIFO order,
5. the stage resumes; the whole incident is measured wall-clock.

Replay is exactly-once end to end: the restored counters make the respawned
worker's accounting continue where the checkpoint left it, and the restored
emission sequence means replayed batches carry the *same* ``producer_seq``
numbers as the originals — the downstream router keeps the copy it already
saw and accepts only the re-emissions of batches the dead process's queue
feeder thread lost in the crash (a SIGKILL loses a suffix of the pipe
buffer; monotone per-producer sequences heal exactly that shape of loss).
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.runtime.messages import (
    ExtractKeys,
    InstallAck,
    InstallState,
    StateShipment,
    TupleBatch,
)
from repro.runtime.queues import drain_queue
from repro.runtime.resilience.checkpoint import CheckpointStore

__all__ = [
    "KillDirective",
    "LoggedQueue",
    "RecoveryIncident",
    "RetentionLog",
    "StageSupervisor",
    "parse_kill_spec",
]


# -- fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class KillDirective:
    """``repro bench --kill-worker STAGE:TASK@INTERVAL`` parsed.

    The coordinator SIGKILLs task ``task`` of stage ``stage`` the first time
    it sees that stage handle traffic of ``interval`` — a mid-run hard crash,
    not a clean shutdown.
    """

    stage: str
    task: int
    interval: int

    def spec(self) -> str:
        return f"{self.stage}:{self.task}@{self.interval}"


_KILL_SPEC = re.compile(r"^(?P<stage>[^:@]+):(?P<task>\d+)@(?P<interval>\d+)$")


def parse_kill_spec(spec: str) -> KillDirective:
    """Parse ``STAGE:TASK@INTERVAL`` (e.g. ``revenue-agg:0@3``)."""
    match = _KILL_SPEC.match(spec.strip())
    if match is None:
        raise ValueError(
            f"invalid kill spec {spec!r}: expected STAGE:TASK@INTERVAL "
            f"(e.g. revenue-agg:0@3)"
        )
    return KillDirective(
        stage=match.group("stage"),
        task=int(match.group("task")),
        interval=int(match.group("interval")),
    )


# -- retention log -----------------------------------------------------------------


class RetentionLog:
    """Per-task log of every coordinator→worker message since the last checkpoint.

    The log IS the recovery plan: restoring the checkpoint and re-putting the
    logged messages in order reproduces the dead worker's entire inbound
    stream since the snapshot.  It is truncated at each checkpoint (the log
    cut is taken *before* the snapshot command is sent, so the prefix being
    dropped is exactly what the checkpoint already covers) and suspended
    while the supervisor itself is sending (checkpoint commands, restore,
    replay — none of those may re-enter the log).
    """

    def __init__(self, num_tasks: int) -> None:
        self._entries: List[List[Any]] = [[] for _ in range(num_tasks)]
        self._suspended = False

    def note(self, task: int, message: Any) -> None:
        if not self._suspended:
            self._entries[task].append(message)

    def cut(self, task: int) -> int:
        """Current log length of ``task`` — the truncation point of a
        checkpoint started now."""
        return len(self._entries[task])

    def truncate(self, task: int, cut: int) -> None:
        """Drop the prefix covered by a durable checkpoint."""
        del self._entries[task][:cut]

    def replay(self, task: int) -> List[Any]:
        return list(self._entries[task])

    def ensure_task(self, task: int) -> None:
        """Make ``task``'s log exist and start empty (elastic scale-out).

        Index-stable: a scale-in clears but keeps the drained tasks' slots,
        so a later scale-out re-occupies the same indices.
        """
        while len(self._entries) <= task:
            self._entries.append([])
        self._entries[task] = []

    def drop_task(self, task: int) -> None:
        """Forget a drained (scaled-in) task's log."""
        self._entries[task] = []

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Do not log inside this block (supervisor-originated sends)."""
        previous = self._suspended
        self._suspended = True
        try:
            yield
        finally:
            self._suspended = previous


class LoggedQueue:
    """Queue proxy that records every successful put in the retention log.

    Wrapped *outside* the abort-aware queue and *inside* the sanitizer, so a
    put that sheds or aborts is never logged, and the sanitizer keeps seeing
    the queue interface it expects.
    """

    __slots__ = ("queue", "_log", "_task")

    def __init__(self, queue: Any, log: RetentionLog, task: int) -> None:
        self.queue = queue
        self._log = log
        self._task = task

    def put(self, item: Any, *args: Any, **kwargs: Any) -> None:
        self.queue.put(item, *args, **kwargs)
        self._log.note(self._task, item)


# -- recovery ----------------------------------------------------------------------


@dataclass
class RecoveryIncident:
    """One supervised worker recovery, measured wall-clock."""

    stage: str
    task: int
    interval: int
    #: Full wall-clock cost of the incident: detection to resumed stage.
    recovery_pause_seconds: float = 0.0
    #: Time spent installing the checkpoint on the respawned worker.
    restore_seconds: float = 0.0
    restored_keys: int = 0
    #: Interval watermark of the restored checkpoint (-1 = no checkpoint yet).
    checkpoint_interval: int = -1
    replayed_messages: int = 0
    replayed_tuples: int = 0
    drained_messages: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "task": self.task,
            "interval": self.interval,
            "recovery_pause_seconds": self.recovery_pause_seconds,
            "restore_seconds": self.restore_seconds,
            "restored_keys": self.restored_keys,
            "checkpoint_interval": self.checkpoint_interval,
            "replayed_messages": self.replayed_messages,
            "replayed_tuples": self.replayed_tuples,
            "drained_messages": self.drained_messages,
        }


class StageSupervisor:
    """Detect-respawn-restore-replay driver for one stage's workers.

    Owns the stage's :class:`CheckpointStore` and :class:`RetentionLog`; the
    coordinator's ``_StageLoop`` calls :meth:`recover` from its abort-check
    hook when a worker process is found dead.
    """

    def __init__(
        self,
        stage: str,
        store: CheckpointStore,
        log: RetentionLog,
        *,
        checkpoint_every: int = 1,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.stage = stage
        self.store = store
        self.log = log
        self.checkpoint_every = int(checkpoint_every)
        self.incidents: List[RecoveryIncident] = []

    def checkpoint_due(self, interval: int) -> bool:
        """Checkpoints are taken at every ``checkpoint_every``-th boundary."""
        return (interval + 1) % self.checkpoint_every == 0

    def recover(self, loop: Any, task: int, process: Any) -> RecoveryIncident:
        """Heal ``task`` of ``loop``'s stage after ``process`` died.

        ``loop`` is the stage's ``_StageLoop``.  Raises when a live
        migration is in flight: the pause/extract/install hand-off has
        per-message state on both coordinator and workers that a mid-protocol
        crash leaves unrecoverable — a documented limitation (the chaos
        benches kill the static-strategy stage, which never migrates).
        """
        started = time.monotonic()
        if loop.controller.migration_in_flight:
            raise RuntimeError(
                f"worker process {process.name} died during a live key "
                f"migration; supervised recovery cannot preserve an "
                f"in-flight hand-off"
            )
        incident = RecoveryIncident(
            stage=self.stage,
            task=task,
            interval=loop.current_interval,
        )
        # The dead process's backlog is re-created exactly by the replay
        # below; anything still readable must go.
        incident.drained_messages = drain_queue(loop.raw_worker_queues[task])
        loop.spawn_worker(task)
        if loop.sanitizer is not None:
            loop.sanitizer.on_respawn(task)
        guarded = loop.guarded_queues[task]
        with self.log.suspended():
            checkpoint = self.store.latest(task)
            if checkpoint is not None:
                restore_started = time.monotonic()
                guarded.put(
                    InstallState(
                        entries=checkpoint.entries,
                        counters=checkpoint.counters,
                    )
                )
                loop.mailbox.collect(InstallAck, 1)
                incident.restore_seconds = time.monotonic() - restore_started
                incident.restored_keys = len(checkpoint.entries)
                incident.checkpoint_interval = checkpoint.interval
            # Replay the retained post-checkpoint stream in FIFO order.  The
            # sanitizer must not double-count the replayed tuples (they were
            # counted when first enqueued), and migration commands in the
            # log produce replies the coordinator already consumed — collect
            # and discard those so the mailbox stays coherent.
            pending_shipments = 0
            pending_acks = 0
            if loop.sanitizer is not None:
                loop.sanitizer.begin_replay()
            try:
                for message in self.log.replay(task):
                    guarded.put(message)
                    incident.replayed_messages += 1
                    if isinstance(message, TupleBatch):
                        incident.replayed_tuples += len(message)
                    if isinstance(message, ExtractKeys) and not message.copy:
                        pending_shipments += 1
                    elif isinstance(message, InstallState) and not message.counters:
                        pending_acks += 1
            finally:
                if loop.sanitizer is not None:
                    loop.sanitizer.end_replay()
            discarded = 0
            while discarded < pending_shipments:
                shipment = loop.mailbox.collect(StateShipment, 1)[0]
                if shipment.counters:
                    # A checkpoint (copy-mode) shipment from before the
                    # crash; the re-issued snapshot command below produces
                    # the round's authoritative one, so drop this.
                    continue
                discarded += 1
            for _ in range(pending_acks):
                loop.mailbox.collect(InstallAck, 1)
            if loop.checkpoint_pending(task):
                # The worker died between the snapshot command and its
                # shipment; re-issue so the in-progress checkpoint round
                # still receives one shipment per task.
                guarded.put(ExtractKeys(keys=None, copy=True))
        incident.recovery_pause_seconds = time.monotonic() - started
        self.incidents.append(incident)
        return incident
