"""Resilience subsystem: checkpointing, supervised recovery, elastic scaling.

Three cooperating parts, all riding the existing runtime wire protocol:

* :mod:`~repro.runtime.resilience.checkpoint` — periodic per-task
  ``KeyedState`` snapshots (the ``ExtractKeys(copy=True)`` /
  ``StateShipment`` path) written atomically to a run-scoped directory with
  a digest-verified manifest;
* :mod:`~repro.runtime.resilience.supervisor` — dead-worker detection,
  respawn on the same queue, checkpoint restore and retention-log replay,
  measured wall-clock per incident;
* :mod:`~repro.runtime.resilience.scaling` — grow/shrink a stage's process
  group at an interval boundary, reusing live key migration for the state
  hand-off.
"""

from repro.runtime.resilience.checkpoint import (
    CheckpointCorrupt,
    CheckpointRecord,
    CheckpointStore,
    LoadedCheckpoint,
    atomic_write_bytes,
    atomic_write_json,
)
from repro.runtime.resilience.scaling import (
    ScaleDirective,
    ScaleEvent,
    execute_scale,
    parse_scale_spec,
)
from repro.runtime.resilience.supervisor import (
    KillDirective,
    LoggedQueue,
    RecoveryIncident,
    RetentionLog,
    StageSupervisor,
    parse_kill_spec,
)

__all__ = [
    "CheckpointCorrupt",
    "CheckpointRecord",
    "CheckpointStore",
    "KillDirective",
    "LoadedCheckpoint",
    "LoggedQueue",
    "RecoveryIncident",
    "RetentionLog",
    "ScaleDirective",
    "ScaleEvent",
    "StageSupervisor",
    "atomic_write_bytes",
    "atomic_write_json",
    "execute_scale",
    "parse_kill_spec",
    "parse_scale_spec",
]
