"""Atomic per-task ``KeyedState`` checkpoints with a run-scoped manifest.

A :class:`CheckpointStore` owns one stage's checkpoint directory inside the
run-scoped checkpoint root.  Each checkpoint is one pickled blob per task —
the state entries exactly as a :class:`~repro.runtime.messages.StateShipment`
carries them, plus the worker's lifetime counters — written **atomically**:
the bytes go to a temporary file in the same directory and are moved into
place with :func:`os.replace`, so a crash mid-write can never leave a
half-written checkpoint that a later recovery would restore.  The stage's
``manifest.json`` (also written atomically) records, per task, the interval
watermark the checkpoint covers, its SHA-256 content digest and its size;
:meth:`CheckpointStore.latest` verifies the digest before handing the
snapshot to the supervisor.

Every write in this repository that targets a checkpoint path must go
through :func:`atomic_write_bytes` / :func:`atomic_write_json` — the RPL006
lint rule flags bare ``open(..., "w")`` on checkpoint-named paths outside
this module.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = [
    "CheckpointCorrupt",
    "CheckpointRecord",
    "CheckpointStore",
    "LoadedCheckpoint",
    "atomic_write_bytes",
    "atomic_write_json",
]

Key = Hashable


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file does not match its manifest digest."""


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the target's directory so the final rename
    stays within one filesystem; readers either see the old content or the
    complete new content, never a torn write.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_json(path: str, payload: Any) -> None:
    """Atomically serialise ``payload`` as JSON to ``path``."""
    atomic_write_bytes(
        path, json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
    )


@dataclass(frozen=True)
class CheckpointRecord:
    """Bookkeeping of one persisted checkpoint (write side)."""

    task: int
    interval: int
    digest: str
    bytes_written: int
    write_seconds: float
    path: str


@dataclass
class LoadedCheckpoint:
    """One task's latest checkpoint, verified and deserialised."""

    task: int
    interval: int
    digest: str
    entries: List[Tuple[Key, Any]]
    counters: Dict[str, float] = field(default_factory=dict)


class CheckpointStore:
    """Per-stage checkpoint directory + manifest inside the run-scoped root."""

    def __init__(self, root: str, stage: str) -> None:
        self.stage = stage
        self.root = os.path.join(root, stage.replace(os.sep, "_"))
        os.makedirs(self.root, exist_ok=True)
        self.records: List[CheckpointRecord] = []
        self._manifest_path = os.path.join(self.root, "manifest.json")
        self._manifest: Dict[str, Any] = {"stage": stage, "tasks": {}}

    # -- write side ---------------------------------------------------------------

    def save(
        self,
        task: int,
        interval: int,
        entries: List[Tuple[Key, Any]],
        counters: Dict[str, float],
    ) -> CheckpointRecord:
        """Persist one task's snapshot; durable once this returns.

        Write order makes the sequence crash-safe: the new blob lands
        atomically under a fresh name, then the manifest atomically points
        at it, and only then is the previous blob removed — at every instant
        the manifest references a complete file.
        """
        started = time.monotonic()
        blob = pickle.dumps(
            {"entries": entries, "counters": dict(counters)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).hexdigest()
        filename = f"task-{task:04d}-interval-{interval:06d}.ckpt"
        path = os.path.join(self.root, filename)
        atomic_write_bytes(path, blob)
        previous = self._manifest["tasks"].get(str(task))
        self._manifest["tasks"][str(task)] = {
            "interval": int(interval),
            "digest": digest,
            "bytes": len(blob),
            "file": filename,
        }
        atomic_write_json(self._manifest_path, self._manifest)
        if previous is not None and previous["file"] != filename:
            try:
                os.remove(os.path.join(self.root, previous["file"]))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        record = CheckpointRecord(
            task=task,
            interval=interval,
            digest=digest,
            bytes_written=len(blob),
            write_seconds=time.monotonic() - started,
            path=path,
        )
        self.records.append(record)
        return record

    # -- read side ----------------------------------------------------------------

    def latest(self, task: int) -> Optional[LoadedCheckpoint]:
        """The most recent durable checkpoint of ``task`` (digest-verified)."""
        entry = self._manifest["tasks"].get(str(task))
        if entry is None:
            return None
        path = os.path.join(self.root, entry["file"])
        with open(path, "rb") as handle:
            blob = handle.read()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry["digest"]:
            raise CheckpointCorrupt(
                f"checkpoint {entry['file']} of stage {self.stage!r} does not "
                f"match its manifest digest"
            )
        payload = pickle.loads(blob)
        return LoadedCheckpoint(
            task=task,
            interval=int(entry["interval"]),
            digest=digest,
            entries=payload["entries"],
            counters=payload["counters"],
        )

    # -- aggregates ---------------------------------------------------------------

    @property
    def checkpoint_count(self) -> int:
        return len(self.records)

    @property
    def bytes_written(self) -> int:
        return sum(record.bytes_written for record in self.records)

    @property
    def write_seconds(self) -> float:
        return sum(record.write_seconds for record in self.records)

    def stats(self) -> Dict[str, float]:
        """Headline write-side numbers for the bench report."""
        return {
            "count": float(self.checkpoint_count),
            "bytes_written": float(self.bytes_written),
            "write_seconds": self.write_seconds,
        }
