"""Elastic stage scaling at interval boundaries.

A :class:`ScaleDirective` (``repro bench --scale-at INTERVAL:STAGE:±N``)
asks one stage to grow or shrink its process group when the named interval
closes.  :func:`execute_scale` runs entirely inside the coordinator's
interval-close window — dispatch is quiescent, so the whole resize is one
synchronous rebalance:

* **scale-out** — spawn the new workers on fresh queues, resize the
  partitioner (:meth:`~repro.baselines.base.Partitioner.scale_out`
  preserves learned routing tables), then live-migrate exactly the keys
  whose assignment changed onto the new tasks;
* **scale-in** — resize the partitioner first
  (:meth:`~repro.baselines.base.Partitioner.scale_in`), live-migrate every
  key off the doomed tasks, then drain those workers with an ordinary
  end-of-stream hand-shake so their lifetime totals still reach the final
  accounting.

Either way the state hand-off reuses the existing migration wire protocol
(pause → extract → install → ack → resume) and the measured pause is
recorded per event, so the bench report can show the rebalance cost of an
elastic resize next to the cost of ordinary skew-driven migrations.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["ScaleDirective", "ScaleEvent", "execute_scale", "parse_scale_spec"]


@dataclass(frozen=True)
class ScaleDirective:
    """``--scale-at INTERVAL:STAGE:±N`` parsed: resize ``stage`` by ``delta``
    workers when ``interval`` closes."""

    interval: int
    stage: str
    delta: int

    def spec(self) -> str:
        return f"{self.interval}:{self.stage}:{self.delta:+d}"


_SCALE_SPEC = re.compile(
    r"^(?P<interval>\d+):(?P<stage>[^:@]+):(?P<delta>[+-]?\d+)$"
)


def parse_scale_spec(spec: str) -> ScaleDirective:
    """Parse ``INTERVAL:STAGE:±N`` (e.g. ``2:order-join:+1``)."""
    match = _SCALE_SPEC.match(spec.strip())
    if match is None:
        raise ValueError(
            f"invalid scale spec {spec!r}: expected INTERVAL:STAGE:±N "
            f"(e.g. 2:order-join:+1)"
        )
    delta = int(match.group("delta"))
    if delta == 0:
        raise ValueError(f"invalid scale spec {spec!r}: delta must be non-zero")
    return ScaleDirective(
        interval=int(match.group("interval")),
        stage=match.group("stage"),
        delta=delta,
    )


@dataclass
class ScaleEvent:
    """One executed elastic resize, measured wall-clock."""

    stage: str
    interval: int
    delta: int
    from_tasks: int
    to_tasks: int
    moved_keys: int = 0
    moved_state: float = 0.0
    #: Pause of the rebalancing key migration alone.
    rebalance_pause_seconds: float = 0.0
    released_tuples: int = 0
    #: Full resize cost including worker spawn/drain.
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "interval": self.interval,
            "delta": self.delta,
            "from_tasks": self.from_tasks,
            "to_tasks": self.to_tasks,
            "moved_keys": self.moved_keys,
            "moved_state": self.moved_state,
            "rebalance_pause_seconds": self.rebalance_pause_seconds,
            "released_tuples": self.released_tuples,
            "wall_seconds": self.wall_seconds,
        }


def execute_scale(loop: Any, directive: ScaleDirective) -> ScaleEvent:
    """Resize ``loop``'s stage per ``directive`` at the current boundary.

    ``loop`` is the stage's ``_StageLoop``; the call runs on the stage
    thread inside ``_close_interval``, after the interval's accounts are
    settled and with no dispatch in flight.
    """
    started = time.monotonic()
    partitioner = loop.spec.partitioner
    old = partitioner.num_tasks
    new = old + directive.delta
    if new < 1:
        raise ValueError(
            f"scale directive {directive.spec()!r} would leave stage "
            f"{directive.stage!r} with {new} workers"
        )
    # Any in-flight skew-driven migration must settle before the resize
    # reshuffles ownership underneath it.
    loop.controller.finish_pending()
    # Placement before the resize, for every key this stage ever routed —
    # the diff against the post-resize placement is the migration plan.
    seen = sorted(loop.seen_keys, key=repr)
    old_assign = partitioner.assign_batch(seen)
    if directive.delta > 0:
        for task in range(old, new):
            loop.attach_worker(task)
        partitioner.scale_out(new)
        loop.router.set_queues(loop.guarded_queues)
        loop.controller.set_queues(loop.guarded_queues)
    else:
        partitioner.scale_in(new)
    new_assign = partitioner.assign_batch(seen)
    moves: Dict[Any, Tuple[int, int]] = {
        key: (source, target)
        for key, source, target in zip(seen, old_assign, new_assign)
        if source != target
    }
    report = loop.controller.execute_moves(loop.current_interval, moves)
    if directive.delta < 0:
        loop.detach_workers(new, old)
        loop.router.set_queues(loop.guarded_queues)
        loop.controller.set_queues(loop.guarded_queues)
    for downstream in loop.downstreams:
        downstream.set_upstream_producers(
            loop.spec.name,
            loop.current_interval + 1,
            new,
            done_delta=max(directive.delta, 0),
        )
    event = ScaleEvent(
        stage=directive.stage,
        interval=loop.current_interval,
        delta=directive.delta,
        from_tasks=old,
        to_tasks=new,
        moved_keys=report.moved_keys,
        moved_state=report.moved_state,
        rebalance_pause_seconds=report.pause_seconds,
        released_tuples=report.released_tuples,
        wall_seconds=time.monotonic() - started,
    )
    return event
