"""Single-stage execution: the one-stage special case of the topology runtime.

:class:`LocalRuntime` keeps the PR-3 API — one operator, one partitioner, N
worker processes — but since the multi-stage refactor it is a thin wrapper
over :class:`~repro.runtime.topology.TopologyRuntime`: it builds a one-stage
:class:`~repro.runtime.topology.TopologySpec` and returns that stage's
:class:`~repro.runtime.topology.RuntimeResult`.  Everything measured —
per-interval accounting through FIFO markers, live key migration, latency
histograms (now with per-interval deltas), shedding, backpressure — is the
topology machinery with a chain of length one.

The workload is an iterable of per-interval tuple lists (``[(key, value),
…]``); helpers in :mod:`repro.runtime.bench` expand the repo's
snapshot-based workload generators into such streams.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Partitioner
from repro.engine.operator import OperatorLogic
from repro.runtime.topology import (
    RuntimeConfig,
    RuntimeResult,
    StageSpec,
    TopologyRuntime,
    TopologySpec,
    TupleStream,
)

__all__ = ["RuntimeConfig", "RuntimeResult", "LocalRuntime"]


class LocalRuntime:
    """Spawns worker processes and pushes a tuple stream through them."""

    def __init__(
        self,
        logic: OperatorLogic,
        partitioner: Partitioner,
        config: Optional[RuntimeConfig] = None,
        *,
        label: str = "",
    ) -> None:
        self.logic = logic
        self.partitioner = partitioner
        self.config = config if config is not None else RuntimeConfig()
        if partitioner.num_tasks != self.config.parallelism:
            raise ValueError(
                f"partitioner routes over {partitioner.num_tasks} tasks but "
                f"parallelism is {self.config.parallelism}"
            )
        self.label = label or getattr(partitioner, "name", "runtime")

    def run(self, stream: TupleStream) -> RuntimeResult:
        """Execute the stream; blocks until every worker drained and exited."""
        spec = TopologySpec(
            self.label,
            [StageSpec(name=self.label, logic=self.logic, partitioner=self.partitioner)],
        )
        outcome = TopologyRuntime(spec, self.config, label=self.label).run(stream)
        return outcome.stages[self.label]
