"""The local multi-process runtime coordinator.

:class:`LocalRuntime` wires the pieces together: it spawns N worker processes
(each hosting one :class:`~repro.engine.operator.Task` of the operator under
study), feeds them through bounded queues via a
:class:`~repro.runtime.router.StreamRouter`, runs a
:class:`~repro.runtime.controller.RuntimeController` at every interval
boundary (online planning + live key migration), and aggregates the workers'
counters and latency histograms into a
:class:`~repro.engine.metrics.MetricsCollector` plus a
:class:`~repro.runtime.result.RuntimeResult`-style summary, so fluid and
process runs read the same way.

The workload is an iterable of per-interval tuple lists (``[(key, value),
…]``); helpers in :mod:`repro.runtime.bench` expand the repo's
snapshot-based workload generators into such streams.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Type

from repro.baselines.base import Partitioner
from repro.core.load import max_balance_indicator, max_skewness
from repro.core.statistics import IntervalStats
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.operator import OperatorLogic
from repro.runtime.controller import LiveMigrationReport, RuntimeController
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.messages import (
    EndInterval,
    EndOfStream,
    FinalReport,
    IntervalReport,
    WorkerError,
)
from repro.runtime.router import StreamRouter
from repro.runtime.worker import worker_main

__all__ = ["RuntimeConfig", "RuntimeResult", "LocalRuntime"]

Key = Hashable
TupleStream = Iterable[List[Tuple[Key, Any]]]


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the process runtime.

    Attributes
    ----------
    parallelism:
        Number of worker processes (= operator task instances).
    batch_size:
        Tuples per dispatched micro-batch.
    queue_capacity:
        Bound of each worker's inbound queue, in batches; the dispatcher
        blocks (backpressure) or sheds (see ``shed_timeout_seconds``) when a
        queue is full.
    service_time_us:
        Emulated service time per cost unit (pacing); 0 disables pacing and
        the workers run as fast as the host CPU allows.
    shed_timeout_seconds:
        When set, a dispatch blocked longer than this sheds the batch (the
        drop is recorded per task); ``None`` means pure backpressure.
    collect_final_state:
        Ask workers to report their final windowed per-key payloads
        (correctness tests; expensive for large state).
    start_method:
        ``multiprocessing`` start method; default picks ``fork`` when the
        platform offers it, else ``spawn``.
    join_timeout_seconds:
        How long to wait for replies/workers before declaring the run wedged.
    """

    parallelism: int = 4
    batch_size: int = 256
    queue_capacity: int = 8
    service_time_us: float = 50.0
    shed_timeout_seconds: Optional[float] = None
    collect_final_state: bool = False
    start_method: Optional[str] = None
    join_timeout_seconds: float = 120.0

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.service_time_us < 0:
            raise ValueError("service_time_us must be non-negative")
        if self.join_timeout_seconds <= 0:
            raise ValueError("join_timeout_seconds must be positive")


@dataclass
class RuntimeResult:
    """Measured outcome of one process-runtime run."""

    label: str
    metrics: MetricsCollector
    latency: LatencyHistogram
    tuples_offered: int = 0
    tuples_processed: int = 0
    tuples_shed: float = 0.0
    wall_seconds: float = 0.0
    migrations: List[LiveMigrationReport] = field(default_factory=list)
    final_reports: Dict[int, FinalReport] = field(default_factory=dict)
    final_state: Dict[Key, List[Any]] = field(default_factory=dict)
    shed_by_task: Dict[int, float] = field(default_factory=dict)

    @property
    def tuples_per_second(self) -> float:
        return self.tuples_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def pause_seconds_total(self) -> float:
        return sum(report.pause_seconds for report in self.migrations)

    @property
    def moved_keys_total(self) -> int:
        return sum(report.moved_keys for report in self.migrations)

    def summary(self) -> Dict[str, float]:
        """Headline numbers (one bench table row)."""
        row: Dict[str, float] = {
            "tuples": float(self.tuples_processed),
            "wall_seconds": self.wall_seconds,
            "tuples_per_second": self.tuples_per_second,
        }
        row.update(self.summary_latency())
        row.update(
            {
                "rebalances": float(len(self.migrations)),
                "moved_keys": float(self.moved_keys_total),
                "pause_seconds": self.pause_seconds_total,
                "shed_tuples": float(self.tuples_shed),
            }
        )
        return row

    def summary_latency(self) -> Dict[str, float]:
        summary = self.latency.summary_ms()
        summary.pop("samples", None)
        summary.pop("latency_max_ms", None)
        return summary


class _Mailbox:
    """Demultiplexes the shared outbound queue by message type.

    Replies from workers (interval reports, state shipments, install acks,
    final reports) interleave arbitrarily; consumers ask for a specific type
    and everything else is stashed for later.
    """

    def __init__(self, out_queue: Any, timeout_seconds: float) -> None:
        self._queue = out_queue
        self._timeout = timeout_seconds
        self._pending: List[Any] = []

    def _check(self, message: Any) -> Any:
        if isinstance(message, WorkerError):
            raise RuntimeError(
                f"worker {message.worker_id} crashed:\n{message.message}"
            )
        return message

    def _take_pending(self, message_type: Type, limit: Optional[int]) -> List[Any]:
        matched: List[Any] = []
        remaining: List[Any] = []
        for message in self._pending:
            if isinstance(message, message_type) and (
                limit is None or len(matched) < limit
            ):
                matched.append(message)
            else:
                remaining.append(message)
        self._pending = remaining
        return matched

    def collect(self, message_type: Type, expected: int) -> List[Any]:
        """Block until ``expected`` messages of ``message_type`` arrived."""
        matched = self._take_pending(message_type, expected)
        deadline = time.monotonic() + self._timeout
        while len(matched) < expected:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise RuntimeError(
                    f"timed out waiting for {expected} {message_type.__name__} "
                    f"replies (got {len(matched)})"
                )
            try:
                message = self._check(self._queue.get(timeout=timeout))
            except queue_module.Empty:
                continue
            if isinstance(message, message_type):
                matched.append(message)
            else:
                self._pending.append(message)
        return matched

    def drain(self, message_type: Type) -> List[Any]:
        """Every already-available message of ``message_type`` (non-blocking)."""
        while True:
            try:
                message = self._check(self._queue.get_nowait())
            except queue_module.Empty:
                break
            self._pending.append(message)
        return self._take_pending(message_type, None)


class LocalRuntime:
    """Spawns worker processes and pushes a tuple stream through them."""

    def __init__(
        self,
        logic: OperatorLogic,
        partitioner: Partitioner,
        config: Optional[RuntimeConfig] = None,
        *,
        label: str = "",
    ) -> None:
        self.logic = logic
        self.partitioner = partitioner
        self.config = config if config is not None else RuntimeConfig()
        if partitioner.num_tasks != self.config.parallelism:
            raise ValueError(
                f"partitioner routes over {partitioner.num_tasks} tasks but "
                f"parallelism is {self.config.parallelism}"
            )
        self.label = label or getattr(partitioner, "name", "runtime")

    # -- orchestration ------------------------------------------------------------

    def run(self, stream: TupleStream) -> RuntimeResult:
        """Execute the stream; blocks until every worker drained and exited."""
        config = self.config
        method = config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        context = multiprocessing.get_context(method)

        worker_queues = [
            context.Queue(maxsize=config.queue_capacity)
            for _ in range(config.parallelism)
        ]
        out_queue = context.Queue()
        mailbox = _Mailbox(out_queue, config.join_timeout_seconds)

        router = StreamRouter(
            self.partitioner,
            self.logic,
            worker_queues,
            batch_size=config.batch_size,
            shed_timeout_seconds=config.shed_timeout_seconds,
        )
        controller = RuntimeController(
            self.partitioner, router, worker_queues, mailbox
        )

        workers = [
            context.Process(
                target=worker_main,
                args=(
                    worker_id,
                    self.logic,
                    worker_queues[worker_id],
                    out_queue,
                    config.service_time_us,
                ),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            for worker_id in range(config.parallelism)
        ]
        for process in workers:
            process.start()

        interval_rows: List[Dict[str, Any]] = []
        wall_start = time.monotonic()
        try:
            for interval, tuples in enumerate(stream):
                router.begin_interval(interval)
                started = time.monotonic()
                # poll between micro-batches: an in-flight migration hand-off
                # advances while the next interval's tuples keep flowing.
                router.dispatch(tuples, pump=controller.poll)
                # Finish any hand-off BEFORE the markers: tuples released by
                # resume() belong to this interval and must precede its
                # EndInterval in the FIFO queues to be counted in it.
                controller.finish_pending()
                for task_queue in worker_queues:
                    task_queue.put(EndInterval(interval=interval))
                migration = controller.end_interval(
                    self._interval_stats(interval, router.dispatched_freqs)
                )
                now = time.monotonic()
                interval_rows.append(
                    {
                        "interval": interval,
                        "offered_tuples": sum(router.offered_tuples.values()),
                        "offered_cost": dict(router.offered_cost),
                        "shed": dict(router.shed_tuples_interval),
                        "elapsed": now - started,
                        "migration": migration,
                    }
                )

            # A hand-off begun on the final interval must complete (install
            # the shipped state, release the buffered tuples) before EOS.
            controller.finish_pending()
            for task_queue in worker_queues:
                task_queue.put(EndOfStream(collect_state=config.collect_final_state))
            finals: List[FinalReport] = mailbox.collect(
                FinalReport, config.parallelism
            )
            wall_seconds = time.monotonic() - wall_start
        finally:
            self._shutdown(workers)

        return self._aggregate(
            interval_rows, finals, mailbox, router, controller, wall_seconds
        )

    def _shutdown(self, workers: List[Any]) -> None:
        deadline = time.monotonic() + 10.0
        for process in workers:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():  # pragma: no cover - wedged-worker cleanup
                process.terminate()
                process.join(timeout=5.0)

    # -- aggregation ---------------------------------------------------------------

    def _interval_stats(
        self, interval: int, freqs: Dict[Key, float]
    ) -> IntervalStats:
        stats = IntervalStats(interval)
        tuple_cost = self.logic.tuple_cost
        state_delta = self.logic.state_delta
        stats.record_bulk(
            (key, count, count * tuple_cost(key), count * state_delta(key))
            for key, count in freqs.items()
            if count > 0
        )
        return stats

    def _aggregate(
        self,
        interval_rows: List[Dict[str, Any]],
        finals: List[FinalReport],
        mailbox: _Mailbox,
        router: StreamRouter,
        controller: RuntimeController,
        wall_seconds: float,
    ) -> RuntimeResult:
        # Interval reports may still sit in the mailbox (they are only pulled
        # on demand); drain everything that is left.
        per_interval: Dict[int, List[IntervalReport]] = {}
        for message in mailbox.drain(IntervalReport):
            per_interval.setdefault(message.interval, []).append(message)

        latency = LatencyHistogram()
        final_reports: Dict[int, FinalReport] = {}
        final_state: Dict[Key, List[Any]] = {}
        processed_total = 0
        for report in finals:
            final_reports[report.worker_id] = report
            latency.merge(LatencyHistogram.from_dict(report.histogram))
            processed_total += report.processed
            final_state.update(report.final_state)

        metrics = MetricsCollector(label=self.label)
        for row in interval_rows:
            interval = row["interval"]
            reports = per_interval.get(interval, [])
            processed = sum(report.processed for report in reports)
            latency_sum_us = sum(report.latency_us_sum for report in reports)
            elapsed = row["elapsed"]
            migration: Optional[LiveMigrationReport] = row["migration"]
            offered_cost: Dict[int, float] = row["offered_cost"]
            shed_map: Dict[int, float] = row["shed"]
            metrics.record(
                IntervalMetrics(
                    interval=interval,
                    offered_tuples=row["offered_tuples"],
                    processed_tuples=float(processed),
                    shed_tuples=sum(shed_map.values()),
                    throughput=float(processed) / elapsed if elapsed > 0 else 0.0,
                    latency_ms=(
                        latency_sum_us / processed / 1000.0 if processed else 0.0
                    ),
                    skewness=max_skewness(offered_cost),
                    max_theta=max_balance_indicator(offered_cost),
                    migrated_state=migration.moved_state if migration else 0.0,
                    migration_fraction=(
                        migration.migration_fraction if migration else 0.0
                    ),
                    migration_seconds=migration.pause_seconds if migration else 0.0,
                    generation_time=migration.generation_time if migration else 0.0,
                    routing_table_size=migration.table_size if migration else 0,
                    rebalanced=migration is not None,
                    num_tasks=self.config.parallelism,
                    per_task_load=offered_cost,
                    per_task_shed=shed_map,
                )
            )

        offered_total = int(
            sum(row["offered_tuples"] for row in interval_rows)
        )
        return RuntimeResult(
            label=self.label,
            metrics=metrics,
            latency=latency,
            tuples_offered=offered_total,
            tuples_processed=processed_total,
            tuples_shed=router.shed_ledger.total,
            wall_seconds=wall_seconds,
            migrations=list(controller.migrations),
            final_reports=final_reports,
            final_state=final_state,
            shed_by_task=router.shed_ledger.by_task(),
        )
