"""Online rebalancing and live key migration for the process runtime.

At every interval boundary the coordinator hands the controller the interval's
dispatched key statistics; the controller runs the partitioner's planning hook
(:meth:`~repro.baselines.base.Partitioner.on_interval_end` — the same entry
point the fluid simulator uses, so any registered rebalancing strategy works
unchanged) and, when a plan comes back, executes it **live** against the
running worker processes:

1. *Pause* — the router stops dispatching the affected keys (``Δ(F, F′)``)
   and buffers their tuples; unaffected keys keep flowing.
2. *Ship* — each source worker receives an ``ExtractKeys`` command through
   its FIFO inbound queue, which it only reaches after processing every
   previously dispatched tuple of those keys; it extracts the windowed
   :class:`~repro.engine.state.KeyedState` and ships it back.
3. *Install* — the coordinator forwards the snapshots to the new owners and
   waits for their acks.
4. *Resume* — the router re-dispatches the buffered tuples under the new
   assignment.

The hand-off is *asynchronous*: after step 2 is initiated the coordinator
returns to dispatching the next interval (tuples of paused keys buffer at the
router; everything else flows) and advances the protocol by polling between
micro-batches.  The measured ``pause_seconds`` is therefore real wall-clock
time under load: it includes the queue drain on busy source workers,
serialisation and the scheduling latency of the hand-off — the quantity the
fluid model only estimates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.baselines.base import Partitioner
from repro.core.statistics import IntervalStats
from repro.runtime.messages import ExtractKeys, InstallAck, InstallState, StateShipment

__all__ = ["LiveMigrationReport", "RuntimeController"]

Key = Hashable


@dataclass
class LiveMigrationReport:
    """Outcome of one live rebalance executed against running workers."""

    interval: int
    moved_keys: int = 0
    moved_state: float = 0.0
    pause_seconds: float = 0.0
    released_tuples: int = 0
    generation_time: float = 0.0
    migration_fraction: float = 0.0
    table_size: int = 0
    source_workers: List[int] = field(default_factory=list)
    target_workers: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "moved_keys": self.moved_keys,
            "moved_state": self.moved_state,
            "pause_seconds": self.pause_seconds,
            "released_tuples": self.released_tuples,
            "generation_time": self.generation_time,
            "migration_fraction": self.migration_fraction,
            "table_size": self.table_size,
            "source_workers": list(self.source_workers),
            "target_workers": list(self.target_workers),
        }


class _PendingMigration:
    """State machine of one in-flight pause → ship → install → resume hand-off."""

    __slots__ = (
        "report",
        "target_of",
        "started",
        "expected_shipments",
        "shipments",
        "expected_acks",
        "phase",
    )

    def __init__(
        self,
        report: LiveMigrationReport,
        target_of: Dict[Key, int],
        expected_shipments: int,
        started: float,
    ) -> None:
        self.report = report
        self.target_of = target_of
        self.started = started
        self.expected_shipments = expected_shipments
        self.shipments: List[StateShipment] = []
        self.expected_acks = 0
        self.phase = "ship"


class RuntimeController:
    """Runs the rebalancing planner online and drives live state migration."""

    def __init__(
        self,
        partitioner: Partitioner,
        router: Any,
        worker_queues: Sequence[Any],
        mailbox: Any,
    ) -> None:
        """``mailbox`` is the coordinator's outbound-queue demultiplexer; it
        must offer ``collect(message_type, expected)`` (blocking) and
        ``drain(message_type)`` (non-blocking) — see ``LocalRuntime``."""
        self.partitioner = partitioner
        self.router = router
        #: Abort-aware command queues (one per worker); see StreamRouter.
        self.abortable_queues = list(worker_queues)
        self.mailbox = mailbox
        self.migrations: List[LiveMigrationReport] = []
        self._pending: Optional[_PendingMigration] = None

    # -- planning -----------------------------------------------------------------

    def end_interval(self, stats: IntervalStats) -> Optional[LiveMigrationReport]:
        """Plan on the finished interval; start any migration live.

        A hand-off still in flight from the previous interval is completed
        (blocking) first — one migration at a time, as in the paper's
        controller.
        """
        self.finish_pending()
        rebalance = self.partitioner.on_interval_end(stats)
        if rebalance is None:
            return None
        report = LiveMigrationReport(
            interval=stats.interval,
            generation_time=getattr(rebalance, "generation_time", 0.0),
            migration_fraction=getattr(rebalance, "migration_fraction", 0.0),
            table_size=getattr(rebalance, "table_size", 0),
        )
        plan = rebalance.migration_plan
        if plan:
            self._begin_live(plan, report)
        self.migrations.append(report)
        return report

    # -- the pause → ship → install → resume protocol -----------------------------

    def _begin_live(self, plan, report: LiveMigrationReport) -> None:
        target_of: Dict[Key, int] = {move.key: move.target for move in plan}
        by_source = plan.moves_by_source()
        started = time.monotonic()
        self.router.pause(target_of.keys())
        for source, moves in sorted(by_source.items()):
            self.abortable_queues[source].put(
                ExtractKeys(keys=[move.key for move in moves])
            )
        report.moved_keys = len(target_of)
        report.source_workers = sorted(by_source)
        self._pending = _PendingMigration(
            report, target_of, expected_shipments=len(by_source), started=started
        )

    def execute_moves(
        self, interval: int, moves: Dict[Key, Tuple[int, int]]
    ) -> LiveMigrationReport:
        """Run one *synchronous* hand-off of explicit key moves.

        ``moves`` maps ``key -> (source task, target task)``.  Used by
        elastic scaling, where the move set comes from diffing the
        partitioner's placement across a resize rather than from a
        rebalancing plan; the wire protocol (pause → extract → install →
        ack → resume) is exactly the live-migration one, but the call blocks
        until the hand-off completes and the report is **not** counted among
        the skew-driven :attr:`migrations`.
        """
        if self._pending is not None:
            raise RuntimeError(
                "cannot execute scale moves with a live migration in flight"
            )
        report = LiveMigrationReport(interval=interval)
        if not moves:
            return report
        target_of: Dict[Key, int] = {}
        by_source: Dict[int, List[Key]] = {}
        for key, (source, target) in moves.items():
            target_of[key] = target
            by_source.setdefault(source, []).append(key)
        started = time.monotonic()
        self.router.pause(target_of.keys())
        for source, keys in sorted(by_source.items()):
            self.abortable_queues[source].put(ExtractKeys(keys=keys))
        report.moved_keys = len(target_of)
        report.source_workers = sorted(by_source)
        self._pending = _PendingMigration(
            report, target_of, expected_shipments=len(by_source), started=started
        )
        self.finish_pending()
        return report

    def set_queues(self, worker_queues: Sequence[Any]) -> None:
        """Point the controller at a resized worker-queue list (elastic scale)."""
        if self._pending is not None:
            raise RuntimeError(
                "cannot replace worker queues with a live migration in flight"
            )
        self.abortable_queues = list(worker_queues)

    def poll(self) -> None:
        """Advance an in-flight hand-off without blocking (dispatch-loop hook)."""
        self._advance(blocking=False)

    def finish_pending(self) -> None:
        """Run an in-flight hand-off to completion (interval/shutdown barrier)."""
        self._advance(blocking=True)

    def _advance(self, *, blocking: bool) -> None:
        pending = self._pending
        if pending is None:
            return
        if pending.phase == "ship":
            # Copy-mode (checkpoint) shipments carry non-empty counters and
            # belong to the supervisor, never to a migration — a stray one
            # (e.g. duplicated across a mid-checkpoint recovery) must not be
            # mistaken for a source's hand-off.
            while len(pending.shipments) < pending.expected_shipments:
                missing = pending.expected_shipments - len(pending.shipments)
                arrived = (
                    self.mailbox.collect(StateShipment, missing)
                    if blocking
                    else self.mailbox.drain(StateShipment)
                )
                pending.shipments.extend(
                    shipment for shipment in arrived if not shipment.counters
                )
                if not blocking:
                    break
            if len(pending.shipments) < pending.expected_shipments:
                return
            self._install(pending)
        if pending.phase == "ack":
            acked = (
                self.mailbox.collect(InstallAck, pending.expected_acks)
                if blocking
                else self.mailbox.drain(InstallAck)
            )
            pending.expected_acks -= len(acked)
            if pending.expected_acks > 0:
                return
            self._resume(pending)

    def _install(self, pending: _PendingMigration) -> None:
        report = pending.report
        per_target: Dict[int, List[Tuple[Key, Any]]] = {}
        for shipment in pending.shipments:
            report.moved_state += shipment.state_size
            for key, snapshot in shipment.entries:
                per_target.setdefault(pending.target_of[key], []).append(
                    (key, snapshot)
                )
        for target, entries in sorted(per_target.items()):
            self.abortable_queues[target].put(InstallState(entries=entries))
        report.target_workers = sorted(per_target)
        pending.expected_acks = len(per_target)
        pending.phase = "ack"

    def _resume(self, pending: _PendingMigration) -> None:
        report = pending.report
        report.released_tuples = self.router.resume()
        report.pause_seconds = time.monotonic() - pending.started
        self._pending = None

    # -- aggregates ----------------------------------------------------------------

    @property
    def migration_in_flight(self) -> bool:
        return self._pending is not None

    @property
    def total_pause_seconds(self) -> float:
        return sum(report.pause_seconds for report in self.migrations)

    @property
    def total_moved_keys(self) -> int:
        return sum(report.moved_keys for report in self.migrations)

    @property
    def rebalance_count(self) -> int:
        return len(self.migrations)
