"""Source processes feeding a topology: closed-loop drain or open-loop pacing.

The source is a separate process speaking the same producer protocol as an
upstream stage's workers (:class:`~repro.runtime.messages.EmittedBatch` +
:class:`~repro.runtime.messages.UpstreamMark` / ``UpstreamDone``), so the
first stage's router treats "the outside world" exactly like any other
upstream producer.

Two offering disciplines:

* **Closed loop** (``rate=None``, the default): batches are put as fast as
  the bounded source queue accepts them.  The system runs saturated — the
  drain rate *is* the measurement — which is the paper's throughput setup,
  but latency below saturation is unobservable.
* **Open loop** (``rate`` in tuples/second): each batch is *scheduled* on a
  fixed timetable (batch ``n`` at ``start + offered/rate``) and ``origin_at``
  is stamped with the scheduled offer time, not the actual put time.  When
  the system falls behind, the blocking put delays subsequent offers but the
  stamps still accrue the wait — measured latency is then free of coordinated
  omission, and per-stage latency below saturation becomes measurable.

The stream itself is a materialised list of per-interval tuple lists (the
bench helpers expand the repo's snapshot generators or replay recorded
traces into this shape).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.messages import EmittedBatch, UpstreamDone, UpstreamMark
from repro.runtime.queues import QueueAborted, abortable_put

__all__ = ["SOURCE_ORIGIN", "SOURCE_PRODUCER_ID", "source_main"]

Key = Hashable

#: Producer id the source uses in its marks (a topology has one source).
SOURCE_PRODUCER_ID = 0

#: Edge label the source stamps onto its messages; reserved — no stage of a
#: topology may take this name.
SOURCE_ORIGIN = "source"


def source_main(
    stream: Sequence[List[Tuple[Key, Any]]],
    out_queue: Any,
    batch_size: int,
    rate_tuples_per_s: Optional[float] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> None:
    """Entry point of the source process (must stay module-level picklable).

    Offers ``stream``'s tuples interval by interval in ``batch_size`` chunks,
    each followed by its interval mark and finally an end-of-stream mark.
    ``out_queue`` is one queue (a chain's first stage) or a list of queues
    (a DAG whose source fans out to several stages): data chunks round-robin
    across the consumers — each gets a disjoint share of the stream — while
    every interval/end-of-stream mark is replicated to every consumer.

    Offer puts are abort-aware (``should_abort`` defaults to "my parent
    process died"): a source blocked on a full queue whose topology already
    tore down exits cleanly instead of outliving the run.
    """
    try:
        _source_loop(stream, out_queue, batch_size, rate_tuples_per_s, should_abort)
    except QueueAborted:
        # The coordinator is gone; nobody will drain the queue again.
        return


def _source_loop(
    stream: Sequence[List[Tuple[Key, Any]]],
    out_queue: Any,
    batch_size: int,
    rate_tuples_per_s: Optional[float],
    should_abort: Optional[Callable[[], bool]],
) -> None:
    outs = list(out_queue) if isinstance(out_queue, (list, tuple)) else [out_queue]
    interval_pace = 1.0 / rate_tuples_per_s if rate_tuples_per_s else 0.0
    started = time.monotonic()
    offered = 0
    chunks_sent = 0
    for interval, tuples in enumerate(stream):
        # Split once per interval into the columnar batch layout; slices of
        # the two flat lists are then cheap to chunk and pickle.
        keys = [key for key, _ in tuples]
        values = [value for _, value in tuples]
        for index in range(0, len(keys), batch_size):
            chunk_keys = keys[index : index + batch_size]
            chunk_values = values[index : index + batch_size]
            if interval_pace:
                scheduled = started + offered * interval_pace
                delay = scheduled - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                origin = scheduled
            else:
                origin = time.monotonic()
            abortable_put(
                outs[chunks_sent % len(outs)],
                EmittedBatch(
                    interval=interval,
                    origin_at=origin,
                    keys=chunk_keys,
                    values=chunk_values,
                    origin=SOURCE_ORIGIN,
                ),
                should_abort,
            )
            chunks_sent += 1
            offered += len(chunk_keys)
        for out in outs:
            abortable_put(
                out,
                UpstreamMark(
                    producer_id=SOURCE_PRODUCER_ID,
                    interval=interval,
                    origin=SOURCE_ORIGIN,
                ),
                should_abort,
            )
    for out in outs:
        abortable_put(
            out,
            UpstreamDone(producer_id=SOURCE_PRODUCER_ID, origin=SOURCE_ORIGIN),
            should_abort,
        )
