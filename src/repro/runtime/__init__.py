"""Process-parallel streaming runtime.

Where :mod:`repro.engine.simulator` *models* an interval as a fluid
single-server queue, this package *executes* it as a dataflow **topology**: a
:class:`TopologySpec` chains stages, each stage owning a group of worker
processes (one :class:`~repro.engine.operator.Task` instance per process), a
:class:`~repro.runtime.router.StreamRouter` dispatching micro-batches via the
strategy registry's :meth:`~repro.baselines.base.Partitioner.assign_batch`
fast path, and a :class:`~repro.runtime.controller.RuntimeController` running
the paper's rebalancing planner online at interval boundaries with **live key
migration** (pause-key → ship :class:`~repro.engine.state.KeyedState` →
resume, the real wall-clock pause measured).  Every queue — worker inbound
and inter-stage egress — is bounded, so backpressure chains upstream exactly
as Storm's backpushing does, reproducing the paper's Fig. 16 chained
starvation on real processes.  A separate source process offers tuples
closed-loop (saturated drain) or open-loop at a fixed rate
(:mod:`repro.runtime.source`), making latency below saturation measurable.
:class:`LocalRuntime` is the one-stage special case.

Per-worker throughput counters and latency histograms (lifetime plus
per-interval deltas) aggregate into
:class:`~repro.engine.metrics.MetricsCollector`-compatible results, so fluid
and process runs are directly comparable.  Workers emulate a fixed per-task
service capacity (``service_time_us`` per cost unit, enforced by pacing —
optionally calibrated from the first measured interval), mirroring the
paper's saturated-CPU setup: measured throughput then degrades with workload
imbalance even when the host has fewer cores than workers, because paced
(sleeping) workers overlap.
"""

from repro.runtime.bench import (
    BENCH_TOPOLOGY_WORKLOADS,
    BENCH_WORKLOADS,
    RuntimeSpec,
    run_bench,
    write_bench_report,
)
from repro.runtime.controller import LiveMigrationReport, RuntimeController
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.local import LocalRuntime, RuntimeConfig, RuntimeResult
from repro.runtime.router import StreamRouter
from repro.runtime.topology import (
    StageSpec,
    TopologyResult,
    TopologyRuntime,
    TopologySpec,
)

__all__ = [
    "BENCH_TOPOLOGY_WORKLOADS",
    "BENCH_WORKLOADS",
    "LatencyHistogram",
    "LiveMigrationReport",
    "LocalRuntime",
    "RuntimeConfig",
    "RuntimeController",
    "RuntimeResult",
    "RuntimeSpec",
    "StageSpec",
    "StreamRouter",
    "TopologyResult",
    "TopologyRuntime",
    "TopologySpec",
    "run_bench",
    "write_bench_report",
]
