"""Process-parallel streaming runtime.

Where :mod:`repro.engine.simulator` *models* an interval as a fluid
single-server queue, this package *executes* it: a :class:`LocalRuntime`
spawns N worker processes (``multiprocessing``), each hosting one
:class:`~repro.engine.operator.Task` instance of the operator under study,
fed through bounded queues (natural backpressure: the dispatcher blocks when
the slowest worker's queue is full, exactly Storm's backpushing effect).  A
:class:`~repro.runtime.router.StreamRouter` dispatches micro-batches using the
strategy registry's :meth:`~repro.baselines.base.Partitioner.assign_batch`
fast path; a :class:`~repro.runtime.controller.RuntimeController` runs the
paper's rebalancing planner online at interval boundaries and drives **live
key migration** between workers (pause-key → ship
:class:`~repro.engine.state.KeyedState` → resume), measuring the real
wall-clock pause.  Per-worker throughput counters and latency histograms are
aggregated into :class:`~repro.engine.metrics.MetricsCollector`-compatible
results, so fluid and process runs are directly comparable.

Workers emulate a fixed per-task service capacity (``service_time_us`` per
cost unit, enforced by pacing), mirroring the paper's saturated-CPU setup:
measured throughput then degrades with workload imbalance even when the host
has fewer cores than workers, because paced (sleeping) workers overlap.
"""

from repro.runtime.bench import (
    BENCH_WORKLOADS,
    RuntimeSpec,
    run_bench,
    write_bench_report,
)
from repro.runtime.controller import LiveMigrationReport, RuntimeController
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.local import LocalRuntime, RuntimeConfig, RuntimeResult
from repro.runtime.router import StreamRouter

__all__ = [
    "BENCH_WORKLOADS",
    "LatencyHistogram",
    "LiveMigrationReport",
    "LocalRuntime",
    "RuntimeConfig",
    "RuntimeController",
    "RuntimeResult",
    "RuntimeSpec",
    "StreamRouter",
    "run_bench",
    "write_bench_report",
]
