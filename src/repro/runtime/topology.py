"""The multi-stage process topology runtime.

This is the execution core of :mod:`repro.runtime`: a
:class:`TopologySpec` chains :class:`StageSpec` s — each stage owning its own
group of worker processes, its own partitioner (and therefore its own online
rebalancing strategy + live key migration), and its own
:class:`~repro.runtime.router.StreamRouter` — into a dataflow pipeline::

    source ──▶ [router₀]──▶ workers₀ ──▶ [router₁]──▶ workers₁ ──▶ …
    (process)     │  bounded FIFO │ egress   │  bounded FIFO │
                  ▼               ▼          ▼               ▼
              controller₀     (bounded)  controller₁      final stage

Every queue is bounded, so backpressure chains: a slow task in stage *k*
fills its inbound queue, blocks stage *k*'s router thread, stops it draining
stage *k−1*'s egress queue, blocks the upstream workers' emit puts — and the
stall propagates to the source.  That is the paper's Fig. 16 effect ("the
data imbalance slows down the previous join operator … and suspends the
processing on downstream join operators"), reproduced on real processes and
measured on the wall clock.

The coordinator process runs one router thread per stage (threads spend
their time in blocking queue operations, which release the GIL, so stages
genuinely overlap) plus a per-stage :class:`~repro.runtime.controller.
RuntimeController` executing any registered rebalancing strategy online.
The source is a separate process (:mod:`repro.runtime.source`) offering
tuples either closed-loop (drain, the saturated-throughput setup) or
open-loop at a fixed rate (latency below saturation becomes measurable).

Single-stage execution (:class:`~repro.runtime.local.LocalRuntime`) is the
one-stage special case of this machinery.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.sanitizer import (
    SanitizedQueue,
    SanitizerReport,
    StageSanitizer,
)
from repro.baselines.base import Partitioner
from repro.core.load import max_balance_indicator, max_skewness
from repro.core.statistics import IntervalStats
from repro.engine.metrics import IntervalMetrics, MetricsCollector
from repro.engine.operator import OperatorLogic
from repro.runtime.controller import LiveMigrationReport, RuntimeController
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.messages import (
    CrashSelf,
    EmittedBatch,
    EndInterval,
    EndOfStream,
    ExtractKeys,
    FinalReport,
    IntervalReport,
    StateShipment,
    UpstreamDone,
    UpstreamMark,
    WorkerError,
)
from repro.runtime.resilience.checkpoint import CheckpointStore
from repro.runtime.resilience.scaling import (
    ScaleDirective,
    ScaleEvent,
    execute_scale,
)
from repro.runtime.resilience.supervisor import (
    KillDirective,
    LoggedQueue,
    RetentionLog,
    StageSupervisor,
    parse_kill_spec,
)
from repro.runtime.router import StreamRouter
from repro.runtime.source import SOURCE_ORIGIN, source_main
from repro.runtime.worker import worker_main

__all__ = [
    "MarkBarrier",
    "RuntimeConfig",
    "RuntimeResult",
    "StageSpec",
    "TopologySpec",
    "TopologyResult",
    "TopologyRuntime",
    "calibrated_service_time_us",
]

Key = Hashable
TupleStream = Iterable[List[Tuple[Key, Any]]]

#: Poll period of abort-aware blocking queue operations, seconds.
_POLL_SECONDS = 0.1


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the process runtime.

    Attributes
    ----------
    parallelism:
        Number of worker processes of a *single-stage* run
        (:class:`~repro.runtime.local.LocalRuntime`); topologies take each
        stage's parallelism from its partitioner instead.
    batch_size:
        Tuples per dispatched micro-batch.
    queue_capacity:
        Bound of each worker's inbound queue and of every inter-stage egress
        queue, in batches; a full queue blocks the producer (backpressure)
        or sheds (see ``shed_timeout_seconds``).
    service_time_us:
        Emulated service time per cost unit (pacing); 0 disables pacing and
        the workers run as fast as the host CPU allows.
    offered_rate:
        Open-loop source rate in tuples/second; ``None`` (default) is the
        closed-loop drain.
    calibrate_pacing:
        Adaptive pacing: run the first interval unpaced, measure each
        stage's drain speed on *this* host, then install
        ``service_time_us = headroom × elapsed × parallelism / cost`` so the
        bench stays saturated across machines of different speed (the
        configured ``service_time_us`` is ignored).
    calibration_headroom:
        Target mean per-worker utilisation of the calibrated pacing,
        relative to the unpaced drain rate; > 1 makes service capacity the
        bottleneck so imbalance costs measurable throughput.
    shed_timeout_seconds:
        When set, a dispatch blocked longer than this sheds the batch (the
        drop is recorded per task); ``None`` means pure backpressure.
    collect_final_state:
        Ask workers to report their final windowed per-key payloads
        (correctness tests; expensive for large state).
    sanitize:
        Enable the runtime protocol sanitizer
        (:mod:`repro.analysis.sanitizer`): invariant checks on every
        coordinator→worker send, interval close, and pause/resume, plus
        end-of-run tuple conservation; violations are recorded into the
        result's ``sanitizer`` report instead of raised.  Also enabled by
        the ``REPRO_SANITIZE`` environment variable.
    start_method:
        ``multiprocessing`` start method; default picks ``fork`` when the
        platform offers it, else ``spawn``.
    join_timeout_seconds:
        How long to wait for replies/workers before declaring the run wedged.
    checkpoint_dir:
        Run-scoped checkpoint root; setting it turns the resilience
        subsystem on — periodic per-task ``KeyedState`` snapshots at
        interval boundaries and supervised recovery (respawn + restore +
        replay) instead of abort when a worker process dies.
    checkpoint_every:
        Snapshot cadence in intervals (1 = every boundary).
    kill_worker:
        Fault injection: ``(stage, task, interval)`` — the named stage's
        coordinator SIGKILLs that worker when it first sees traffic of the
        interval (also via the ``REPRO_KILL=STAGE:TASK@INTERVAL`` env var).
    scale_at:
        Elasticity: ``(interval, stage, delta)`` — grow/shrink the stage's
        process group by ``delta`` workers when the interval closes,
        live-migrating the keys whose assignment changes.
    """

    parallelism: int = 4
    batch_size: int = 256
    queue_capacity: int = 8
    service_time_us: float = 50.0
    offered_rate: Optional[float] = None
    calibrate_pacing: bool = False
    calibration_headroom: float = 2.0
    shed_timeout_seconds: Optional[float] = None
    collect_final_state: bool = False
    sanitize: bool = False
    start_method: Optional[str] = None
    join_timeout_seconds: float = 120.0
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    kill_worker: Optional[Tuple[str, int, int]] = None
    scale_at: Optional[Tuple[int, str, int]] = None

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.service_time_us < 0:
            raise ValueError("service_time_us must be non-negative")
        if self.offered_rate is not None and self.offered_rate <= 0:
            raise ValueError("offered_rate must be positive (or None)")
        if self.calibration_headroom <= 0:
            raise ValueError("calibration_headroom must be positive")
        if self.join_timeout_seconds <= 0:
            raise ValueError("join_timeout_seconds must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.kill_worker is not None:
            stage, task, interval = self.kill_worker
            if not stage or task < 0 or interval < 0:
                raise ValueError(
                    f"kill_worker needs (stage, task >= 0, interval >= 0), "
                    f"got {self.kill_worker!r}"
                )
        if self.scale_at is not None:
            interval, stage, delta = self.scale_at
            if not stage or interval < 0 or delta == 0:
                raise ValueError(
                    f"scale_at needs (interval >= 0, stage, delta != 0), "
                    f"got {self.scale_at!r}"
                )


def calibrated_service_time_us(
    cost: float,
    elapsed_seconds: float,
    parallelism: int,
    headroom: float = 2.0,
) -> float:
    """Pacing that saturates ``parallelism`` workers at a measured drain rate.

    The unpaced first interval delivered ``cost`` cost units in
    ``elapsed_seconds``; pacing each unit at the returned service time makes
    the *mean* per-worker utilisation ``headroom`` at that offered rate — so
    with ``headroom > 1`` the service capacity (not the host CPU or the
    router) is the bottleneck, on any machine.
    """
    if cost <= 0 or elapsed_seconds <= 0 or parallelism <= 0:
        return 0.0
    return headroom * elapsed_seconds * parallelism / cost * 1e6


@dataclass(frozen=True)
class StageSpec:
    """One stage of a topology: an operator, its routing, its re-keying.

    ``partitioner`` fixes the stage's parallelism (one worker process per
    task) and, through its ``on_interval_end`` hook, the stage's online
    rebalancing strategy.  ``key_mapper`` re-keys the stage's *output*
    tuples for the next stage (e.g. the Q5 order-join re-keys by customer);
    it runs inside the stage's workers, so it must be picklable.

    ``upstream`` names the stages feeding this one and makes the topology a
    DAG.  ``None`` (the default) keeps the classic chain reading — "the
    previous stage in the list" (the source for the first stage).  An empty
    tuple pins the stage directly to the source, so several stages can fan
    out from it; a tuple of names fans several producer stages into this one
    (the names must appear *earlier* in the stage list, which makes every
    spec acyclic by construction).
    """

    name: str
    logic: OperatorLogic
    partitioner: Partitioner
    key_mapper: Optional[Callable[[Key], Key]] = None
    upstream: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if self.upstream is not None:
            object.__setattr__(self, "upstream", tuple(self.upstream))

    @property
    def parallelism(self) -> int:
        return self.partitioner.num_tasks


@dataclass(frozen=True)
class TopologySpec:
    """A DAG of stages fed by one source (a chain being the common case)."""

    name: str
    stages: Tuple[StageSpec, ...]

    def __init__(self, name: str, stages: Sequence[StageSpec]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "stages", tuple(stages))
        if not self.name:
            raise ValueError("topology name must be non-empty")
        if not self.stages:
            raise ValueError("a topology needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate stage names in topology: {names}")
        if SOURCE_ORIGIN in names:
            raise ValueError(
                f"stage name {SOURCE_ORIGIN!r} is reserved for the source"
            )
        # Resolve each stage's upstream edges.  Referencing only *earlier*
        # stages keeps the graph acyclic without a separate cycle check.
        upstreams: Dict[str, Tuple[str, ...]] = {}
        earlier: set = set()
        for index, stage in enumerate(self.stages):
            if stage.upstream is None:
                resolved = (
                    (SOURCE_ORIGIN,)
                    if index == 0
                    else (self.stages[index - 1].name,)
                )
            elif not stage.upstream:
                resolved = (SOURCE_ORIGIN,)
            else:
                resolved = stage.upstream
                if len(set(resolved)) != len(resolved):
                    raise ValueError(
                        f"stage {stage.name!r} lists a duplicate upstream: "
                        f"{resolved}"
                    )
                for upstream_name in resolved:
                    if upstream_name == SOURCE_ORIGIN:
                        continue
                    if upstream_name not in earlier:
                        raise ValueError(
                            f"stage {stage.name!r} upstream {upstream_name!r} "
                            f"must name an earlier stage (have "
                            f"{sorted(earlier) or ['<source only>']})"
                        )
            upstreams[stage.name] = resolved
            earlier.add(stage.name)
        object.__setattr__(self, "_upstreams", upstreams)
        # Every stage except the last must feed someone, or its emissions
        # would pile into an egress nobody drains; the last stage is the
        # topology's single sink (its output is the end-to-end result).
        consumed = {name for edges in upstreams.values() for name in edges}
        for stage in self.stages[:-1]:
            if stage.name not in consumed:
                raise ValueError(
                    f"stage {stage.name!r} has no downstream consumer "
                    f"(only the final stage may be a sink)"
                )
        if self.stages[-1].name in consumed:
            raise ValueError(
                f"final stage {self.stages[-1].name!r} must be the sink, "
                f"but another stage consumes it"
            )

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def upstreams_of(self, name: str) -> Tuple[str, ...]:
        """The resolved upstream edge origins of ``name`` (source included)."""
        return self._upstreams[name]

    def consumers_of(self, name: str) -> List[str]:
        """The stages fed by ``name``, in stage-list order."""
        return [
            stage.name
            for stage in self.stages
            if name in self._upstreams[stage.name]
        ]

    @property
    def is_chain(self) -> bool:
        """True when every stage has exactly the classic linear wiring."""
        return all(
            self._upstreams[stage.name]
            == ((SOURCE_ORIGIN,) if index == 0 else (self.stages[index - 1].name,))
            for index, stage in enumerate(self.stages)
        )


@dataclass
class RuntimeResult:
    """Measured outcome of one stage (or of a whole single-stage run)."""

    label: str
    metrics: MetricsCollector
    latency: LatencyHistogram
    tuples_offered: int = 0
    tuples_processed: int = 0
    tuples_shed: float = 0.0
    wall_seconds: float = 0.0
    migrations: List[LiveMigrationReport] = field(default_factory=list)
    final_reports: Dict[int, FinalReport] = field(default_factory=dict)
    final_state: Dict[Key, List[Any]] = field(default_factory=dict)
    shed_by_task: Dict[int, float] = field(default_factory=dict)
    #: Per-interval latency histogram deltas (merged across the stage's
    #: workers); they sum to :attr:`latency` and give Fig. 13(b)-style
    #: latency-over-time from measured buckets.
    interval_latency: Dict[int, LatencyHistogram] = field(default_factory=dict)
    #: End-to-end (source-offer to completion) histogram; populated on the
    #: final stage of a topology, empty elsewhere.
    e2e_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Pacing installed by the adaptive calibration (``None`` = not calibrated).
    calibrated_service_time_us: Optional[float] = None
    #: Protocol-sanitizer report of the run (``None`` = sanitizer off); the
    #: report is run-global, so every stage of one topology shares it.
    sanitizer: Optional[Dict[str, Any]] = None
    #: Resilience accounting of this stage (``None`` = subsystem off):
    #: ``{"incidents": [...], "scale_events": [...], "checkpoints": {...}}``.
    resilience: Optional[Dict[str, Any]] = None
    #: Number of upstream edges feeding this stage (source included); ≥ 2
    #: marks a fan-in consumer whose intervals close on the multi-origin
    #: mark barrier.  0 for single-stage runs that bypass the topology.
    upstreams: int = 0
    #: Cumulative split-key routing statistics (``None`` unless the stage's
    #: partitioner splits keys — see :meth:`StreamRouter.snapshot_split_stats`).
    split_stats: Optional[Dict[str, float]] = None

    @property
    def tuples_per_second(self) -> float:
        return self.tuples_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def pause_seconds_total(self) -> float:
        return sum(report.pause_seconds for report in self.migrations)

    @property
    def moved_keys_total(self) -> int:
        return sum(report.moved_keys for report in self.migrations)

    def summary(self) -> Dict[str, float]:
        """Headline numbers (one bench table row)."""
        row: Dict[str, float] = {
            "tuples": float(self.tuples_processed),
            "wall_seconds": self.wall_seconds,
            "tuples_per_second": self.tuples_per_second,
        }
        row.update(self.summary_latency())
        row.update(
            {
                "rebalances": float(len(self.migrations)),
                "moved_keys": float(self.moved_keys_total),
                "pause_seconds": self.pause_seconds_total,
                "shed_tuples": float(self.tuples_shed),
            }
        )
        return row

    def summary_latency(self) -> Dict[str, float]:
        summary = self.latency.summary_ms()
        summary.pop("samples", None)
        summary.pop("latency_max_ms", None)
        return summary


@dataclass
class TopologyResult:
    """Measured outcome of one topology run: one RuntimeResult per stage."""

    label: str
    stages: Dict[str, RuntimeResult]
    wall_seconds: float = 0.0
    tuples_offered: int = 0
    #: Protocol-sanitizer report (``None`` = sanitizer off).
    sanitizer: Optional[Dict[str, Any]] = None

    @property
    def stage_names(self) -> List[str]:
        return list(self.stages)

    @property
    def final(self) -> RuntimeResult:
        """The last stage — its processed count is the chain's output."""
        return self.stages[next(reversed(self.stages))]

    @property
    def first(self) -> RuntimeResult:
        return self.stages[next(iter(self.stages))]

    @property
    def e2e_latency(self) -> LatencyHistogram:
        return self.final.e2e_latency

    @property
    def migrations(self) -> List[LiveMigrationReport]:
        return [report for stage in self.stages.values() for report in stage.migrations]

    @property
    def tuples_processed(self) -> int:
        """Tuples completed by the final stage (end-to-end output)."""
        return self.final.tuples_processed

    @property
    def resilience(self) -> Optional[Dict[str, Any]]:
        """Merged resilience accounting across stages (``None`` = off)."""
        merged: Dict[str, Any] = {
            "incidents": [],
            "scale_events": [],
            "checkpoints": {"count": 0.0, "bytes_written": 0.0, "write_seconds": 0.0},
        }
        enabled = False
        for stage in self.stages.values():
            data = stage.resilience
            if data is None:
                continue
            enabled = True
            merged["incidents"].extend(data.get("incidents", []))
            merged["scale_events"].extend(data.get("scale_events", []))
            for key, value in data.get("checkpoints", {}).items():
                merged["checkpoints"][key] = (
                    merged["checkpoints"].get(key, 0.0) + value
                )
        return merged if enabled else None

    @property
    def tuples_shed(self) -> float:
        return sum(stage.tuples_shed for stage in self.stages.values())

    @property
    def tuples_per_second(self) -> float:
        return self.tuples_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Chain-level headline row (same keys as a stage summary).

        Latency percentiles come from the final stage's measured end-to-end
        histogram (source offer → completion), so they include every queue
        and every stage of the chain.
        """
        e2e = self.e2e_latency.summary_ms()
        return {
            "tuples": float(self.tuples_processed),
            "wall_seconds": self.wall_seconds,
            "tuples_per_second": self.tuples_per_second,
            "latency_p50_ms": e2e["latency_p50_ms"],
            "latency_p99_ms": e2e["latency_p99_ms"],
            "latency_mean_ms": e2e["latency_mean_ms"],
            "rebalances": float(sum(len(s.migrations) for s in self.stages.values())),
            "moved_keys": float(sum(s.moved_keys_total for s in self.stages.values())),
            "pause_seconds": sum(s.pause_seconds_total for s in self.stages.values()),
            "shed_tuples": float(self.tuples_shed),
        }


# -- coordination plumbing ---------------------------------------------------------


class _Aborted(Exception):
    """Raised inside stage threads when another stage already failed."""


class _AbortFlag:
    """First-error latch shared by every stage thread of one run."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.error: Optional[str] = None

    def trip(self, stage: str, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = f"stage {stage!r}: {exc}"
        self._event.set()

    def check(self) -> None:
        if self._event.is_set():
            raise _Aborted()

    @property
    def tripped(self) -> bool:
        return self._event.is_set()


class _AbortableQueue:
    """A put-side queue proxy whose blocking waits stay interruptible.

    ``checker`` is called between short waits; it raises (worker crashed,
    sibling stage failed, run wedged) to unwind the caller instead of
    blocking forever on a queue nobody will ever drain again.
    """

    def __init__(self, queue: Any, checker: Callable[[], None]) -> None:
        self._queue = queue
        self._checker = checker

    def replace(self, queue: Any) -> None:
        """Swap the inner queue in place (worker respawned on a fresh one).

        A put blocked on the dead worker's full queue re-reads ``_queue``
        every retry, so the swap redirects it mid-wait — the wrapping
        logged/sanitized chain and every list holding this proxy stay valid.
        """
        self._queue = queue

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        if timeout is not None:
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise queue_module.Full
                try:
                    return self._queue.put(
                        item, timeout=min(remaining, _POLL_SECONDS)
                    )
                except queue_module.Full:
                    self._checker()
            # unreachable
        while True:
            try:
                return self._queue.put(item, timeout=_POLL_SECONDS)
            except queue_module.Full:
                self._checker()


class _Mailbox:
    """Demultiplexes one stage's outbound queue by message type.

    Replies from workers (interval reports, state shipments, install acks,
    final reports) interleave arbitrarily; consumers ask for a specific type
    and everything else is stashed for later.  ``checker`` (when given) is
    polled during blocking collects so a sibling-stage failure interrupts
    the wait.
    """

    def __init__(
        self,
        out_queue: Any,
        timeout_seconds: float,
        checker: Optional[Callable[[], None]] = None,
    ) -> None:
        self._queue = out_queue
        self._timeout = timeout_seconds
        self._checker = checker
        self._pending: List[Any] = []

    def _check(self, message: Any) -> Any:
        if isinstance(message, WorkerError):
            raise RuntimeError(
                f"worker {message.worker_id} crashed:\n{message.message}"
            )
        return message

    def _take_pending(self, message_type: Type, limit: Optional[int]) -> List[Any]:
        matched: List[Any] = []
        remaining: List[Any] = []
        for message in self._pending:
            if isinstance(message, message_type) and (
                limit is None or len(matched) < limit
            ):
                matched.append(message)
            else:
                remaining.append(message)
        self._pending = remaining
        return matched

    def collect(self, message_type: Type, expected: int) -> List[Any]:
        """Block until ``expected`` messages of ``message_type`` arrived."""
        matched = self._take_pending(message_type, expected)
        deadline = time.monotonic() + self._timeout
        while len(matched) < expected:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise RuntimeError(
                    f"timed out waiting for {expected} {message_type.__name__} "
                    f"replies (got {len(matched)})"
                )
            if self._checker is not None:
                # The checker may pump the queue into the pending stash
                # (check_errors), so re-examine it every pass.
                self._checker()
                matched.extend(
                    self._take_pending(message_type, expected - len(matched))
                )
                if len(matched) >= expected:
                    break
            try:
                message = self._check(
                    self._queue.get(timeout=min(timeout, _POLL_SECONDS))
                )
            except queue_module.Empty:
                continue
            if isinstance(message, message_type):
                matched.append(message)
            else:
                self._pending.append(message)
        return matched

    def drain(self, message_type: Type) -> List[Any]:
        """Every already-available message of ``message_type`` (non-blocking)."""
        self.check_errors()
        return self._take_pending(message_type, None)

    def check_errors(self) -> None:
        """Pump the queue without blocking; raise if a worker crashed."""
        while True:
            try:
                message = self._check(self._queue.get_nowait())
            except queue_module.Empty:
                break
            self._pending.append(message)


class MarkBarrier:
    """Fan-in interval barrier: per-origin producer marks gate each close.

    One consumer stage may be fed by several upstream *origins* (the source
    process and/or producer stages).  The barrier tracks, independently per
    origin, the producer-count timeline of the PR 7 resize machinery —
    ``(from_interval, count)`` entries appended when an upstream stage
    resizes — plus the per-``(origin, producer)`` mark floors that dedup
    post-recovery replays.  :meth:`observe_mark` returns ``True`` exactly
    when its interval became closable: **every** origin's expected producer
    count for that interval has marked it.

    Because each producer marks its intervals in increasing order on a FIFO
    edge, interval ``k+1`` can only complete after every producer already
    marked ``k`` — so closable intervals emerge in order even across
    origins, without the barrier having to re-order anything.

    The class is deliberately free of queue/process machinery so protocol
    tests can drive arbitrary mark/done/resize interleavings directly.
    """

    def __init__(self, producers: Mapping[str, int]) -> None:
        if not producers:
            raise ValueError("a mark barrier needs at least one upstream origin")
        for origin, count in producers.items():
            if count < 1:
                raise ValueError(
                    f"origin {origin!r} needs a positive producer count, "
                    f"got {count}"
                )
        self._lock = threading.Lock()
        self._counts: Dict[str, List[Tuple[int, int]]] = {
            origin: [(0, int(count))] for origin, count in producers.items()
        }
        self._expected_done = sum(int(count) for count in producers.values())
        self._done = 0
        #: Last accepted mark interval per (origin, producer): replays
        #: re-emit marks the consumer already counted, and a non-advancing
        #: mark is a duplicate.
        self._mark_floor: Dict[Tuple[str, int], int] = {}
        #: Marks arrived per open interval, split by origin.
        self._marks: Dict[int, Dict[str, int]] = {}

    @property
    def origins(self) -> Tuple[str, ...]:
        return tuple(self._counts)

    @property
    def finished(self) -> bool:
        """True once every expected producer sent its end-of-stream."""
        with self._lock:
            return self._done >= self._expected_done

    def expected_marks(self, origin: str, interval: int) -> int:
        """``origin``'s producer count in effect for ``interval``'s marks."""
        with self._lock:
            return self._expected_locked(origin, interval)

    def _expected_locked(self, origin: str, interval: int) -> int:
        timeline = self._counts[origin]
        expected = timeline[0][1]
        for start, count in timeline:
            if interval >= start:
                expected = count
        return expected

    def observe_mark(
        self, origin: str, producer: int, interval: int
    ) -> Tuple[bool, bool]:
        """Count one producer mark.

        Returns ``(accepted, closable)``: ``accepted`` is False for a
        duplicate (a replayed mark at or below the edge's floor), and
        ``closable`` is True exactly when this mark completed ``interval``
        across every origin.
        """
        with self._lock:
            if origin not in self._counts:
                raise KeyError(
                    f"mark from unknown upstream origin {origin!r} "
                    f"(expected one of {sorted(self._counts)})"
                )
            edge = (origin, producer)
            floor = self._mark_floor.get(edge)
            if floor is not None and interval <= floor:
                return False, False
            self._mark_floor[edge] = interval
            arrived = self._marks.setdefault(interval, {})
            arrived[origin] = arrived.get(origin, 0) + 1
            for other, timeline in self._counts.items():
                if arrived.get(other, 0) < self._expected_locked(other, interval):
                    return True, False
            del self._marks[interval]
            return True, True

    def observe_done(self, origin: str) -> None:
        """Count one producer's end-of-stream."""
        with self._lock:
            if origin not in self._counts:
                raise KeyError(
                    f"end-of-stream from unknown upstream origin {origin!r} "
                    f"(expected one of {sorted(self._counts)})"
                )
            self._done += 1

    def resize(
        self, origin: str, from_interval: int, count: int, done_delta: int
    ) -> None:
        """An upstream origin resized: new producer count from an interval on.

        Appends to ``origin``'s timeline and adjusts the expected
        end-of-stream count (scale-out adds producers; scale-in's drained
        workers still send their own done, so shrink passes zero).
        """
        with self._lock:
            if origin not in self._counts:
                raise KeyError(
                    f"resize of unknown upstream origin {origin!r} "
                    f"(expected one of {sorted(self._counts)})"
                )
            self._counts[origin].append((int(from_interval), int(count)))
            self._expected_done += int(done_delta)


class _StageLoop(threading.Thread):
    """The router thread of one stage: ingress → route → workers.

    Consumes the stage's shared ingress queue (fed by the source and/or by
    every upstream stage's workers), dispatches batches through the stage's
    :class:`StreamRouter`, closes intervals when every upstream origin's
    producers have marked them (planning + live migration via the stage's
    :class:`RuntimeController`), and finally collects the workers' reports.
    """

    def __init__(
        self,
        spec: StageSpec,
        config: RuntimeConfig,
        ingress: Any,
        worker_queues: Sequence[Any],
        out_queue: Any,
        workers: Sequence[Any],
        upstream_producers: Mapping[str, int],
        abort: _AbortFlag,
        source_process: Optional[Any] = None,
        sanitizer: Optional[StageSanitizer] = None,
        supervisor: Optional[StageSupervisor] = None,
        worker_factory: Optional[Callable[[int, Any, float], Any]] = None,
        queue_factory: Optional[Callable[[], Any]] = None,
        initial_service_us: float = 0.0,
        kill: Optional[KillDirective] = None,
        scale: Optional[ScaleDirective] = None,
    ) -> None:
        super().__init__(name=f"repro-stage-{spec.name}", daemon=True)
        self.spec = spec
        self.config = config
        self.ingress = ingress
        self.raw_worker_queues = list(worker_queues)
        self.workers = list(workers)
        #: ``{origin: producer count}`` — one entry per upstream edge (the
        #: source and/or producer stages) feeding this stage's ingress.
        self.upstream_producers: Dict[str, int] = dict(upstream_producers)
        self.abort = abort
        #: Stage 0 also watches the source: no stage loop owns it, so a
        #: source crash (unpicklable stream under spawn, OOM kill) would
        #: otherwise leave the ingress poll waiting forever.  A clean exit
        #: (code 0) means UpstreamDone is already flushed into the queue.
        self.source_process = source_process
        self._draining = False

        self.mailbox = _Mailbox(
            out_queue, config.join_timeout_seconds, checker=self._checkpoint
        )
        #: The innermost abort-aware proxies, by task — recovery swaps a
        #: fresh queue into the dead worker's slot through these.
        self._abortable_queues: List[_AbortableQueue] = [
            _AbortableQueue(queue, self._checkpoint) for queue in worker_queues
        ]
        guarded: List[Any] = list(self._abortable_queues)
        self.supervisor = supervisor
        if supervisor is not None:
            # Record every successful coordinator→worker put; the retention
            # log is what recovery replays after a checkpoint restore.
            guarded = [
                LoggedQueue(queue, supervisor.log, task)
                for task, queue in enumerate(guarded)
            ]
        self.sanitizer = sanitizer
        if sanitizer is not None:
            # Every coordinator→worker send funnels through the monitor.
            guarded = [
                SanitizedQueue(queue, task, sanitizer)
                for task, queue in enumerate(guarded)
            ]
        self.router = StreamRouter(
            spec.partitioner,
            spec.logic,
            guarded,
            batch_size=config.batch_size,
            shed_timeout_seconds=config.shed_timeout_seconds,
        )
        self.controller = RuntimeController(
            spec.partitioner, self.router, guarded, self.mailbox
        )
        self.guarded_queues = guarded
        if sanitizer is not None:
            sanitizer.wrap_router(self.router)

        # -- resilience / elasticity state ---------------------------------
        self.worker_factory = worker_factory
        self.queue_factory = queue_factory
        self._service_us = initial_service_us
        #: The consuming stages' loops (set by TopologyRuntime); an elastic
        #: resize of this stage updates every consumer's producer accounting
        #: for this stage's edge.
        self.downstreams: List["_StageLoop"] = []
        #: Every process this stage ever started (respawns and scale-outs
        #: included) — the shutdown join set.
        self.spawned_processes: List[Any] = list(workers)
        self._kill = kill
        self._killed = False
        self._scale = scale
        self._scale_done = False
        self.scale_events: List[ScaleEvent] = []
        #: Keys this stage ever routed (maintained only when a scale
        #: directive is armed): the placement diff of a resize needs them.
        self.seen_keys: set = set()
        self._recovering = False
        #: Tasks currently draining through an elastic scale-in (their
        #: process exit is expected, not a crash).
        self._detaching: set = set()
        self._drained_finals: List[FinalReport] = []
        #: Tasks whose snapshot of an in-progress checkpoint round has not
        #: arrived yet (None = no round in progress).
        self._ckpt_awaiting: Optional[set] = None
        #: Dedup floors for post-recovery replay: last producer_seq accepted
        #: per (origin, producer) edge.  Mark floors and the per-origin
        #: producer-count timelines live in the barrier.
        self._last_seq: Dict[Tuple[str, int], int] = {}
        self._barrier = MarkBarrier(self.upstream_producers)
        #: Single-upstream back-compat: messages without an ``origin`` label
        #: (linear chains, hand-built tests) resolve to the sole edge; with
        #: several upstreams an unlabelled message is a protocol error.
        self._sole_origin: Optional[str] = (
            next(iter(self.upstream_producers))
            if len(self.upstream_producers) == 1
            else None
        )

        # Filled by the loop, read by the coordinator after join().
        self.interval_rows: List[Dict[str, Any]] = []
        self.finals: List[FinalReport] = []
        self.interval_reports: List[IntervalReport] = []
        self.calibrated_us: Optional[float] = None
        self.error: Optional[BaseException] = None
        self.current_interval = 0

    # -- watchdog ------------------------------------------------------------------

    def _checkpoint(self) -> None:
        """Raise instead of waiting on a run that can no longer finish."""
        self.abort.check()
        self.mailbox.check_errors()
        source = self.source_process
        if (
            source is not None
            and not source.is_alive()
            and source.exitcode not in (None, 0)
        ):
            raise RuntimeError(
                f"source process died unexpectedly (exit code {source.exitcode})"
            )
        if not self._draining and not self._recovering:
            for task, process in enumerate(self.workers):
                if process.is_alive() or task in self._detaching:
                    continue
                if self.supervisor is None:
                    raise RuntimeError(
                        f"worker process {process.name} died unexpectedly "
                        f"(exit code {process.exitcode})"
                    )
                self._recover_worker(task, process)

    def _recover_worker(self, task: int, process: Any) -> None:
        """Heal a dead worker through the supervisor (respawn/restore/replay).

        ``_recovering`` suppresses the dead-worker scan while the recovery
        itself blocks on queues (its collects re-enter :meth:`_checkpoint`),
        and the supervisor's failure modes (e.g. death during a live
        migration) propagate as ordinary stage errors.
        """
        self._recovering = True
        try:
            self.supervisor.recover(self, task, process)
        finally:
            self._recovering = False

    def _pump(self) -> None:
        """Between micro-batches: advance a migration hand-off, spot crashes."""
        self.controller.poll()
        self.mailbox.check_errors()

    def _next_ingress(self) -> Any:
        idle_since = time.monotonic()
        while True:
            self._checkpoint()
            source = self.source_process
            if (
                source is not None
                and not source.is_alive()
                and time.monotonic() - idle_since > self.config.join_timeout_seconds
            ):
                # The source is gone and its remaining messages would have
                # drained long ago — its end-of-stream mark was lost (e.g. a
                # queue feeder pickling failure swallowed it).  Fail loudly
                # instead of polling forever.
                raise RuntimeError(
                    "source process exited but its end-of-stream mark never "
                    "arrived (message lost in the source queue?)"
                )
            try:
                return self.ingress.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                continue

    # -- the loop ------------------------------------------------------------------

    def run(self) -> None:
        try:
            self._loop()
        except _Aborted:
            pass
        except BaseException as exc:
            self.error = exc
            self.abort.trip(self.spec.name, exc)

    def _origin_of(self, message: Any) -> str:
        """Resolve the upstream edge a stage-to-stage message arrived on."""
        origin = message.origin
        if origin:
            return origin
        if self._sole_origin is not None:
            return self._sole_origin
        raise TypeError(
            f"stage {self.spec.name!r} has {len(self.upstream_producers)} "
            f"upstreams but got an unlabelled ingress {message!r}"
        )

    def _loop(self) -> None:
        config = self.config
        self.router.begin_interval(0)
        self._interval_started = time.monotonic()

        while not self._barrier.finished:
            message = self._next_ingress()
            if isinstance(message, EmittedBatch):
                if (
                    self._kill is not None
                    and not self._killed
                    and message.interval >= self._kill.interval
                ):
                    self._fire_kill()
                producer = message.producer_id
                if producer >= 0 and message.producer_seq >= 0:
                    # Post-recovery replay dedup: a replayed batch carries
                    # the same (origin, producer, seq) as the original, so
                    # anything at or below the accepted floor was already
                    # dispatched; re-emissions of batches the dead process's
                    # queue feeder lost arrive *above* the floor and pass.
                    edge = (self._origin_of(message), producer)
                    if message.producer_seq <= self._last_seq.get(edge, -1):
                        continue
                    self._last_seq[edge] = message.producer_seq
                if self.sanitizer is not None:
                    self.sanitizer.on_ingress_batch(
                        self._origin_of(message), len(message.keys)
                    )
                self.router.dispatch(
                    message.keys,
                    message.values,
                    pump=self._pump,
                    interval=message.interval,
                    origin_at=message.origin_at,
                )
            elif isinstance(message, UpstreamMark):
                origin = self._origin_of(message)
                accepted, closable = self._barrier.observe_mark(
                    origin, message.producer_id, message.interval
                )
                if accepted and self.sanitizer is not None:
                    self.sanitizer.on_upstream_mark(
                        origin, message.producer_id, message.interval
                    )
                if closable:
                    self._close_interval(message.interval)
            elif isinstance(message, UpstreamDone):
                self._barrier.observe_done(self._origin_of(message))
            else:  # pragma: no cover - protocol violation
                raise TypeError(
                    f"stage {self.spec.name!r} got unknown ingress {message!r}"
                )

        # A hand-off begun on the final interval must complete (install the
        # shipped state, release the buffered tuples) before EOS.
        self.controller.finish_pending()
        self._draining = True
        for guarded_queue in self.guarded_queues:
            guarded_queue.put(EndOfStream(collect_state=config.collect_final_state))
        self.finals = self._drained_finals + self.mailbox.collect(
            FinalReport, self.spec.parallelism
        )
        self.interval_reports.extend(self.mailbox.drain(IntervalReport))

    def _close_interval(self, interval: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_close(interval)
        # Finish any hand-off BEFORE the markers: tuples released by resume()
        # belong to this interval and must precede its EndInterval in the
        # FIFO queues to be counted in it.
        self.controller.finish_pending()
        for guarded_queue in self.guarded_queues:
            guarded_queue.put(EndInterval(interval=interval))
        if self.config.calibrate_pacing and interval == 0:
            self._calibrate()
        if self.supervisor is not None and self.supervisor.checkpoint_due(interval):
            self._take_checkpoint(interval)
        # The closing interval's own accounting bucket: early batches of the
        # next interval (fast upstream producers) are already parked in
        # their own bucket and do not pollute this one.
        account = self.router.pop_interval(interval)
        if self._scale is not None:
            # The placement diff of a pending resize needs every key this
            # stage ever routed.
            self.seen_keys.update(account.freqs.keys())
        # Split-key bookkeeping is per interval inside the partitioner and is
        # reset by its on_interval_end — fold it into the lifetime totals now.
        self.router.snapshot_split_stats()
        migration = self.controller.end_interval(
            self._interval_stats(interval, account.freqs)
        )
        if (
            self._scale is not None
            and not self._scale_done
            and interval == self._scale.interval
        ):
            self._scale_done = True
            self.scale_events.append(execute_scale(self, self._scale))
        now = time.monotonic()
        # The account's dense per-task arrays convert to the report's
        # ``{task: value}`` dict shape only here, at interval close.
        self.interval_rows.append(
            {
                "interval": interval,
                "offered_tuples": float(account.offered_tuples_by_task.sum()),
                "offered_cost": account.offered_cost,
                "shed": dict(account.shed),
                "elapsed": now - self._interval_started,
                "migration": migration,
            }
        )
        self._interval_started = now
        self.current_interval = interval + 1
        self.router.begin_interval(interval + 1)

    # -- resilience / elasticity ---------------------------------------------------

    def _fire_kill(self) -> None:
        """Inject the configured fault: SIGKILL the directive's worker.

        Delivered as a :class:`CrashSelf` command through the victim's FIFO
        inbound queue — behind the batches already dispatched to it — sent
        through the bare abort-aware proxy so it is neither retained for
        replay nor counted by the sanitizer.
        """
        self._killed = True
        task = self._kill.task
        if task >= len(self.workers):
            raise ValueError(
                f"kill directive {self._kill.spec()!r} names task {task} but "
                f"stage {self.spec.name!r} has {len(self.workers)} workers"
            )
        self._abortable_queues[task].put(CrashSelf())

    def _take_checkpoint(self, interval: int) -> None:
        """Snapshot every task's ``KeyedState`` at this interval boundary.

        The snapshot command rides the FIFO queues right behind the
        interval's ``EndInterval`` marker, so each shipped state covers
        exactly the tuples up to the boundary (watermark = ``interval``).
        The log cut is taken *before* the command is sent: everything the
        checkpoint covers — and nothing it does not — is truncated once the
        task's snapshot is durable.
        """
        supervisor = self.supervisor
        tasks = range(len(self.workers))
        cuts = {task: supervisor.log.cut(task) for task in tasks}
        self._ckpt_awaiting = set(tasks)
        with supervisor.log.suspended():
            for guarded_queue in self.guarded_queues:
                guarded_queue.put(ExtractKeys(keys=None, copy=True))
            while self._ckpt_awaiting:
                shipment = self.mailbox.collect(StateShipment, 1)[0]
                task = shipment.worker_id
                if task not in self._ckpt_awaiting:
                    # Duplicate from a mid-checkpoint recovery (the original
                    # arrived before the re-issued command's copy).
                    continue
                supervisor.store.save(
                    task, interval, shipment.entries, shipment.counters
                )
                supervisor.log.truncate(task, cuts[task])
                self._ckpt_awaiting.discard(task)
        self._ckpt_awaiting = None

    def checkpoint_pending(self, task: int) -> bool:
        """True when a checkpoint round still awaits ``task``'s snapshot."""
        return self._ckpt_awaiting is not None and task in self._ckpt_awaiting

    def spawn_worker(self, task: int) -> Any:
        """Start a replacement process for ``task`` on a *fresh* queue.

        The dead worker's inbound queue cannot be reused: a process parked
        in ``Queue.get`` holds the queue's reader lock, and a SIGKILL never
        releases it — a replacement reading the same queue would deadlock.
        Anything buffered in the abandoned queue is superseded by the
        retention-log replay, so the swap loses nothing; the fresh queue is
        swapped *into* the existing guarded chain, so a dispatch currently
        blocked on the dead worker's full queue is redirected mid-wait.
        """
        queue = self.queue_factory()
        self.raw_worker_queues[task] = queue
        self._abortable_queues[task].replace(queue)
        process = self.worker_factory(task, queue, self._service_us)
        process.start()
        self.workers[task] = process
        self.spawned_processes.append(process)
        return process

    def attach_worker(self, task: int) -> None:
        """Add a brand-new worker (elastic scale-out): queue, process, wraps."""
        queue = self.queue_factory()
        process = self.worker_factory(task, queue, self._service_us)
        process.start()
        self.raw_worker_queues.append(queue)
        self.workers.append(process)
        self.spawned_processes.append(process)
        guarded: Any = _AbortableQueue(queue, self._checkpoint)
        self._abortable_queues.append(guarded)
        if self.supervisor is not None:
            self.supervisor.log.ensure_task(task)
            guarded = LoggedQueue(guarded, self.supervisor.log, task)
        if self.sanitizer is not None:
            guarded = SanitizedQueue(guarded, task, self.sanitizer)
        self.guarded_queues.append(guarded)

    def detach_workers(self, new: int, old: int) -> None:
        """Drain tasks ``new..old-1`` (elastic scale-in) with a normal EOS.

        The drained workers' lifetime totals still reach the final
        accounting through their stashed ``FinalReport`` s; their expected
        exits are excluded from the dead-worker scan while in flight.
        """
        doomed = list(range(new, old))
        self._detaching = set(doomed)
        try:
            for task in doomed:
                self.guarded_queues[task].put(
                    EndOfStream(collect_state=self.config.collect_final_state)
                )
            self._drained_finals.extend(
                self.mailbox.collect(FinalReport, len(doomed))
            )
            if self.supervisor is not None:
                for task in doomed:
                    self.supervisor.log.drop_task(task)
            del self.workers[new:old]
            del self.raw_worker_queues[new:old]
            del self.guarded_queues[new:old]
            del self._abortable_queues[new:old]
        finally:
            self._detaching = set()

    def set_upstream_producers(
        self, origin: str, from_interval: int, count: int, done_delta: int
    ) -> None:
        """An upstream resize changed this stage's producer accounting.

        Called from the *upstream* stage's thread at its interval boundary —
        strictly before the resized group emits any mark for
        ``from_interval``, so the timeline append cannot race a close that
        depends on it.  ``origin`` names the resized edge (other upstream
        origins' barriers are untouched); ``done_delta`` adjusts the
        expected end-of-stream count (scale-out adds producers; scale-in's
        drained workers still send their own ``UpstreamDone``, so shrink
        passes zero).
        """
        self._barrier.resize(origin, from_interval, count, done_delta)
        self.upstream_producers[origin] = int(count)

    def _calibrate(self) -> None:
        """Measure interval 0's unpaced processing and install the pacing.

        Blocking: waits for every worker's interval-0 report (a one-off
        barrier), then ships the new service time through the FIFO queues —
        any interval-1 batches a fast upstream producer already queued run
        unpaced, everything after the command is paced.  The drain time is the
        workers' summed *busy* seconds, not the stage's wall-clock interval:
        wall time would fold in upstream pipeline fill (inflating pacing
        progressively down a chain) and, under an open-loop source, the
        offer schedule itself (pacing would then cap capacity below the
        offered rate and the run could never keep up).
        """
        from repro.runtime.messages import SetServiceTime

        reports = self.mailbox.collect(IntervalReport, self.spec.parallelism)
        self.interval_reports.extend(reports)
        cost = sum(report.cost for report in reports)
        busy = sum(report.busy_seconds for report in reports)
        service_us = calibrated_service_time_us(
            cost,
            busy / self.spec.parallelism,
            self.spec.parallelism,
            self.config.calibration_headroom,
        )
        if service_us > 0:
            for guarded_queue in self.guarded_queues:
                guarded_queue.put(SetServiceTime(service_time_us=service_us))
            self.calibrated_us = service_us
            self._service_us = service_us

    def _interval_stats(
        self, interval: int, freqs: Mapping[Key, float]
    ) -> IntervalStats:
        stats = IntervalStats(interval)
        tuple_cost = self.spec.logic.tuple_cost
        state_delta = self.spec.logic.state_delta
        stats.record_bulk(
            (key, float(count), count * tuple_cost(key), count * state_delta(key))
            for key, count in freqs.items()
            if count > 0
        )
        return stats

    # -- aggregation ---------------------------------------------------------------

    def aggregate(self, wall_seconds: float) -> RuntimeResult:
        """Fold the loop's rows and the workers' reports into a RuntimeResult."""
        # Keep-last per (interval, worker): a recovery replays EndInterval
        # markers, so a respawned worker re-sends interval reports the dead
        # one already delivered — the re-send carries the healed accounting.
        deduped: Dict[Tuple[int, int], IntervalReport] = {}
        for report in self.interval_reports + self.mailbox.drain(IntervalReport):
            deduped[(report.interval, report.worker_id)] = report
        per_interval: Dict[int, List[IntervalReport]] = {}
        for report in deduped.values():
            per_interval.setdefault(report.interval, []).append(report)

        latency = LatencyHistogram()
        e2e = LatencyHistogram()
        final_reports: Dict[int, FinalReport] = {}
        final_state: Dict[Key, List[Any]] = {}
        processed_total = 0
        tail = LatencyHistogram()
        for report in self.finals:
            final_reports[report.worker_id] = report
            latency.merge(LatencyHistogram.from_dict(report.histogram))
            if report.e2e_histogram:
                e2e.merge(LatencyHistogram.from_dict(report.e2e_histogram))
            if report.tail_histogram:
                tail.merge(LatencyHistogram.from_dict(report.tail_histogram))
            processed_total += report.processed
            final_state.update(report.final_state)

        interval_latency: Dict[int, LatencyHistogram] = {}
        for interval, reports in per_interval.items():
            merged = LatencyHistogram()
            for report in reports:
                if report.histogram:
                    merged.merge(LatencyHistogram.from_dict(report.histogram))
            interval_latency[interval] = merged
        # Latency recorded after the last marker (e.g. a final migration's
        # released tuples) is folded into the last interval so the deltas
        # still sum to the lifetime histogram.
        if tail.total and self.interval_rows:
            last = self.interval_rows[-1]["interval"]
            interval_latency.setdefault(last, LatencyHistogram()).merge(tail)

        metrics = MetricsCollector(label=self.spec.name)
        for row in self.interval_rows:
            interval = row["interval"]
            reports = per_interval.get(interval, [])
            processed = sum(report.processed for report in reports)
            latency_sum_us = sum(report.latency_us_sum for report in reports)
            elapsed = row["elapsed"]
            migration: Optional[LiveMigrationReport] = row["migration"]
            offered_cost: Dict[int, float] = row["offered_cost"]
            shed_map: Dict[int, float] = row["shed"]
            histogram = interval_latency.get(interval)
            metrics.record(
                IntervalMetrics(
                    interval=interval,
                    offered_tuples=row["offered_tuples"],
                    processed_tuples=float(processed),
                    shed_tuples=sum(shed_map.values()),
                    throughput=float(processed) / elapsed if elapsed > 0 else 0.0,
                    latency_ms=(
                        latency_sum_us / processed / 1000.0 if processed else 0.0
                    ),
                    latency_p50_ms=(
                        histogram.p50_us / 1000.0 if histogram and histogram.total else 0.0
                    ),
                    latency_p99_ms=(
                        histogram.p99_us / 1000.0 if histogram and histogram.total else 0.0
                    ),
                    skewness=max_skewness(offered_cost),
                    max_theta=max_balance_indicator(offered_cost),
                    migrated_state=migration.moved_state if migration else 0.0,
                    migration_fraction=(
                        migration.migration_fraction if migration else 0.0
                    ),
                    migration_seconds=migration.pause_seconds if migration else 0.0,
                    generation_time=migration.generation_time if migration else 0.0,
                    routing_table_size=migration.table_size if migration else 0,
                    rebalanced=migration is not None,
                    num_tasks=self.spec.parallelism,
                    per_task_load=offered_cost,
                    per_task_shed=shed_map,
                )
            )

        offered_total = int(
            sum(row["offered_tuples"] for row in self.interval_rows)
        )
        if self.sanitizer is not None:
            self.sanitizer.finalize(
                offered=float(offered_total),
                processed=float(processed_total),
                shed=self.router.shed_ledger.total,
            )
        resilience: Optional[Dict[str, Any]] = None
        if self.supervisor is not None or self.scale_events:
            resilience = {
                "incidents": (
                    [incident.to_dict() for incident in self.supervisor.incidents]
                    if self.supervisor is not None
                    else []
                ),
                "scale_events": [event.to_dict() for event in self.scale_events],
                "checkpoints": (
                    self.supervisor.store.stats()
                    if self.supervisor is not None
                    else {"count": 0.0, "bytes_written": 0.0, "write_seconds": 0.0}
                ),
            }
        return RuntimeResult(
            label=self.spec.name,
            metrics=metrics,
            latency=latency,
            tuples_offered=offered_total,
            tuples_processed=processed_total,
            tuples_shed=self.router.shed_ledger.total,
            wall_seconds=wall_seconds,
            migrations=list(self.controller.migrations),
            final_reports=final_reports,
            final_state=final_state,
            shed_by_task=self.router.shed_ledger.by_task(),
            interval_latency=interval_latency,
            e2e_latency=e2e,
            calibrated_service_time_us=self.calibrated_us,
            resilience=resilience,
            upstreams=len(self.upstream_producers),
            split_stats=self.router.split_stats,
        )


class TopologyRuntime:
    """Spawns the source, every stage's workers, and runs the dataflow."""

    def __init__(
        self,
        spec: TopologySpec,
        config: Optional[RuntimeConfig] = None,
        *,
        label: str = "",
    ) -> None:
        self.spec = spec
        self.config = config if config is not None else RuntimeConfig()
        self.label = label or spec.name

    def _directives(
        self,
    ) -> Tuple[Optional[KillDirective], Optional[ScaleDirective]]:
        """Resolve the run's fault-injection and elasticity directives.

        ``config.kill_worker`` wins over the ``REPRO_KILL`` environment
        variable; both kinds are validated against the topology's stage
        names before any process is spawned.
        """
        config = self.config
        kill: Optional[KillDirective] = None
        if config.kill_worker is not None:
            stage, task, interval = config.kill_worker
            kill = KillDirective(stage=stage, task=int(task), interval=int(interval))
        else:
            env_spec = os.environ.get("REPRO_KILL", "").strip()
            if env_spec:
                kill = parse_kill_spec(env_spec)
        scale: Optional[ScaleDirective] = None
        if config.scale_at is not None:
            interval, stage, delta = config.scale_at
            scale = ScaleDirective(
                interval=int(interval), stage=stage, delta=int(delta)
            )
        names = set(self.spec.stage_names())
        if kill is not None and kill.stage not in names:
            raise ValueError(
                f"kill directive {kill.spec()!r} names unknown stage "
                f"{kill.stage!r} (topology has {sorted(names)})"
            )
        if scale is not None and scale.stage not in names:
            raise ValueError(
                f"scale directive {scale.spec()!r} names unknown stage "
                f"{scale.stage!r} (topology has {sorted(names)})"
            )
        return kill, scale

    def run(self, stream: TupleStream) -> TopologyResult:
        """Execute the stream through the chain; blocks until fully drained.

        ``stream`` is an iterable of per-interval ``(key, value)`` tuple
        lists; it is materialised and handed to the source process, which
        offers it closed-loop or at ``config.offered_rate`` tuples/second.
        """
        config = self.config
        interval_lists = [list(batch) for batch in stream]

        method = config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        context = multiprocessing.get_context(method)
        abort = _AbortFlag()
        sanitize = config.sanitize or os.environ.get(
            "REPRO_SANITIZE", ""
        ).lower() in {"1", "true", "yes", "on"}
        sanitizer_report = SanitizerReport() if sanitize else None

        stages = self.spec.stages
        kill, scale = self._directives()
        # One bounded ingress queue per stage: every upstream edge (source
        # and/or producer stages) funnels into the consumer's shared queue,
        # so backpressure — and chained starvation — propagates along every
        # edge of the DAG: a full consumer queue blocks each of its
        # producers' emit puts.
        ingresses: Dict[str, Any] = {
            stage.name: context.Queue(maxsize=max(2, config.queue_capacity))
            for stage in stages
        }
        source_fed = [
            stage.name
            for stage in stages
            if SOURCE_ORIGIN in self.spec.upstreams_of(stage.name)
        ]
        source_targets = [ingresses[name] for name in source_fed]

        source = context.Process(
            target=source_main,
            args=(
                interval_lists,
                source_targets,
                config.batch_size,
                config.offered_rate,
            ),
            daemon=True,
            name="repro-source",
        )

        initial_service_us = 0.0 if config.calibrate_pacing else config.service_time_us

        def queue_factory() -> Any:
            return context.Queue(maxsize=config.queue_capacity)

        parallelism_of = {stage.name: stage.parallelism for stage in stages}
        all_workers: List[Any] = []
        loops: List[_StageLoop] = []
        for index, stage in enumerate(stages):
            worker_queues = [queue_factory() for _ in range(stage.parallelism)]
            out_queue = context.Queue()
            consumers = self.spec.consumers_of(stage.name)
            egresses = [ingresses[name] for name in consumers] or None

            def worker_factory(
                worker_id: int,
                queue: Any,
                service_us: float,
                # Bind this iteration's stage wiring (the factory outlives
                # the loop: respawns and scale-outs call it later).
                _stage: StageSpec = stage,
                _out_queue: Any = out_queue,
                _egresses: Any = egresses,
            ) -> Any:
                return context.Process(
                    target=worker_main,
                    args=(
                        worker_id,
                        _stage.logic,
                        queue,
                        _out_queue,
                        service_us,
                        _egresses,
                        _stage.key_mapper,
                        None,
                        _stage.name,
                    ),
                    daemon=True,
                    name=f"repro-{_stage.name}-{worker_id}",
                )

            workers = [
                worker_factory(worker_id, worker_queues[worker_id], initial_service_us)
                for worker_id in range(stage.parallelism)
            ]
            all_workers.extend(workers)
            supervisor = None
            if config.checkpoint_dir is not None:
                supervisor = StageSupervisor(
                    stage.name,
                    CheckpointStore(config.checkpoint_dir, stage.name),
                    RetentionLog(stage.parallelism),
                    checkpoint_every=config.checkpoint_every,
                )
            upstream_names = self.spec.upstreams_of(stage.name)
            loops.append(
                _StageLoop(
                    stage,
                    config,
                    ingresses[stage.name],
                    worker_queues,
                    out_queue,
                    workers,
                    upstream_producers={
                        name: (
                            1 if name == SOURCE_ORIGIN else parallelism_of[name]
                        )
                        for name in upstream_names
                    },
                    abort=abort,
                    source_process=(
                        source if SOURCE_ORIGIN in upstream_names else None
                    ),
                    sanitizer=(
                        StageSanitizer(
                            stage.name,
                            sanitizer_report,
                            origins=upstream_names,
                        )
                        if sanitizer_report is not None
                        else None
                    ),
                    supervisor=supervisor,
                    worker_factory=worker_factory,
                    queue_factory=queue_factory,
                    initial_service_us=initial_service_us,
                    kill=kill if kill is not None and kill.stage == stage.name else None,
                    scale=(
                        scale
                        if scale is not None and scale.stage == stage.name
                        else None
                    ),
                )
            )
        # An elastic resize must update every *consuming* stage's producer
        # accounting (mark barriers, end-of-stream counting) for this edge.
        loops_by_name = {loop.spec.name: loop for loop in loops}
        for loop in loops:
            loop.downstreams = [
                loops_by_name[name]
                for name in self.spec.consumers_of(loop.spec.name)
            ]

        wall_seconds = 0.0
        try:
            for process in all_workers:
                process.start()
            source.start()
            # Stamp after the processes exist: spawn/fork overhead must not
            # deflate measured tuples/sec (trajectory runs compare commits).
            wall_start = time.monotonic()
            for loop in loops:
                loop.start()
            for loop in loops:
                loop.join()
            wall_seconds = time.monotonic() - wall_start
        finally:
            self._shutdown([source], force=abort.tripped)
            # Respawned and scaled-out workers included, not just the
            # initial groups.
            self._shutdown(
                [
                    process
                    for loop in loops
                    for process in loop.spawned_processes
                ],
                force=abort.tripped,
            )

        if abort.tripped:
            raise RuntimeError(
                f"topology {self.spec.name!r} aborted — {abort.error}"
            )

        stage_results = {
            loop.spec.name: loop.aggregate(wall_seconds) for loop in loops
        }
        # The sanitizer report is run-global; attach the final dict (after
        # every stage's conservation finalize) everywhere results travel.
        report_dict = (
            sanitizer_report.to_dict() if sanitizer_report is not None else None
        )
        if report_dict is not None:
            for result in stage_results.values():
                result.sanitizer = report_dict
        return TopologyResult(
            label=self.label,
            stages=stage_results,
            wall_seconds=wall_seconds,
            # With a source fan-out each source-fed stage sees a disjoint
            # share of the stream; the topology's offered count is their sum
            # (identical to stage 0's count in a chain).
            tuples_offered=sum(
                stage_results[name].tuples_offered for name in source_fed
            ),
            sanitizer=report_dict,
        )

    @staticmethod
    def _shutdown(processes: List[Any], *, force: bool = False) -> None:
        deadline = time.monotonic() + (0.5 if force else 10.0)
        for process in processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
