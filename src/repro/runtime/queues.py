"""Abort-aware blocking queue operations — the sanctioned RPL002 wrappers.

A bare ``Queue.get()`` / ``Queue.put(item)`` without a timeout is a
hang-on-crash hazard in this runtime: every blocking queue operation waits on
a *peer* (the coordinator for a worker's inbound queue, a downstream stage for
an egress queue), and if that peer crashed or wedged, the wait never ends —
the process survives its own topology and the run hangs instead of failing.

The helpers here poll with a short timeout and re-check an abort predicate
between waits, so a queue operation whose peer is gone unwinds with
:class:`QueueAborted` instead of blocking forever.  The default predicate,
:func:`parent_process_died`, detects the orphaned-child case: worker and
source processes are children of the coordinator process, so a dead parent
means nobody will ever feed (or drain) their queues again.

The ``RPL002`` lint rule (:mod:`repro.analysis.rules`) flags bare blocking
``get``/``put`` calls on queue-like receivers everywhere *except* this
module — new runtime code must route its blocking queue traffic through these
wrappers (or through an abort-aware proxy such as the coordinator-side
``_AbortableQueue``, whose receivers the rule recognises by name).

The hot path pays nothing for the safety: the abort predicate is evaluated
only after a poll interval expires, never between back-to-back messages.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Callable, Optional

__all__ = [
    "POLL_SECONDS",
    "QueueAborted",
    "abortable_get",
    "abortable_put",
    "drain_queue",
    "parent_process_died",
]

#: Poll period of abort-aware blocking queue operations, seconds.  Bounds how
#: long a wedged process outlives its peer.
POLL_SECONDS = 0.1

AbortCheck = Callable[[], bool]


class QueueAborted(RuntimeError):
    """A blocking queue operation was abandoned: the peer is gone."""


def parent_process_died() -> bool:
    """True when this process's parent exited (the orphaned-worker case)."""
    parent = multiprocessing.parent_process()
    return parent is not None and not parent.is_alive()


def abortable_get(
    queue: Any,
    should_abort: Optional[AbortCheck] = None,
    *,
    poll_seconds: float = POLL_SECONDS,
) -> Any:
    """``queue.get()`` that re-checks ``should_abort`` between short waits.

    Returns the next item, or raises :class:`QueueAborted` once the abort
    predicate fires while the queue is empty.  The predicate is only
    evaluated after an empty poll interval, so a busy queue is consumed at
    full speed.
    """
    check = parent_process_died if should_abort is None else should_abort
    while True:
        try:
            return queue.get(timeout=poll_seconds)
        except queue_module.Empty:
            if check():
                raise QueueAborted(
                    "queue get abandoned: the peer process is gone"
                ) from None


def drain_queue(
    queue: Any,
    *,
    quiet_seconds: float = 0.2,
    poll_seconds: float = 0.05,
) -> int:
    """Discard everything readable from ``queue``; return the drained count.

    Used by supervised recovery to empty a dead worker's inbound queue
    before the respawned process attaches to it: the discarded backlog is
    re-created exactly by replaying the supervisor's retention log, so
    leaving it in place would double-process those batches.  A
    ``multiprocessing.Queue`` can surface items with a small pipe latency,
    hence the quiet window: the drain only stops after ``quiet_seconds``
    without a message.
    """
    drained = 0
    deadline = time.monotonic() + quiet_seconds
    while time.monotonic() < deadline:
        try:
            queue.get(timeout=poll_seconds)
        except queue_module.Empty:
            continue
        drained += 1
        deadline = time.monotonic() + quiet_seconds
    return drained


def abortable_put(
    queue: Any,
    item: Any,
    should_abort: Optional[AbortCheck] = None,
    *,
    poll_seconds: float = POLL_SECONDS,
) -> None:
    """``queue.put(item)`` that re-checks ``should_abort`` between short waits.

    Blocking-put backpressure is preserved (the put retries until space
    frees up); only a dead peer converts the wait into :class:`QueueAborted`.
    """
    check = parent_process_died if should_abort is None else should_abort
    while True:
        try:
            return queue.put(item, timeout=poll_seconds)
        except queue_module.Full:
            if check():
                raise QueueAborted(
                    "queue put abandoned: the peer process is gone"
                ) from None
