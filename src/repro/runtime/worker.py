"""The worker process loop: one operator task instance per process.

A worker hosts exactly one :class:`~repro.engine.operator.Task` (one parallel
instance of one topology stage) and consumes its inbound queue in FIFO order:
tuple batches, interval markers and migration commands.  Per-tuple latency is
measured against the batch's enqueue stamp and recorded into a
:class:`~repro.runtime.histogram.LatencyHistogram`; the interval *delta* of
the histogram ships with every :class:`~repro.runtime.messages.IntervalReport`
so latency-over-time plots come from measured buckets, not just means.

Tuple batches run through the **batch fast path**: one
:meth:`~repro.engine.operator.Task.process_batch` call per micro-batch, so
the inner loop allocates no per-tuple :class:`~repro.engine.tuples.
StreamTuple` and updates metrics once per batch (operators without a
vectorised ``process_batch`` override fall back to scalar ``process`` calls
transparently).

**Emission.**  When the stage has downstream stages, the worker forwards the
operator's emitted tuples — re-keyed by the stage's key mapper — onto the
consumers' shared bounded *egress* queues as columnar
:class:`~repro.runtime.messages.EmittedBatch`
messages, and propagates interval/end-of-stream markers so each downstream
router can close intervals.  With several consumers (a DAG fan-out) data
batches round-robin across the egress queues — so consecutive batches of a
hot key land on *different* branches, the split-key premise of the paper's
Fig. 2 — while every marker is replicated to every consumer (each one runs
its own mark barrier per upstream edge).  The bounded egress queues are what
chain backpressure: a slow downstream stage blocks these puts, the worker
stops consuming its inbound queue, and the stall propagates up to the
source — exactly the chained-starvation effect of the paper's Fig. 16, now
along every edge of the DAG.

**Service pacing.**  The paper's evaluation runs every task at the CPU
saturation point, so the quantity of interest — throughput loss under skew —
is set by how close each task's offered load is to its service *capacity*.
The worker therefore emulates a fixed capacity: each batch owes
``cost × service_time_us`` of service time, and the worker sleeps off
whatever the real CPU work did not consume.  Because paced workers spend most
of their budget sleeping, N workers genuinely overlap even on a host with
fewer than N cores, and measured throughput degrades with imbalance exactly
as it would on dedicated hardware.  A :class:`SetServiceTime` command adjusts
the pacing mid-run (adaptive calibration).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Any, Callable, Hashable, Optional

from repro.engine.operator import OperatorLogic, Task
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.queues import QueueAborted, abortable_get, abortable_put
from repro.runtime.messages import (
    CrashSelf,
    EmittedBatch,
    EndInterval,
    EndOfStream,
    ExtractKeys,
    FinalReport,
    InstallAck,
    InstallState,
    IntervalReport,
    SetServiceTime,
    StateShipment,
    TupleBatch,
    UpstreamDone,
    UpstreamMark,
    WorkerError,
)

__all__ = ["worker_main"]

Key = Hashable
KeyMapper = Callable[[Key], Key]


def worker_main(
    worker_id: int,
    logic: OperatorLogic,
    in_queue: Any,
    out_queue: Any,
    service_time_us: float,
    egress: Any = None,
    key_mapper: Optional[KeyMapper] = None,
    should_abort: Optional[Callable[[], bool]] = None,
    origin: str = "",
) -> None:
    """Entry point of one worker process (must stay module-level picklable).

    ``egress`` is ``None`` (final stage), one queue (chain), or a list of
    queues (DAG fan-out — one per consuming stage).  ``origin`` is the
    stage's name, stamped onto every stage-to-stage message so a fan-in
    consumer can attribute it to the right upstream edge.

    Every blocking queue operation is abort-aware: ``should_abort`` (default:
    "my parent process died") is re-checked between short waits, so a worker
    whose coordinator crashed or wedged exits cleanly instead of blocking
    forever on a queue nobody will ever feed or drain again.
    """
    try:
        _worker_loop(
            worker_id,
            logic,
            in_queue,
            out_queue,
            service_time_us,
            egress,
            key_mapper,
            should_abort,
            origin,
        )
    except QueueAborted:
        # The coordinator is gone; exiting *is* the clean teardown.
        return
    except Exception:  # pragma: no cover - crash path, surfaced by coordinator
        try:
            abortable_put(
                out_queue,
                WorkerError(worker_id=worker_id, message=traceback.format_exc()),
                should_abort,
            )
        except QueueAborted:
            pass


def _worker_loop(
    worker_id: int,
    logic: OperatorLogic,
    in_queue: Any,
    out_queue: Any,
    service_time_us: float,
    egress: Any,
    key_mapper: Optional[KeyMapper],
    should_abort: Optional[Callable[[], bool]] = None,
    origin: str = "",
) -> None:
    task = Task(worker_id, logic)
    histogram = LatencyHistogram()
    e2e_histogram = LatencyHistogram()
    service_time_s = max(service_time_us, 0.0) / 1e6
    # Normalise the egress wiring: no consumer, one consumer, or a fan-out.
    if egress is None:
        egresses = []
    elif isinstance(egress, (list, tuple)):
        egresses = list(egress)
    else:
        egresses = [egress]
    #: The final stage (no egress) measures end-to-end latency too.
    final_stage = not egresses

    busy_seconds = 0.0
    # Monotone per-producer emission sequence, stamped onto every egress
    # batch.  Restored from the checkpoint after a supervised recovery, so a
    # replayed batch carries the *same* sequence number as the original and
    # the downstream router can deduplicate (see EmittedBatch.producer_seq).
    emit_seq = 0
    # Interval watermark: in a pipelined topology, upstream workers progress
    # through intervals at different speeds, so a batch tagged with an older
    # interval can arrive after a newer one (or after the older interval's
    # marker already expired state).  Late tuples are processed at the
    # watermark — the windowed-state interval tags stay monotone per worker,
    # as `KeyedState` requires.
    floor_interval = 0
    # Per-interval accounting deltas, bucketed by the batches' (clamped)
    # interval tag: a fast upstream producer can deliver next-interval
    # batches before this interval's EndInterval marker, and those must not
    # inflate the closing interval's report.  ``[processed, cost, busy,
    # latency_us_sum, histogram]`` per interval.
    marks: dict = {}

    def _mark(interval: int) -> list:
        bucket = marks.get(interval)
        if bucket is None:
            bucket = marks[interval] = [0, 0.0, 0.0, 0.0, LatencyHistogram()]
        return bucket

    while True:
        message = abortable_get(in_queue, should_abort)

        if isinstance(message, TupleBatch):
            started = time.monotonic()
            cost_before = task.metrics.cost_processed
            interval = message.interval
            if interval < floor_interval:
                interval = floor_interval
            else:
                floor_interval = interval
            # Batch fast path: one Task.process_batch call per micro-batch
            # (metrics updated once per batch, no per-tuple StreamTuple).
            # A final stage (no egress) drops the returned emissions; their
            # accumulation is bounded by one micro-batch and still cheaper
            # than the per-tuple StreamTuple lists the scalar path built.
            out_keys, out_values = task.process_batch(
                message.keys, message.values, interval
            )
            cost = task.metrics.cost_processed - cost_before
            elapsed = time.monotonic() - started
            owed = cost * service_time_s
            if owed > elapsed:
                time.sleep(owed - elapsed)
            done = time.monotonic()
            busy = done - started
            busy_seconds += busy
            latency_us = max(done - message.sent_at, 0.0) * 1e6
            count = len(message.keys)
            histogram.record(latency_us, count)
            if final_stage:
                origin = message.origin_at or message.sent_at
                e2e_histogram.record(max(done - origin, 0.0) * 1e6, count)
            bucket = _mark(interval)
            bucket[0] += count
            bucket[1] += cost
            bucket[2] += busy
            bucket[3] += latency_us * count
            bucket[4].record(latency_us, count)
            if egresses and out_keys:
                if key_mapper is not None:
                    out_keys = [key_mapper(key) for key in out_keys]
                # Round-robin by emission sequence: deterministic (so a
                # post-recovery replay re-emits each batch onto the same
                # edge, keeping per-edge sequences dense for the dedup) and
                # branch-splitting (consecutive batches of a hot key fan
                # across the consumers).
                abortable_put(
                    egresses[emit_seq % len(egresses)],
                    EmittedBatch(
                        interval=interval,
                        origin_at=message.origin_at or message.sent_at,
                        keys=out_keys,
                        values=out_values,
                        producer_id=worker_id,
                        producer_seq=emit_seq,
                        origin=origin,
                    ),
                    should_abort,
                )
                emit_seq += 1

        elif isinstance(message, EndInterval):
            # State up to this interval is expired; later stragglers process
            # at the next interval.
            floor_interval = max(floor_interval, message.interval + 1)
            if task.has_open_interval:
                # Expire at the *marker's* interval, not the watermark: a
                # fast upstream producer may already have delivered tuples
                # of a later interval, whose window must not shrink early.
                task.end_interval(message.interval)
            # Fold every bucket up to the marker into the report (clamping
            # can skip intervals, leaving older sparse buckets behind);
            # next-interval buckets stay open.
            closed = [0, 0.0, 0.0, 0.0, LatencyHistogram()]
            for interval in sorted(marks):
                if interval > message.interval:
                    break
                bucket = marks.pop(interval)
                closed[0] += bucket[0]
                closed[1] += bucket[1]
                closed[2] += bucket[2]
                closed[3] += bucket[3]
                closed[4].merge(bucket[4])
            abortable_put(
                out_queue,
                IntervalReport(
                    worker_id=worker_id,
                    interval=message.interval,
                    processed=closed[0],
                    cost=closed[1],
                    busy_seconds=closed[2],
                    latency_us_sum=closed[3],
                    histogram=closed[4].to_dict(),
                ),
                should_abort,
            )
            # The interval mark is replicated to every consumer: each one
            # closes the interval on its own per-edge mark barrier.
            for shared in egresses:
                abortable_put(
                    shared,
                    UpstreamMark(
                        producer_id=worker_id,
                        interval=message.interval,
                        origin=origin,
                    ),
                    should_abort,
                )

        elif isinstance(message, ExtractKeys):
            if message.copy:
                # Checkpoint snapshot: ship a copy of every requested key
                # (``None`` = all keys with state) plus the lifetime
                # counters; the keys keep serving on this task.
                keys = (
                    list(task.state.keys())
                    if message.keys is None
                    else list(message.keys)
                )
                entries = [(key, task.snapshot_key(key)) for key in keys]
                counters = {
                    "processed": float(task.metrics.tuples_processed),
                    "cost": float(task.metrics.cost_processed),
                    "busy_seconds": busy_seconds,
                    "emit_seq": float(emit_seq),
                    "watermark": float(floor_interval),
                    "migrations_in": float(task.metrics.migrations_in),
                    "migrations_out": float(task.metrics.migrations_out),
                }
            else:
                entries = [(key, task.extract_key(key)) for key in message.keys]
                counters = {}
            shipped = sum(
                size for _, snapshot in entries for _, _, size in snapshot
            )
            abortable_put(
                out_queue,
                StateShipment(
                    worker_id=worker_id,
                    entries=entries,
                    state_size=shipped,
                    counters=counters,
                ),
                should_abort,
            )

        elif isinstance(message, InstallState):
            if message.counters:
                # Checkpoint restore after a supervised recovery: install
                # the state *directly* (bypassing the migration counters)
                # and reset the lifetime counters to the snapshot's values,
                # so the retention-log replay that follows reproduces the
                # dead worker's accounting exactly once.
                for key, snapshot in message.entries:
                    task.state.install(key, snapshot)
                counters = message.counters
                task.metrics.tuples_processed = int(counters.get("processed", 0))
                task.metrics.cost_processed = counters.get("cost", 0.0)
                task.metrics.migrations_in = int(
                    counters.get("migrations_in", 0)
                )
                task.metrics.migrations_out = int(
                    counters.get("migrations_out", 0)
                )
                busy_seconds = counters.get("busy_seconds", 0.0)
                emit_seq = int(counters.get("emit_seq", 0))
                floor_interval = max(
                    floor_interval, int(counters.get("watermark", 0))
                )
            else:
                for key, snapshot in message.entries:
                    task.install_key(key, snapshot)
                    # The source worker's watermark may be ahead of ours;
                    # keep the installed keys' interval tags monotone here
                    # too.
                    for bucket_interval, _payload, _size in snapshot:
                        if bucket_interval > floor_interval:
                            floor_interval = bucket_interval
            abortable_put(
                out_queue,
                InstallAck(worker_id=worker_id, installed_keys=len(message.entries)),
                should_abort,
            )

        elif isinstance(message, SetServiceTime):
            service_time_s = max(message.service_time_us, 0.0) / 1e6

        elif isinstance(message, CrashSelf):
            # Hard crash on command (fault injection).  Flush the shared
            # outbound queues' feeder threads so the SIGKILL cannot strand
            # their writer locks for the sibling producers, then die with no
            # cleanup: state, accounting and the rest of the inbound queue
            # are simply gone.
            for shared in (*egresses, out_queue):
                if shared is not None:
                    shared.close()
                    shared.join_thread()
            os.kill(os.getpid(), signal.SIGKILL)

        elif isinstance(message, EndOfStream):
            final_state = {}
            if message.collect_state:
                final_state = {
                    key: task.state.payloads(key) for key in task.state.keys()
                }
            for shared in egresses:
                abortable_put(
                    shared,
                    UpstreamDone(producer_id=worker_id, origin=origin),
                    should_abort,
                )
            tail = LatencyHistogram()
            for bucket in marks.values():
                tail.merge(bucket[4])
            abortable_put(
                out_queue,
                FinalReport(
                    worker_id=worker_id,
                    processed=task.metrics.tuples_processed,
                    cost=task.metrics.cost_processed,
                    busy_seconds=busy_seconds,
                    histogram=histogram.to_dict(),
                    migrations_in=task.metrics.migrations_in,
                    migrations_out=task.metrics.migrations_out,
                    state_size=task.state_size,
                    state_keys=len(task.state),
                    final_state=final_state,
                    tail_histogram=tail.to_dict(),
                    e2e_histogram=e2e_histogram.to_dict() if final_stage else {},
                    service_time_us=service_time_s * 1e6,
                ),
                should_abort,
            )
            return

        else:  # pragma: no cover - protocol violation
            raise TypeError(f"worker {worker_id} got unknown message {message!r}")
