"""The worker process loop: one operator task instance per process.

A worker hosts exactly one :class:`~repro.engine.operator.Task` (one parallel
instance of the operator under study) and consumes its inbound queue in FIFO
order: tuple batches, interval markers and migration commands.  Per-tuple
latency is measured against the batch's enqueue stamp and recorded into a
:class:`~repro.runtime.histogram.LatencyHistogram`.

**Service pacing.**  The paper's evaluation runs every task at the CPU
saturation point, so the quantity of interest — throughput loss under skew —
is set by how close each task's offered load is to its service *capacity*.
The worker therefore emulates a fixed capacity: each batch owes
``cost × service_time_us`` of service time, and the worker sleeps off
whatever the real CPU work did not consume.  Because paced workers spend most
of their budget sleeping, N workers genuinely overlap even on a host with
fewer than N cores, and measured throughput degrades with imbalance exactly
as it would on dedicated hardware.
"""

from __future__ import annotations

import time
import traceback
from typing import Any

from repro.engine.operator import OperatorLogic, Task
from repro.engine.tuples import StreamTuple
from repro.runtime.histogram import LatencyHistogram
from repro.runtime.messages import (
    EndInterval,
    EndOfStream,
    ExtractKeys,
    FinalReport,
    InstallAck,
    InstallState,
    IntervalReport,
    StateShipment,
    TupleBatch,
    WorkerError,
)

__all__ = ["worker_main"]


def worker_main(
    worker_id: int,
    logic: OperatorLogic,
    in_queue: Any,
    out_queue: Any,
    service_time_us: float,
) -> None:
    """Entry point of one worker process (must stay module-level picklable)."""
    try:
        _worker_loop(worker_id, logic, in_queue, out_queue, service_time_us)
    except Exception:  # pragma: no cover - crash path, surfaced by coordinator
        out_queue.put(WorkerError(worker_id=worker_id, message=traceback.format_exc()))


def _worker_loop(
    worker_id: int,
    logic: OperatorLogic,
    in_queue: Any,
    out_queue: Any,
    service_time_us: float,
) -> None:
    task = Task(worker_id, logic)
    histogram = LatencyHistogram()
    service_time_s = max(service_time_us, 0.0) / 1e6

    busy_seconds = 0.0
    # Deltas since the last EndInterval marker (exact per-interval accounting:
    # the FIFO inbound queue orders the marker after the interval's batches).
    mark_processed = 0
    mark_cost = 0.0
    mark_busy = 0.0
    mark_latency_us = 0.0

    while True:
        message = in_queue.get()

        if isinstance(message, TupleBatch):
            started = time.monotonic()
            cost_before = task.metrics.cost_processed
            interval = message.interval
            for key, value in message.tuples:
                task.process(StreamTuple(key=key, value=value, interval=interval))
            cost = task.metrics.cost_processed - cost_before
            elapsed = time.monotonic() - started
            owed = cost * service_time_s
            if owed > elapsed:
                time.sleep(owed - elapsed)
            done = time.monotonic()
            busy = done - started
            busy_seconds += busy
            latency_us = max(done - message.sent_at, 0.0) * 1e6
            count = len(message.tuples)
            histogram.record(latency_us, count)
            mark_processed += count
            mark_cost += cost
            mark_busy += busy
            mark_latency_us += latency_us * count

        elif isinstance(message, EndInterval):
            if task.has_open_interval:
                task.end_interval()  # expire windowed state past the horizon
            out_queue.put(
                IntervalReport(
                    worker_id=worker_id,
                    interval=message.interval,
                    processed=mark_processed,
                    cost=mark_cost,
                    busy_seconds=mark_busy,
                    latency_us_sum=mark_latency_us,
                )
            )
            mark_processed = 0
            mark_cost = 0.0
            mark_busy = 0.0
            mark_latency_us = 0.0

        elif isinstance(message, ExtractKeys):
            entries = [(key, task.extract_key(key)) for key in message.keys]
            shipped = sum(
                size for _, snapshot in entries for _, _, size in snapshot
            )
            out_queue.put(
                StateShipment(
                    worker_id=worker_id, entries=entries, state_size=shipped
                )
            )

        elif isinstance(message, InstallState):
            for key, snapshot in message.entries:
                task.install_key(key, snapshot)
            out_queue.put(
                InstallAck(worker_id=worker_id, installed_keys=len(message.entries))
            )

        elif isinstance(message, EndOfStream):
            final_state = {}
            if message.collect_state:
                final_state = {
                    key: task.state.payloads(key) for key in task.state.keys()
                }
            out_queue.put(
                FinalReport(
                    worker_id=worker_id,
                    processed=task.metrics.tuples_processed,
                    cost=task.metrics.cost_processed,
                    busy_seconds=busy_seconds,
                    histogram=histogram.to_dict(),
                    migrations_in=task.metrics.migrations_in,
                    migrations_out=task.metrics.migrations_out,
                    state_size=task.state_size,
                    state_keys=len(task.state),
                    final_state=final_state,
                )
            )
            return

        else:  # pragma: no cover - protocol violation
            raise TypeError(f"worker {worker_id} got unknown message {message!r}")
