"""Message types flowing between the coordinator and the worker processes.

Each worker has one bounded *inbound* queue carrying data **and** control
messages in FIFO order, and all workers of a stage share one *outbound* queue
back to the coordinator.  The in-order inbound queue is what makes live
migration safe: an :class:`ExtractKeys` command enqueued after a key's last
data batch is processed only once every preceding tuple of that key has been
applied to the worker's state, so the shipped snapshot is complete (steps 3–6
of the paper's Fig. 5 protocol without a separate ack channel).

In a multi-stage topology a third queue family appears: each stage's workers
put their emitted tuples onto a shared bounded *egress* queue consumed by the
next stage's router.  :class:`EmittedBatch` carries the data;
:class:`UpstreamMark` / :class:`UpstreamDone` are the per-producer interval
and end-of-stream markers (the downstream router closes an interval only when
every upstream producer's mark arrived, so FIFO ordering per producer keeps
interval accounting sound).  The open-loop source process speaks the same
producer protocol, so stage 0 is not a special case.

Everything here must pickle cheaply: batches are **columnar** — parallel
``keys``/``values`` lists rather than a list of ``(key, value)`` 2-tuples or
:class:`~repro.engine.tuples.StreamTuple` objects.  Two flat lists pickle
(and unpickle) measurably cheaper than one list of per-tuple containers, and
they hand the router/worker fast paths the exact shape their vectorised
chunk operations want, with no per-tuple unzipping on the hot path.
Replies carry aggregates, not samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.engine.state import KeyStateSnapshot

__all__ = [
    "TupleBatch",
    "EndInterval",
    "ExtractKeys",
    "InstallState",
    "SetServiceTime",
    "CrashSelf",
    "EndOfStream",
    "EmittedBatch",
    "UpstreamMark",
    "UpstreamDone",
    "IntervalReport",
    "StateShipment",
    "InstallAck",
    "FinalReport",
    "WorkerError",
]

Key = Hashable


# -- coordinator -> worker ---------------------------------------------------------


@dataclass
class TupleBatch:
    """A micro-batch of tuples routed to one worker (columnar layout).

    ``keys[i]``/``values[i]`` form one tuple.  ``sent_at`` is a
    ``time.monotonic()`` stamp taken when the batch was enqueued; per-tuple
    *stage* latency is measured against it on the worker (on Linux the
    monotonic clock is system-wide, so stamps are comparable across
    processes).  ``origin_at`` is the stamp of the batch's oldest tuple at
    the topology *source* (the moment it was offered); the final stage
    measures end-to-end latency against it.  A zero ``origin_at`` means
    "same as sent_at" (single-stage runs).
    """

    interval: int
    sent_at: float
    keys: List[Key]
    values: List[Any]
    origin_at: float = 0.0

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class EndInterval:
    """Marks the interval boundary; the worker replies with an IntervalReport."""

    interval: int


@dataclass
class ExtractKeys:
    """Hand over the windowed state of ``keys`` (source side of a migration).

    The same wire type also drives **checkpointing**: with ``copy=True`` the
    worker ships a *non-destructive* snapshot (the keys stay owned and keep
    serving tuples) and includes its lifetime counters in the shipment.
    ``keys=None`` means "every key with state on this task" and is only
    meaningful in copy mode.
    """

    keys: Optional[List[Key]]
    #: Snapshot instead of extract: ship a copy, keep serving the keys.
    copy: bool = False


@dataclass
class InstallState:
    """Install previously extracted snapshots (target side of a migration).

    With non-empty ``counters`` (a checkpoint restore after supervised
    recovery) the worker additionally resets its lifetime counters —
    processed/cost totals, busy seconds, emission sequence and interval
    watermark — to the checkpointed values, so a replay of the
    post-checkpoint dispatch log reproduces the dead worker's accounting
    exactly once.
    """

    entries: List[Tuple[Key, KeyStateSnapshot]]
    #: Checkpointed lifetime counters (see StateShipment.counters); empty for
    #: an ordinary migration install.
    counters: Dict[str, float] = field(default_factory=dict)


@dataclass
class SetServiceTime:
    """Adjust the worker's emulated per-cost-unit service time mid-run.

    Sent by the coordinator after the calibration interval (adaptive pacing):
    the first interval runs unpaced to measure the host's raw speed, then the
    pacing that keeps the bench saturated on *this* machine is installed.
    """

    service_time_us: float


@dataclass
class CrashSelf:
    """Fault injection: die by SIGKILL when this message is dequeued.

    The worker flushes its outbound queue feeders first, then SIGKILLs its
    own process — no final report, no state hand-off, no Python cleanup.
    The flush keeps the *shared* egress/report queues' writer locks and
    capacity slots out of the blast radius (a process SIGKILLed mid-``send``
    would poison them for every sibling producer forever — a
    ``multiprocessing.Queue`` artifact; real deployments lose a socket,
    which dies with its process).  Everything else about the death is a
    hard crash: in-memory state, accounting and queued inbound messages are
    gone, and recovery must rebuild them from checkpoint + replay.
    """


@dataclass
class EndOfStream:
    """No more data; reply with a FinalReport and exit.

    ``collect_state`` asks the worker to include its final per-key windowed
    payloads in the report (used by correctness tests; off for benchmarks,
    where the state can be large).
    """

    collect_state: bool = False


# -- stage -> stage (and source -> first stage) ------------------------------------


@dataclass
class EmittedBatch:
    """Tuples emitted by one upstream producer, before downstream routing.

    Columnar like :class:`TupleBatch` (``keys[i]``/``values[i]`` form one
    tuple).  ``interval`` is the logical interval the tuples belong to;
    ``origin_at`` the source-offer stamp of the batch's oldest tuple.  The
    downstream stage's router re-keys nothing (the producer already applied
    its stage's key mapper) — it only assigns destinations and re-stamps
    ``sent_at``.
    """

    interval: int
    origin_at: float
    keys: List[Key]
    values: List[Any]
    #: Producing worker id and its per-producer emission sequence number.
    #: Workers stamp every batch with a monotone ``producer_seq`` (restored
    #: from the checkpoint after a recovery), so the downstream router can
    #: drop the duplicates a post-crash replay re-emits — and accept the
    #: re-emissions of batches the dead worker's queue feeder lost.  ``-1``
    #: (the source process) disables the dedup.
    producer_id: int = -1
    producer_seq: int = -1
    #: Name of the producing stage ("source" for the source process).  In a
    #: DAG topology a consumer stage can have several upstream stages feeding
    #: one shared ingress queue; ``origin`` identifies the edge so the
    #: consumer can dedup and close intervals per (origin, producer).  The
    #: empty string (linear chains, old pickles) means "the only upstream".
    origin: str = ""

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class UpstreamMark:
    """One producer finished emitting for ``interval``.

    The downstream router closes the interval once every producer of **every
    upstream stage** has marked it (producer = source process for stage 0,
    upstream worker for later stages; FIFO queue order guarantees the mark
    follows the producer's last batch of the interval on its edge).
    """

    producer_id: int
    interval: int
    #: Producing stage name; see :class:`EmittedBatch.origin`.
    origin: str = ""


@dataclass
class UpstreamDone:
    """One producer reached end of stream and will emit nothing more."""

    producer_id: int
    #: Producing stage name; see :class:`EmittedBatch.origin`.
    origin: str = ""


# -- worker -> coordinator ---------------------------------------------------------


@dataclass
class IntervalReport:
    """Per-worker account of one finished interval.

    Because the inbound queue is FIFO, ``processed`` counts exactly the tuples
    of that interval which were dispatched to this worker — the report is
    emitted when the worker reaches the interval's :class:`EndInterval`
    marker, after the last of its batches.
    """

    worker_id: int
    interval: int
    processed: int
    cost: float
    busy_seconds: float
    #: Sum of per-tuple latencies (µs) over the interval, for weighted means.
    latency_us_sum: float = 0.0
    #: Log-bucketed latency histogram *delta* of this interval alone
    #: (:meth:`~repro.runtime.histogram.LatencyHistogram.to_dict` payload), so
    #: latency-over-time plots come from measured data, not just the mean.
    histogram: Dict[str, Any] = field(default_factory=dict)


@dataclass
class StateShipment:
    """The extracted windowed state snapshots, shipped to the coordinator.

    A checkpoint shipment (``ExtractKeys(copy=True)``) additionally carries
    the worker's lifetime ``counters`` — processed/cost totals, busy
    seconds, emission sequence, interval watermark — which the supervisor
    persists beside the state and restores on recovery.
    """

    worker_id: int
    entries: List[Tuple[Key, KeyStateSnapshot]]
    state_size: float
    #: Lifetime counters at snapshot time (copy mode only; else empty).
    counters: Dict[str, float] = field(default_factory=dict)


@dataclass
class InstallAck:
    """Acknowledges an InstallState command."""

    worker_id: int
    installed_keys: int


@dataclass
class FinalReport:
    """Lifetime totals of one worker, sent right before it exits."""

    worker_id: int
    processed: int
    cost: float
    busy_seconds: float
    histogram: Dict[str, Any]
    migrations_in: int
    migrations_out: int
    state_size: float
    state_keys: int
    #: ``{key: [windowed payloads, oldest first]}`` when collect_state was set.
    final_state: Dict[Key, List[Any]] = field(default_factory=dict)
    #: Latency recorded after the last interval marker (e.g. tuples released
    #: by a final migration hand-off); folded into the last interval's delta
    #: so the per-interval histograms still sum to the lifetime histogram.
    tail_histogram: Dict[str, Any] = field(default_factory=dict)
    #: End-to-end (source-offer to completion) histogram; only populated by
    #: final-stage workers (no egress), where it differs from ``histogram``.
    e2e_histogram: Dict[str, Any] = field(default_factory=dict)
    #: The service pacing in effect when the worker exited (observability for
    #: the adaptive calibration).
    service_time_us: float = 0.0


@dataclass
class WorkerError:
    """A worker crashed; carries the formatted traceback."""

    worker_id: int
    message: str
