"""Message types flowing between the coordinator and the worker processes.

Each worker has one bounded *inbound* queue carrying data **and** control
messages in FIFO order, and all workers share one *outbound* queue back to the
coordinator.  The in-order inbound queue is what makes live migration safe: an
:class:`ExtractKeys` command enqueued after a key's last data batch is
processed only once every preceding tuple of that key has been applied to the
worker's state, so the shipped snapshot is complete (steps 3–6 of the paper's
Fig. 5 protocol without a separate ack channel).

Everything here must pickle cheaply: batches carry plain ``(key, value)``
pairs rather than :class:`~repro.engine.tuples.StreamTuple` objects (the
worker rebuilds tuples locally), and replies carry aggregates, not samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Tuple

from repro.engine.state import KeyStateSnapshot

__all__ = [
    "TupleBatch",
    "EndInterval",
    "ExtractKeys",
    "InstallState",
    "EndOfStream",
    "IntervalReport",
    "StateShipment",
    "InstallAck",
    "FinalReport",
    "WorkerError",
]

Key = Hashable


# -- coordinator -> worker ---------------------------------------------------------


@dataclass
class TupleBatch:
    """A micro-batch of tuples routed to one worker.

    ``sent_at`` is a ``time.monotonic()`` stamp taken when the batch was
    enqueued; per-tuple latency is measured against it on the worker (on
    Linux the monotonic clock is system-wide, so stamps are comparable
    across processes).
    """

    interval: int
    sent_at: float
    tuples: List[Tuple[Key, Any]]


@dataclass
class EndInterval:
    """Marks the interval boundary; the worker replies with an IntervalReport."""

    interval: int


@dataclass
class ExtractKeys:
    """Hand over the windowed state of ``keys`` (source side of a migration)."""

    keys: List[Key]


@dataclass
class InstallState:
    """Install previously extracted snapshots (target side of a migration)."""

    entries: List[Tuple[Key, KeyStateSnapshot]]


@dataclass
class EndOfStream:
    """No more data; reply with a FinalReport and exit.

    ``collect_state`` asks the worker to include its final per-key windowed
    payloads in the report (used by correctness tests; off for benchmarks,
    where the state can be large).
    """

    collect_state: bool = False


# -- worker -> coordinator ---------------------------------------------------------


@dataclass
class IntervalReport:
    """Per-worker account of one finished interval.

    Because the inbound queue is FIFO, ``processed`` counts exactly the tuples
    of that interval which were dispatched to this worker — the report is
    emitted when the worker reaches the interval's :class:`EndInterval`
    marker, after the last of its batches.
    """

    worker_id: int
    interval: int
    processed: int
    cost: float
    busy_seconds: float
    #: Sum of per-tuple latencies (µs) over the interval, for weighted means.
    latency_us_sum: float = 0.0


@dataclass
class StateShipment:
    """The extracted windowed state snapshots, shipped to the coordinator."""

    worker_id: int
    entries: List[Tuple[Key, KeyStateSnapshot]]
    state_size: float


@dataclass
class InstallAck:
    """Acknowledges an InstallState command."""

    worker_id: int
    installed_keys: int


@dataclass
class FinalReport:
    """Lifetime totals of one worker, sent right before it exits."""

    worker_id: int
    processed: int
    cost: float
    busy_seconds: float
    histogram: Dict[str, Any]
    migrations_in: int
    migrations_out: int
    state_size: float
    state_keys: int
    #: ``{key: [windowed payloads, oldest first]}`` when collect_state was set.
    final_state: Dict[Key, List[Any]] = field(default_factory=dict)


@dataclass
class WorkerError:
    """A worker crashed; carries the formatted traceback."""

    worker_id: int
    message: str
