"""Batch dispatcher feeding the worker queues.

The router is the runtime twin of the simulator's snapshot routing: it groups
each micro-batch of tuples by destination with the partitioner's memoised
:meth:`~repro.baselines.base.Partitioner.assign_batch` fast path and enqueues
one :class:`~repro.runtime.messages.TupleBatch` per destination worker.

The dispatch path is **chunk-vectorised**: per chunk it performs one
``assign_batch`` call, one :class:`collections.Counter` update over the keys,
one ``np.bincount`` over the destination array for per-task tuple counts, one
batched cost evaluation (:meth:`~repro.engine.operator.OperatorLogic.
batch_cost` — a scalar multiply for the constant/affine cost operators), and
one stable argsort that builds every destination's columnar tuple list in a
single pass.  No per-tuple Python bookkeeping runs on the common path, so the
coordinator thread stops being the measured bottleneck before the workers are
(ROADMAP "Router fast path").

Two behaviours come from the queues being *bounded*:

* **Backpressure** (default): a full worker queue blocks the dispatcher, so
  the whole pipeline runs at the pace of the slowest task — Storm's
  backpushing effect, the very phenomenon the paper measures.
* **Shedding** (``shed_timeout_seconds`` set): a put that stays blocked past
  the timeout drops the batch instead, and the drop is charged to the worker
  in a :class:`~repro.engine.backpressure.ShedLedger` so it stays observable.

During a live migration the controller *pauses* the affected keys: their
tuples are held in a router-side buffer (stamped on arrival, so the pause
shows up in their measured latency) and are re-dispatched under the new
assignment when the controller resumes — grouped by their logical interval,
so a buffer spanning an interval boundary never mis-tags downstream
accounting.  The common no-migration case pays only one ``if`` per chunk for
this machinery.
"""

from __future__ import annotations

import queue as queue_module
import time
from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.baselines.base import Partitioner
from repro.engine.backpressure import ShedLedger
from repro.engine.operator import OperatorLogic
from repro.runtime.messages import TupleBatch

__all__ = ["IntervalAccount", "StreamRouter"]

Key = Hashable


class IntervalAccount:
    """Dispatch accounting of one logical interval.

    Kept per interval (not per "current interval") because a pipelined
    upstream stage can emit tuples of interval ``k+1`` before interval
    ``k`` closed downstream; charging them to the open interval would feed
    the rebalancing planner and the skewness metrics mixed-interval
    statistics.

    Per-task quantities are **dense arrays** indexed by task id — the
    vectorised dispatch adds whole ``np.bincount`` results to them — and are
    converted to the ``{task: value}`` dict shape consumers expect only when
    the interval closes (the :attr:`offered_tuples`/:attr:`offered_cost`
    views), keeping the report schemas unchanged.
    """

    __slots__ = ("freqs", "offered_tuples_by_task", "offered_cost_by_task", "shed")

    def __init__(self, num_tasks: int) -> None:
        #: Per-key dispatch counts (integer-exact; float view via ``freqs_dict``).
        self.freqs: Counter = Counter()
        self.offered_tuples_by_task = np.zeros(num_tasks, dtype=np.float64)
        self.offered_cost_by_task = np.zeros(num_tasks, dtype=np.float64)
        self.shed: Dict[int, float] = {}

    def fit(self, num_tasks: int) -> None:
        """Grow the dense arrays to cover ``num_tasks`` tasks (elastic scale).

        An account can outlive a resize in either direction: a pipelined
        upstream may emit next-interval tuples before the boundary at which
        the stage scales out (the account exists, sized for the old group),
        and after a scale-in the arrays intentionally keep their old length
        so the drained tasks' already-charged counts survive into the
        interval report.  Growing is therefore the only adjustment.
        """
        have = len(self.offered_tuples_by_task)
        if num_tasks > have:
            pad = np.zeros(num_tasks - have, dtype=np.float64)
            self.offered_tuples_by_task = np.concatenate(
                [self.offered_tuples_by_task, pad]
            )
            self.offered_cost_by_task = np.concatenate(
                [self.offered_cost_by_task, pad]
            )

    @property
    def offered_tuples(self) -> Dict[int, float]:
        """Dense ``{task: offered tuple count}`` view (every task present)."""
        return dict(enumerate(self.offered_tuples_by_task.tolist()))

    @property
    def offered_cost(self) -> Dict[int, float]:
        """Dense ``{task: offered cost}`` view (every task present)."""
        return dict(enumerate(self.offered_cost_by_task.tolist()))

    def freqs_dict(self) -> Dict[Key, float]:
        """The per-key dispatch counts as floats (scalar-reference shape)."""
        return {key: float(count) for key, count in self.freqs.items()}


class StreamRouter:
    """Routes micro-batches of ``(key, value)`` tuples to worker queues."""

    def __init__(
        self,
        partitioner: Partitioner,
        logic: OperatorLogic,
        worker_queues: Sequence[Any],
        *,
        batch_size: int = 256,
        shed_timeout_seconds: Optional[float] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(worker_queues) != partitioner.num_tasks:
            raise ValueError(
                f"partitioner routes over {partitioner.num_tasks} tasks but "
                f"{len(worker_queues)} worker queues were given"
            )
        self.partitioner = partitioner
        self.logic = logic
        #: Destination queues.  In production these are abort-aware proxies
        #: (the coordinator's ``_AbortableQueue``), so the blocking no-timeout
        #: put below cannot hang past a crashed run — the RPL002 lint rule
        #: recognises the receiver by this name.
        self.abortable_queues = list(worker_queues)
        self.batch_size = int(batch_size)
        self.shed_timeout_seconds = shed_timeout_seconds
        self.shed_ledger = ShedLedger()

        self._num_tasks = len(self.abortable_queues)
        self._paused_keys: set = set()
        #: Held tuples of paused keys: ``(key, value, interval, buffered_at,
        #: origin_at)``.
        self._pause_buffer: List[Tuple[Key, Any, int, float, float]] = []

        # Dispatch accounting, bucketed by the batches' logical interval.
        self._accounts: Dict[int, IntervalAccount] = {}
        self._interval = 0

        #: Cumulative split-key routing statistics (``None`` until a
        #: snapshot finds a key-splitting partitioner underneath).
        self._split_stats: Optional[Dict[str, float]] = None

    # -- interval accounting ------------------------------------------------------

    def _account(self, interval: int) -> IntervalAccount:
        account = self._accounts.get(interval)
        if account is None:
            account = self._accounts[interval] = IntervalAccount(self._num_tasks)
        return account

    def begin_interval(self, interval: int) -> None:
        """Advance the default interval tag (untagged dispatch charges here)."""
        self._interval = int(interval)
        self._account(self._interval)

    def pop_interval(self, interval: int) -> IntervalAccount:
        """Take (and drop) the closed interval's dispatch accounting."""
        return self._accounts.pop(interval, None) or IntervalAccount(
            self._num_tasks
        )

    # Current-interval views (single-stage runs and debugging; a topology
    # coordinator uses :meth:`pop_interval` at each close instead).  Each
    # access converts the dense arrays, so these are *views*, not live dicts.

    @property
    def dispatched_freqs(self) -> Dict[Key, float]:
        return self._account(self._interval).freqs_dict()

    @property
    def offered_tuples(self) -> Dict[int, float]:
        return self._account(self._interval).offered_tuples

    @property
    def offered_cost(self) -> Dict[int, float]:
        return self._account(self._interval).offered_cost

    @property
    def shed_tuples_interval(self) -> Dict[int, float]:
        return self._account(self._interval).shed

    # -- dispatch -----------------------------------------------------------------

    def dispatch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        pump: Optional[Callable[[], None]] = None,
        *,
        interval: Optional[int] = None,
        origin_at: Optional[float] = None,
    ) -> None:
        """Route and enqueue a columnar tuple batch in micro-batch chunks.

        ``keys``/``values`` are the parallel lists of one
        :class:`~repro.runtime.messages.EmittedBatch` (or any materialised
        columnar stream slice).  ``pump`` is called between micro-batches;
        the coordinator uses it to advance an in-flight migration hand-off
        while dispatch continues.  ``interval`` tags the dispatched batches
        (default: the router's current interval — in a pipelined topology an
        upstream stage may still emit tuples of an earlier interval);
        ``origin_at`` carries the source-offer stamp for end-to-end latency.
        """
        if len(keys) != len(values):
            raise ValueError(
                f"columnar batch length mismatch: {len(keys)} keys vs "
                f"{len(values)} values"
            )
        batch_size = self.batch_size
        if len(keys) <= batch_size:
            if keys:
                self._dispatch_chunk(keys, values, interval, origin_at)
                if pump is not None:
                    pump()
            return
        for start in range(0, len(keys), batch_size):
            stop = start + batch_size
            self._dispatch_chunk(keys[start:stop], values[start:stop], interval, origin_at)
            if pump is not None:
                pump()

    def _dispatch_chunk(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: Optional[int] = None,
        origin_at: Optional[float] = None,
    ) -> None:
        destinations = self.partitioner.assign_batch_array(keys)
        now = time.monotonic()
        tag = self._interval if interval is None else int(interval)
        origin = now if origin_at is None else origin_at
        account = self._account(tag)

        # One-pass chunk accounting: no per-tuple dict updates.  Sliced adds
        # because an account's arrays can be larger than the current task
        # group after an elastic scale-in (``IntervalAccount.fit``).
        account.freqs.update(keys)
        account.fit(self._num_tasks)
        counts = np.bincount(destinations, minlength=self._num_tasks)
        account.offered_tuples_by_task[: len(counts)] += counts
        costs = self.logic.batch_cost(keys, values)
        if np.ndim(costs) == 0:
            account.offered_cost_by_task[: len(counts)] += counts * float(costs)
        else:
            account.offered_cost_by_task[: len(counts)] += np.bincount(
                destinations,
                weights=np.asarray(costs, dtype=np.float64),
                minlength=self._num_tasks,
            )

        if self._paused_keys:  # rare: a live migration hand-off is in flight
            keys, values, destinations, counts = self._buffer_paused(
                keys, values, destinations, tag, now, origin
            )
            if not keys:
                return
        self._enqueue_grouped(keys, values, destinations, counts, tag, now, origin)

    def _buffer_paused(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        destinations: np.ndarray,
        tag: int,
        now: float,
        origin: float,
    ) -> Tuple[List[Key], List[Any], np.ndarray, np.ndarray]:
        """Divert tuples of paused keys into the pause buffer (slow path)."""
        paused = self._paused_keys
        buffer_append = self._pause_buffer.append
        kept_keys: List[Key] = []
        kept_values: List[Any] = []
        kept_dest: List[int] = []
        for key, value, task in zip(keys, values, destinations.tolist()):
            if key in paused:
                buffer_append((key, value, tag, now, origin))
            else:
                kept_keys.append(key)
                kept_values.append(value)
                kept_dest.append(task)
        dest = np.asarray(kept_dest, dtype=np.intp)
        counts = np.bincount(dest, minlength=self._num_tasks)
        return kept_keys, kept_values, dest, counts

    def _enqueue_grouped(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        destinations: np.ndarray,
        counts: np.ndarray,
        tag: int,
        sent_at: float,
        origin: float,
    ) -> None:
        """Group a routed chunk task-major and enqueue one batch per task.

        A stable argsort of the destination array yields every task's tuple
        indices as one contiguous segment, with the original order preserved
        inside each segment — the per-key FIFO order the migration protocol
        relies on.  Keys/values are gathered through object-dtype fancy
        indexing, so the grouping is a single C-level pass instead of a
        per-tuple ``setdefault``/``append`` loop.
        """
        count = len(keys)
        if count == 0:
            return
        tasks = np.flatnonzero(counts)
        if len(tasks) == 1:
            # Whole chunk goes to one worker: skip the sort and the gathers.
            self._put(
                int(tasks[0]),
                TupleBatch(
                    interval=tag,
                    sent_at=sent_at,
                    keys=list(keys),
                    values=list(values),
                    origin_at=origin,
                ),
            )
            return
        order = np.argsort(destinations, kind="stable")
        # ``fromiter`` (not ``array``): elements may themselves be tuples,
        # which np.array would try to broadcast into a 2-D array.
        keys_arr = np.fromiter(keys, dtype=object, count=count)
        values_arr = np.fromiter(values, dtype=object, count=count)
        ends = np.cumsum(counts)
        for task in tasks.tolist():
            end = ends[task]
            segment = order[end - counts[task] : end]
            self._put(
                task,
                TupleBatch(
                    interval=tag,
                    sent_at=sent_at,
                    keys=keys_arr[segment].tolist(),
                    values=values_arr[segment].tolist(),
                    origin_at=origin,
                ),
            )

    def _put(self, task: int, batch: TupleBatch) -> None:
        if self.shed_timeout_seconds is None:
            self.abortable_queues[task].put(batch)
            return
        try:
            self.abortable_queues[task].put(batch, timeout=self.shed_timeout_seconds)
        except queue_module.Full:
            count = len(batch.keys)
            self.shed_ledger.record(task, count)
            shed = self._account(batch.interval).shed
            shed[task] = shed.get(task, 0.0) + count

    # -- split-key routing statistics ---------------------------------------------

    def snapshot_split_stats(self) -> Optional[Dict[str, float]]:
        """Fold the partitioner's per-interval split bookkeeping into the
        router's cumulative split-key statistics.

        Key-splitting partitioners (PKG) fan a key's tuples over several
        replicas and track the fan in ``split_counts``; the coordinator calls
        this at each interval close, *before*
        :meth:`~repro.baselines.base.Partitioner.on_interval_end` resets that
        book.  Returns the updated totals, or ``None`` for key-contiguous
        partitioners (nothing to read — every key has exactly one replica).
        """
        split_counts = getattr(self.partitioner, "split_counts", None)
        if split_counts is None:
            return None
        stats = self._split_stats
        if stats is None:
            stats = self._split_stats = {
                "routed_keys": 0.0,
                "split_keys": 0.0,
                "split_tuples": 0.0,
                "total_partials": 0.0,
                "max_partials_per_key": 0.0,
            }
        for per_task in split_counts.values():
            fan = len(per_task)
            stats["routed_keys"] += 1.0
            stats["total_partials"] += float(fan)
            if fan > 1:
                stats["split_keys"] += 1.0
                stats["split_tuples"] += float(sum(per_task.values()))
            if fan > stats["max_partials_per_key"]:
                stats["max_partials_per_key"] = float(fan)
        return dict(stats)

    @property
    def split_stats(self) -> Optional[Dict[str, float]]:
        """Cumulative split-key statistics across closed intervals (a copy)."""
        return None if self._split_stats is None else dict(self._split_stats)

    # -- elastic scaling ----------------------------------------------------------

    def set_queues(self, worker_queues: Sequence[Any]) -> None:
        """Point the router at a resized worker-queue list (elastic scaling).

        Called at an interval boundary with dispatch quiescent, after the
        partitioner was resized — the new list must match its task count.
        """
        if len(worker_queues) != self.partitioner.num_tasks:
            raise ValueError(
                f"partitioner routes over {self.partitioner.num_tasks} tasks "
                f"but {len(worker_queues)} worker queues were given"
            )
        self.abortable_queues = list(worker_queues)
        self._num_tasks = len(self.abortable_queues)

    # -- pause / resume (live migration support) ----------------------------------

    def pause(self, keys) -> None:
        """Stop dispatching ``keys``; their tuples are buffered until resume."""
        self._paused_keys.update(keys)

    def resume(self) -> int:
        """Release every paused key and re-dispatch the buffered tuples.

        The buffered tuples are routed under the *current* assignment (the
        rebalanced one), **grouped by the logical interval they were
        buffered under** — a pause can span an interval boundary, and
        re-dispatching a mixed buffer under one tag would mis-charge the
        downstream per-interval accounting.  Each released chunk is stamped
        with its oldest buffering time, so the pause the tuples sat through
        is part of their measured latency.  Returns the number of released
        tuples.
        """
        self._paused_keys.clear()
        buffered, self._pause_buffer = self._pause_buffer, []
        if not buffered:
            return 0
        by_interval: Dict[int, List[Tuple[Key, Any, int, float, float]]] = {}
        for entry in buffered:
            by_interval.setdefault(entry[2], []).append(entry)
        for tag in sorted(by_interval):
            entries = by_interval[tag]
            for start in range(0, len(entries), self.batch_size):
                chunk = entries[start : start + self.batch_size]
                keys = [entry[0] for entry in chunk]
                values = [entry[1] for entry in chunk]
                destinations = self.partitioner.assign_batch_array(keys)
                counts = np.bincount(destinations, minlength=self._num_tasks)
                # Stamped with the chunk's oldest buffer time so the wait is
                # charged to the released tuples' latency.
                oldest = min(entry[3] for entry in chunk)
                origin = min(entry[4] for entry in chunk)
                self._enqueue_grouped(
                    keys, values, destinations, counts, tag, oldest, origin
                )
        return len(buffered)

    @property
    def paused_keys(self) -> frozenset:
        return frozenset(self._paused_keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamRouter(tasks={len(self.abortable_queues)}, "
            f"batch={self.batch_size}, paused={len(self._paused_keys)})"
        )
