"""Batch dispatcher feeding the worker queues.

The router is the runtime twin of the simulator's snapshot routing: it groups
each micro-batch of tuples by destination with the partitioner's memoised
:meth:`~repro.baselines.base.Partitioner.assign_batch` fast path and enqueues
one :class:`~repro.runtime.messages.TupleBatch` per destination worker.

Two behaviours come from the queues being *bounded*:

* **Backpressure** (default): a full worker queue blocks the dispatcher, so
  the whole pipeline runs at the pace of the slowest task — Storm's
  backpushing effect, the very phenomenon the paper measures.
* **Shedding** (``shed_timeout_seconds`` set): a put that stays blocked past
  the timeout drops the batch instead, and the drop is charged to the worker
  in a :class:`~repro.engine.backpressure.ShedLedger` so it stays observable.

During a live migration the controller *pauses* the affected keys: their
tuples are held in a router-side buffer (stamped on arrival, so the pause
shows up in their measured latency) and are re-dispatched under the new
assignment when the controller resumes.
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.baselines.base import Partitioner
from repro.engine.backpressure import ShedLedger
from repro.engine.operator import OperatorLogic
from repro.runtime.messages import TupleBatch

__all__ = ["IntervalAccount", "StreamRouter"]

Key = Hashable


class IntervalAccount:
    """Dispatch accounting of one logical interval.

    Kept per interval (not per "current interval") because a pipelined
    upstream stage can emit tuples of interval ``k+1`` before interval
    ``k`` closed downstream; charging them to the open interval would feed
    the rebalancing planner and the skewness metrics mixed-interval
    statistics.
    """

    __slots__ = ("freqs", "offered_tuples", "offered_cost", "shed")

    def __init__(self, num_tasks: int) -> None:
        self.freqs: Dict[Key, float] = {}
        self.offered_tuples: Dict[int, float] = {
            task: 0.0 for task in range(num_tasks)
        }
        self.offered_cost: Dict[int, float] = {
            task: 0.0 for task in range(num_tasks)
        }
        self.shed: Dict[int, float] = {}


class StreamRouter:
    """Routes micro-batches of ``(key, value)`` tuples to worker queues."""

    def __init__(
        self,
        partitioner: Partitioner,
        logic: OperatorLogic,
        worker_queues: Sequence[Any],
        *,
        batch_size: int = 256,
        shed_timeout_seconds: Optional[float] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(worker_queues) != partitioner.num_tasks:
            raise ValueError(
                f"partitioner routes over {partitioner.num_tasks} tasks but "
                f"{len(worker_queues)} worker queues were given"
            )
        self.partitioner = partitioner
        self.logic = logic
        self.worker_queues = list(worker_queues)
        self.batch_size = int(batch_size)
        self.shed_timeout_seconds = shed_timeout_seconds
        self.shed_ledger = ShedLedger()

        self._paused_keys: set = set()
        #: Held tuples of paused keys: ``(key, value, interval, buffered_at,
        #: origin_at)``.
        self._pause_buffer: List[Tuple[Key, Any, int, float, float]] = []

        # Dispatch accounting, bucketed by the batches' logical interval.
        self._accounts: Dict[int, IntervalAccount] = {}
        self._interval = 0

    # -- interval accounting ------------------------------------------------------

    def _account(self, interval: int) -> IntervalAccount:
        account = self._accounts.get(interval)
        if account is None:
            account = self._accounts[interval] = IntervalAccount(
                len(self.worker_queues)
            )
        return account

    def begin_interval(self, interval: int) -> None:
        """Advance the default interval tag (untagged dispatch charges here)."""
        self._interval = int(interval)
        self._account(self._interval)

    def pop_interval(self, interval: int) -> IntervalAccount:
        """Take (and drop) the closed interval's dispatch accounting."""
        return self._accounts.pop(
            interval, IntervalAccount(len(self.worker_queues))
        )

    # Current-interval views (single-stage runs and debugging; a topology
    # coordinator uses :meth:`pop_interval` at each close instead).

    @property
    def dispatched_freqs(self) -> Dict[Key, float]:
        return self._account(self._interval).freqs

    @property
    def offered_tuples(self) -> Dict[int, float]:
        return self._account(self._interval).offered_tuples

    @property
    def offered_cost(self) -> Dict[int, float]:
        return self._account(self._interval).offered_cost

    @property
    def shed_tuples_interval(self) -> Dict[int, float]:
        return self._account(self._interval).shed

    # -- dispatch -----------------------------------------------------------------

    def dispatch(
        self,
        tuples: Iterable[Tuple[Key, Any]],
        pump: Optional[Callable[[], None]] = None,
        *,
        interval: Optional[int] = None,
        origin_at: Optional[float] = None,
    ) -> None:
        """Route and enqueue a stream of ``(key, value)`` tuples in micro-batches.

        ``pump`` is called between micro-batches; the coordinator uses it to
        advance an in-flight migration hand-off while dispatch continues.
        ``interval`` tags the dispatched batches (default: the router's
        current interval — in a pipelined topology an upstream stage may
        still emit tuples of an earlier interval); ``origin_at`` carries the
        source-offer stamp for end-to-end latency.
        """
        chunk: List[Tuple[Key, Any]] = []
        for pair in tuples:
            chunk.append(pair)
            if len(chunk) >= self.batch_size:
                self._dispatch_chunk(chunk, interval, origin_at)
                chunk = []
                if pump is not None:
                    pump()
        if chunk:
            self._dispatch_chunk(chunk, interval, origin_at)
            if pump is not None:
                pump()

    def _dispatch_chunk(
        self,
        chunk: List[Tuple[Key, Any]],
        interval: Optional[int] = None,
        origin_at: Optional[float] = None,
    ) -> None:
        tuple_cost = self.logic.tuple_cost
        destinations = self.partitioner.assign_batch([key for key, _ in chunk])
        per_task: Dict[int, List[Tuple[Key, Any]]] = {}
        now = time.monotonic()
        tag = self._interval if interval is None else int(interval)
        origin = now if origin_at is None else origin_at
        account = self._account(tag)
        freqs = account.freqs
        offered_tuples = account.offered_tuples
        offered_cost = account.offered_cost
        for (key, value), task in zip(chunk, destinations):
            freqs[key] = freqs.get(key, 0.0) + 1.0
            offered_tuples[task] = offered_tuples.get(task, 0.0) + 1.0
            offered_cost[task] = (
                offered_cost.get(task, 0.0) + tuple_cost(key, value)
            )
            if key in self._paused_keys:
                self._pause_buffer.append((key, value, tag, now, origin))
                continue
            per_task.setdefault(task, []).append((key, value))
        for task, batch in per_task.items():
            self._put(
                task,
                TupleBatch(
                    interval=tag, sent_at=now, tuples=batch, origin_at=origin
                ),
            )

    def _put(self, task: int, batch: TupleBatch) -> None:
        if self.shed_timeout_seconds is None:
            self.worker_queues[task].put(batch)
            return
        try:
            self.worker_queues[task].put(batch, timeout=self.shed_timeout_seconds)
        except queue_module.Full:
            count = len(batch.tuples)
            self.shed_ledger.record(task, count)
            shed = self._account(batch.interval).shed
            shed[task] = shed.get(task, 0.0) + count

    # -- pause / resume (live migration support) ----------------------------------

    def pause(self, keys: Iterable[Key]) -> None:
        """Stop dispatching ``keys``; their tuples are buffered until resume."""
        self._paused_keys.update(keys)

    def resume(self) -> int:
        """Release every paused key and re-dispatch the buffered tuples.

        The buffered tuples are routed under the *current* assignment (the
        rebalanced one) and stamped with their buffering time, so the pause
        they sat through is part of their measured latency.  Returns the
        number of released tuples.
        """
        self._paused_keys.clear()
        buffered, self._pause_buffer = self._pause_buffer, []
        released = len(buffered)
        index = 0
        while index < len(buffered):
            chunk = buffered[index : index + self.batch_size]
            index += self.batch_size
            destinations = self.partitioner.assign_batch([key for key, *_ in chunk])
            per_task: Dict[int, List[Tuple[Key, Any]]] = {}
            for (key, value, interval, stamped_at, origin_at), task in zip(
                chunk, destinations
            ):
                per_task.setdefault(task, []).append((key, value))
            # One batch per destination, stamped with the oldest buffer time so
            # the wait is charged to the released tuples' latency.
            oldest = min(stamped_at for _, _, _, stamped_at, _ in chunk)
            origin = min(origin_at for *_, origin_at in chunk)
            interval = chunk[0][2]
            for task, batch in per_task.items():
                self._put(
                    task,
                    TupleBatch(
                        interval=interval,
                        sent_at=oldest,
                        tuples=batch,
                        origin_at=origin,
                    ),
                )
        return released

    @property
    def paused_keys(self) -> frozenset:
        return frozenset(self._paused_keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamRouter(tasks={len(self.worker_queues)}, "
            f"batch={self.batch_size}, paused={len(self._paused_keys)})"
        )
