"""Mergeable log-bucketed latency histogram.

Worker processes record one latency sample per processed tuple; shipping raw
samples back to the coordinator would dominate the queue traffic, so each
worker keeps a :class:`LatencyHistogram` — geometric buckets from 1 µs to
~1000 s — and ships only the bucket counts.  Histograms from all workers merge
by adding counts, and quantiles (p50/p99) are read off the merged histogram
with bounded relative error (the bucket growth factor).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["LatencyHistogram"]

#: Geometric bucket growth factor; relative quantile error is at most this.
_GROWTH = 1.25
_LOG_GROWTH = math.log(_GROWTH)

#: Lower edge of the first bucket, in microseconds.
_MIN_US = 1.0

#: Number of buckets: covers up to _MIN_US * _GROWTH**_NUM_BUCKETS ≈ 1.6e9 µs.
_NUM_BUCKETS = 96


class LatencyHistogram:
    """Fixed-layout geometric histogram of latencies in microseconds."""

    __slots__ = ("counts", "total", "sum_us", "max_us")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * _NUM_BUCKETS
        self.total = 0
        self.sum_us = 0.0
        self.max_us = 0.0

    @staticmethod
    def _bucket(value_us: float) -> int:
        if value_us <= _MIN_US:
            return 0
        index = int(math.log(value_us / _MIN_US) / _LOG_GROWTH)
        return min(index, _NUM_BUCKETS - 1)

    @staticmethod
    def _bucket_upper(index: int) -> float:
        return _MIN_US * _GROWTH ** (index + 1)

    # -- recording ----------------------------------------------------------------

    def record(self, value_us: float, count: int = 1) -> None:
        """Record ``count`` samples of ``value_us`` microseconds."""
        if count <= 0:
            return
        if value_us < 0:
            value_us = 0.0
        self.counts[self._bucket(value_us)] += count
        self.total += count
        self.sum_us += value_us * count
        if value_us > self.max_us:
            self.max_us = value_us

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (returns self)."""
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_us += other.sum_us
        self.max_us = max(self.max_us, other.max_us)
        return self

    # -- queries ------------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile latency in microseconds (0.0 when empty).

        Returns the upper edge of the bucket containing the quantile, so the
        estimate errs on the pessimistic side by at most the growth factor.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                return min(self._bucket_upper(index), self.max_us or float("inf"))
        return self.max_us

    @property
    def p50_us(self) -> float:
        return self.quantile(0.50)

    @property
    def p99_us(self) -> float:
        return self.quantile(0.99)

    @property
    def mean_us(self) -> float:
        return self.sum_us / self.total if self.total else 0.0

    def summary_ms(self) -> Dict[str, float]:
        """Headline numbers in milliseconds (what the bench report prints)."""
        return {
            "latency_p50_ms": self.p50_us / 1000.0,
            "latency_p99_ms": self.p99_us / 1000.0,
            "latency_mean_ms": self.mean_us / 1000.0,
            "latency_max_ms": self.max_us / 1000.0,
            "samples": float(self.total),
        }

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready sparse representation."""
        return {
            "growth": _GROWTH,
            "min_us": _MIN_US,
            "counts": {
                str(index): count
                for index, count in enumerate(self.counts)
                if count > 0
            },
            "total": self.total,
            "sum_us": self.sum_us,
            "max_us": self.max_us,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LatencyHistogram":
        """Inverse of :meth:`to_dict`."""
        histogram = cls()
        for index, count in dict(payload.get("counts", {})).items():  # type: ignore[arg-type]
            histogram.counts[int(index)] = int(count)
        histogram.total = int(payload.get("total", 0))
        histogram.sum_us = float(payload.get("sum_us", 0.0))
        histogram.max_us = float(payload.get("max_us", 0.0))
        return histogram

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(samples={self.total}, p50={self.p50_us:.0f}us, "
            f"p99={self.p99_us:.0f}us)"
        )
