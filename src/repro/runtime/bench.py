"""Wall-clock benchmarking of partitioning strategies on the process runtime.

A :class:`RuntimeSpec` is the runtime twin of
:class:`~repro.experiments.specs.ExperimentSpec`: it picks a workload
(``wordcount`` / ``windowed_aggregate`` / ``tpch_q5``), a strategy list, a
parallelism and a scale preset, and :func:`run_bench` executes each strategy
on the *same* materialised tuple stream through a
:class:`~repro.runtime.local.LocalRuntime`.  The outcome is an
:class:`~repro.experiments.specs.ExperimentRun` whose rows carry **measured**
tuples/sec and p50/p99 latency per strategy (``engine: "process"`` in the
metadata), persisted through the ordinary
:class:`~repro.experiments.store.ResultsStore` plus a standalone
``BENCH_runtime.json`` report for the benchmark trajectory.

The workloads are streamed at the interval snapshots of the repo's existing
generators (Zipf / social-style wordcount, the TPC-H Q5 stage-1 lineitem
stream keyed by order key) expanded into shuffled per-interval tuple lists.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.strategy import get_strategy, has_strategy, strategy_names
from repro.engine.operator import OperatorLogic
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.experiments.specs import ExperimentRun, ExperimentSpec, RunMetadata, git_revision
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.operators.wordcount import WordCountOperator
from repro.runtime.local import LocalRuntime, RuntimeConfig, RuntimeResult
from repro.workloads.tpch import TPCHStreamWorkload, generate_tpch
from repro.workloads.zipf import ZipfWorkload

__all__ = ["BENCH_WORKLOADS", "RuntimeSpec", "run_bench", "write_bench_report"]

Key = Hashable

#: Default output file of the standalone benchmark report.
DEFAULT_BENCH_REPORT = "BENCH_runtime.json"

#: Strategies compared when the spec does not name any.
DEFAULT_STRATEGIES = ("storm", "mixed")

#: Scale-field defaults of the bench stream, merged under any user overrides.
#: The planner-sweep presets default to ``f = 1.0`` (full per-interval
#: redistribution), where every strategy's plan is one interval stale and the
#: imbalance hops between tasks faster than queues drain — wall-clock
#: differences wash out.  The bench instead defaults to the *sustained-skew,
#: slow-drift* regime of the paper's real datasets ("the word frequency in
#: Social data usually changes slowly"), where rebalancing visibly pays;
#: ``--set skew=…`` / ``--set fluctuation=…`` restore any other regime.
BENCH_DEFAULT_OVERRIDES: Mapping[str, Any] = {"skew": 1.1, "fluctuation": 0.2}


@dataclass(frozen=True)
class RuntimeSpec:
    """Declarative description of one process-runtime benchmark.

    Attributes
    ----------
    workload:
        One of :data:`BENCH_WORKLOADS` (``wordcount``, ``windowed_aggregate``,
        ``tpch_q5``).
    strategies:
        Strategy labels from the registry, each run on the same stream.
    parallelism:
        Worker processes (= operator task instances).
    scale:
        Scale preset name or explicit :class:`ExperimentScale`; sets the key
        domain, tuples per interval, interval count and strategy tunables.
    overrides:
        :class:`ExperimentScale` field overrides (e.g. ``{"skew": 1.2}``);
        merged over :data:`BENCH_DEFAULT_OVERRIDES` (the bench's
        sustained-skew, slow-drift stream regime).
    seed:
        Master RNG seed (stream generation and hash seeds).
    service_time_us:
        Emulated per-cost-unit service time of each worker (pacing).
    batch_size / queue_capacity / shed_timeout_seconds:
        Queueing knobs, see :class:`~repro.runtime.local.RuntimeConfig`.
    """

    workload: str = "wordcount"
    strategies: Sequence[str] = DEFAULT_STRATEGIES
    parallelism: int = 4
    scale: Union[str, ExperimentScale] = "tiny"
    overrides: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    service_time_us: float = 50.0
    batch_size: int = 256
    queue_capacity: int = 8
    shed_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workload not in BENCH_WORKLOADS:
            raise KeyError(
                f"unknown bench workload {self.workload!r}; "
                f"known: {sorted(BENCH_WORKLOADS)}"
            )
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        object.__setattr__(self, "strategies", list(self.strategies))
        # Fail fast on typos: a bad strategy or scale must not surface as a
        # crash after earlier strategies already ran for minutes.
        for name in self.strategies:
            if not has_strategy(name):
                raise KeyError(
                    f"unknown strategy {name!r}; known: {strategy_names()}"
                )
        self.resolve_scale()  # raises on an unknown preset or override field
        object.__setattr__(
            self,
            "overrides",
            {**BENCH_DEFAULT_OVERRIDES, **dict(self.overrides)},
        )

    def resolve_scale(self) -> ExperimentScale:
        scale = get_scale(self.scale)
        return scale.scaled(**dict(self.overrides)) if self.overrides else scale

    def scale_label(self) -> str:
        return self.scale if isinstance(self.scale, str) else self.scale.name

    def runtime_config(self, **kwargs: Any) -> RuntimeConfig:
        return RuntimeConfig(
            parallelism=self.parallelism,
            batch_size=self.batch_size,
            queue_capacity=self.queue_capacity,
            service_time_us=self.service_time_us,
            shed_timeout_seconds=self.shed_timeout_seconds,
            **kwargs,
        )

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        scale: Any = self.scale
        if isinstance(scale, ExperimentScale):
            scale = dataclasses.asdict(scale)
        payload = {
            "workload": self.workload,
            "strategies": list(self.strategies),
            "parallelism": self.parallelism,
            "scale": scale,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "service_time_us": self.service_time_us,
            "batch_size": self.batch_size,
            "queue_capacity": self.queue_capacity,
            "shed_timeout_seconds": self.shed_timeout_seconds,
        }
        return json.loads(json.dumps(payload))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RuntimeSpec":
        scale = payload.get("scale", "tiny")
        if isinstance(scale, Mapping):
            scale = ExperimentScale(**scale)
        return cls(
            workload=payload.get("workload", "wordcount"),
            strategies=list(payload.get("strategies", DEFAULT_STRATEGIES)),
            parallelism=int(payload.get("parallelism", 4)),
            scale=scale,
            overrides=dict(payload.get("overrides", {})),
            seed=int(payload.get("seed", 0)),
            service_time_us=float(payload.get("service_time_us", 50.0)),
            batch_size=int(payload.get("batch_size", 256)),
            queue_capacity=int(payload.get("queue_capacity", 8)),
            shed_timeout_seconds=payload.get("shed_timeout_seconds"),
        )


# -- workload adapters -------------------------------------------------------------


def _expand_snapshots(
    snapshots: Sequence[Mapping[Key, float]],
    rng: np.random.Generator,
    value: Any = None,
) -> List[List[Tuple[Key, Any]]]:
    """Expand ``{key: count}`` snapshots into shuffled per-interval tuple lists."""
    stream: List[List[Tuple[Key, Any]]] = []
    for snapshot in snapshots:
        keys = np.array(list(snapshot.keys()), dtype=object)
        counts = np.array([int(round(count)) for count in snapshot.values()])
        expanded = np.repeat(keys, counts)
        rng.shuffle(expanded)
        stream.append([(key, value) for key in expanded.tolist()])
    return stream


def _wordcount_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=parallelism,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng)
    return WordCountOperator(window=scale.window, emit_updates=False), stream


def _windowed_aggregate_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=parallelism,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng, value=1.0)
    return WindowedAggregate(window=scale.window), stream


def _tpch_q5_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    """The Q5 stage-1 stream: lineitems keyed by (Zipf-skewed) order key.

    The operator under study is the windowed per-order-key state of the first
    join stage — the stage whose imbalance the Fig. 16 experiment measures;
    the downstream joins are out of scope for the single-stage runtime bench.
    """
    dataset = generate_tpch(
        scale=max(0.001, scale.num_keys / 1_500_000), seed=seed
    )
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        change_every=max(2, scale.sim_intervals // 3),
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng, value=1.0)
    return WindowedAggregate(window=scale.window), stream


#: ``workload name -> builder(scale, parallelism, seed) -> (logic, stream)``.
BENCH_WORKLOADS: Dict[
    str,
    Callable[
        [ExperimentScale, int, int],
        Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]],
    ],
] = {
    "wordcount": _wordcount_stream,
    "windowed_aggregate": _windowed_aggregate_stream,
    "tpch_q5": _tpch_q5_stream,
}


# -- the bench runner --------------------------------------------------------------


def _build_strategy(name: str, spec: RuntimeSpec, scale: ExperimentScale):
    return get_strategy(name).build(
        spec.parallelism,
        theta_max=scale.theta_max,
        max_table_size=scale.max_table_size,
        beta=scale.beta,
        window=scale.window,
        seed=spec.seed,
    )


def _result_row(name: str, outcome: RuntimeResult) -> Dict[str, Any]:
    row: Dict[str, Any] = {"strategy": name}
    row.update(outcome.summary())
    row["mean_skewness"] = outcome.metrics.mean_skewness
    return row


def run_bench(
    spec: RuntimeSpec,
    *,
    store: Optional[Any] = None,
    output_path: Optional[Union[str, Path]] = DEFAULT_BENCH_REPORT,
    on_result: Optional[Callable[[str, RuntimeResult], None]] = None,
) -> Tuple[ExperimentRun, Dict[str, RuntimeResult]]:
    """Run every strategy of ``spec`` on the same stream; measure wall clock.

    Returns the persisted-shape :class:`ExperimentRun` (metadata tagged
    ``engine="process"``) and the raw per-strategy
    :class:`~repro.runtime.local.RuntimeResult` objects.  When ``store`` is
    given the run is saved with the per-strategy
    :class:`~repro.engine.metrics.MetricsCollector` and latency histogram as
    artifacts; when ``output_path`` is given the standalone JSON report is
    written there (``None`` disables it).
    """
    scale = spec.resolve_scale()
    logic, stream = BENCH_WORKLOADS[spec.workload](scale, spec.parallelism, spec.seed)

    started = time.perf_counter()
    outcomes: Dict[str, RuntimeResult] = {}
    for name in spec.strategies:
        partitioner = _build_strategy(name, spec, scale)
        runtime = LocalRuntime(
            logic, partitioner, spec.runtime_config(), label=name
        )
        outcome = runtime.run(stream)
        outcomes[name] = outcome
        if on_result is not None:
            on_result(name, outcome)
    wall_time = time.perf_counter() - started

    result = ExperimentResult(
        figure="bench",
        title=(
            f"process-runtime wall-clock benchmark — {spec.workload} "
            f"@ parallelism {spec.parallelism}"
        ),
        parameters={
            "workload": spec.workload,
            "parallelism": spec.parallelism,
            "scale": spec.scale_label(),
            "service_time_us": spec.service_time_us,
            "intervals": scale.sim_intervals,
            "tuples_per_interval": scale.tuples_per_interval,
            "num_keys": scale.num_keys,
            "skew": scale.skew,
        },
        notes=(
            "measured on live worker processes (bounded queues, paced service); "
            "latency percentiles from merged per-worker histograms"
        ),
    )
    for name in spec.strategies:
        result.add_row(**_result_row(name, outcomes[name]))

    from repro import __version__

    stamp = datetime.now(timezone.utc)
    metadata = RunMetadata(
        run_id=f"bench-{spec.workload}-{stamp.strftime('%Y%m%d-%H%M%S-%f')}-s{spec.seed}",
        experiment=f"bench_{spec.workload}",
        figure="bench",
        scale=spec.scale_label(),
        seed=spec.seed,
        wall_time_seconds=wall_time,
        created_at=stamp.isoformat(timespec="microseconds"),
        git_rev=git_revision(),
        repro_version=__version__,
        engine="process",
        host_cpu_count=os.cpu_count(),
    )
    # Reuse the ExperimentSpec envelope so the run persists/reloads through
    # the ordinary ResultsStore; the RuntimeSpec rides in params.
    envelope = ExperimentSpec(
        experiment=f"bench_{spec.workload}",
        scale=spec.scale_label() if isinstance(spec.scale, str) else spec.scale,
        seed=spec.seed,
        params={"runtime_spec": spec.to_dict()},
    )
    run = ExperimentRun(spec=envelope, result=result, metadata=metadata)

    if store is not None:
        artifacts: Dict[str, Any] = {}
        for name, outcome in outcomes.items():
            artifacts[f"{name}.metrics"] = outcome.metrics
            artifacts[f"{name}.latency"] = outcome.latency
            artifacts[f"{name}.migrations"] = [
                report.to_dict() for report in outcome.migrations
            ]
        store.save(run, artifacts=artifacts)

    if output_path is not None:
        write_bench_report(run, outcomes, output_path)
    return run, outcomes


def write_bench_report(
    run: ExperimentRun,
    outcomes: Mapping[str, RuntimeResult],
    path: Union[str, Path] = DEFAULT_BENCH_REPORT,
) -> Path:
    """Write the standalone ``BENCH_runtime.json`` benchmark report."""
    payload = {
        "metadata": run.metadata.to_dict(),
        "spec": run.spec.params.get("runtime_spec", {}),
        "rows": [dict(row) for row in run.result.rows],
        "per_strategy": {
            name: {
                "summary": outcome.summary(),
                "shed_by_task": {
                    str(task): shed for task, shed in outcome.shed_by_task.items()
                },
                "migrations": [report.to_dict() for report in outcome.migrations],
            }
            for name, outcome in outcomes.items()
        },
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=1))
    return target
