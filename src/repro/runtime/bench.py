"""Wall-clock benchmarking of partitioning strategies on the process runtime.

A :class:`RuntimeSpec` is the runtime twin of
:class:`~repro.experiments.specs.ExperimentSpec`: it picks a workload, a
strategy list, a parallelism and a scale preset, and :func:`run_bench`
executes each strategy on the *same* materialised tuple stream.  The outcome
is an :class:`~repro.experiments.specs.ExperimentRun` whose rows carry
**measured** tuples/sec and p50/p99 latency per strategy (``engine:
"process"`` in the metadata), persisted through the ordinary
:class:`~repro.experiments.store.ResultsStore` plus a standalone
``BENCH_runtime.json`` report for the benchmark trajectory.

Two workload families:

* **Single-stage** (:data:`BENCH_WORKLOADS`: ``wordcount`` /
  ``windowed_aggregate`` / ``tpch_q5``) run one operator behind one router
  through a :class:`~repro.runtime.local.LocalRuntime` — the repo's
  snapshot generators expanded into shuffled per-interval tuple lists.
* **Multi-stage topologies** (:data:`BENCH_TOPOLOGY_WORKLOADS`:
  ``tpch_q5_chain`` / ``tpch_q5_trace`` / ``diamond``) run through a
  :class:`~repro.runtime.topology.TopologyRuntime` process pipeline with
  bounded inter-stage queues, per-stage rebalancing controllers and one
  open-loop source.  The Q5 workloads run the full continuous chain —
  order-join → customer-join → revenue-agg — reproducing the paper's
  Fig. 16 chained-starvation experiment on measured wall clock
  (``tpch_q5_chain`` streams synthetic Zipf-skewed arrivals;
  ``tpch_q5_trace`` replays the generated lineitem table).  ``diamond``
  runs the split-key fan-out/fan-in DAG of the PKG execution mode —
  source → split-agg ×2 → merge — where the merge stage closes its
  intervals on marks from *both* branches and recombines each key's
  tagged partial aggregates; its default strategy set adds ``pkg`` so the
  report shows key splitting (PKG) against key-contiguous hashing (storm)
  and the paper's mixed routing side by side.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.baselines.base import Partitioner
from repro.core.strategy import get_strategy, has_strategy, strategy_names
from repro.engine.operator import OperatorLogic
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.experiments.specs import ExperimentRun, ExperimentSpec, RunMetadata, git_revision
from repro.operators.tpch_q5 import DimensionJoin, q5_revenue_reducer
from repro.operators.windowed_aggregate import (
    MergeOperator,
    PartialWindowedAggregate,
    WindowedAggregate,
)
from repro.operators.wordcount import WordCountOperator
from repro.runtime.local import LocalRuntime, RuntimeConfig, RuntimeResult
from repro.runtime.resilience.scaling import parse_scale_spec
from repro.runtime.resilience.supervisor import parse_kill_spec
from repro.runtime.topology import (
    StageSpec,
    TopologyResult,
    TopologyRuntime,
    TopologySpec,
)
from repro.workloads.tpch import (
    ForeignKeyLookup,
    TPCHDataset,
    draw_lineitem_revenue,
    TPCHLineitemTrace,
    TPCHStreamWorkload,
    generate_tpch,
)
from repro.workloads.zipf import ZipfWorkload

__all__ = [
    "BENCH_WORKLOADS",
    "BENCH_TOPOLOGY_WORKLOADS",
    "TopologyBenchWorkload",
    "RuntimeSpec",
    "merged_sanitizer_report",
    "run_bench",
    "write_bench_report",
]

Key = Hashable

#: Default output file of the standalone benchmark report.
DEFAULT_BENCH_REPORT = "BENCH_runtime.json"

#: Strategies compared when the spec does not name any.
DEFAULT_STRATEGIES = ("storm", "mixed")

#: Scale-field defaults of the bench stream, merged under any user overrides.
#: The planner-sweep presets default to ``f = 1.0`` (full per-interval
#: redistribution), where every strategy's plan is one interval stale and the
#: imbalance hops between tasks faster than queues drain — wall-clock
#: differences wash out.  The bench instead defaults to the *sustained-skew,
#: slow-drift* regime of the paper's real datasets ("the word frequency in
#: Social data usually changes slowly"), where rebalancing visibly pays;
#: ``--set skew=…`` / ``--set fluctuation=…`` restore any other regime.
BENCH_DEFAULT_OVERRIDES: Mapping[str, Any] = {"skew": 1.2, "fluctuation": 0.2}


@dataclass(frozen=True)
class RuntimeSpec:
    """Declarative description of one process-runtime benchmark.

    Attributes
    ----------
    workload:
        One of :data:`BENCH_WORKLOADS` (``wordcount``, ``windowed_aggregate``,
        ``tpch_q5``) or :data:`BENCH_TOPOLOGY_WORKLOADS` (``tpch_q5_chain``,
        ``tpch_q5_trace``).
    strategies:
        Strategy labels from the registry, each run on the same stream.  In
        a topology workload the strategy under test routes the join stages
        (the operators under study); the small revenue aggregation keeps
        plain hashing.
    parallelism:
        Worker processes per stage (= operator task instances).
    stage_parallelism:
        Per-stage overrides, ``{stage name: worker count}`` (topology
        workloads only).
    scale:
        Scale preset name or explicit :class:`ExperimentScale`; sets the key
        domain, tuples per interval, interval count and strategy tunables.
    overrides:
        :class:`ExperimentScale` field overrides (e.g. ``{"skew": 1.2}``);
        merged over :data:`BENCH_DEFAULT_OVERRIDES` (the bench's
        sustained-skew, slow-drift stream regime).
    seed:
        Master RNG seed (stream generation and hash seeds).
    service_time_us:
        Emulated per-cost-unit service time of each worker (pacing).
    calibrate_pacing:
        Ignore ``service_time_us`` and calibrate the pacing per stage from
        the first measured interval, so the bench stays saturated across
        machines of different speed.
    offered_rate:
        Open-loop source rate in tuples/second (``None`` = closed-loop
        drain, the saturated-throughput setup).
    rate_sweep:
        Ascending list of open-loop offered rates (tuples/second).  When
        set, every strategy runs once **per rate** on the same stream and
        the report carries one row per ``(strategy, rate)`` — the measured
        latency/throughput knee of the paper's Fig. 13, swept toward
        saturation instead of sampled at a single ``offered_rate``.
    batch_size / queue_capacity / shed_timeout_seconds:
        Queueing knobs, see :class:`~repro.runtime.topology.RuntimeConfig`.
    sanitize:
        Run every strategy under the runtime protocol sanitizer
        (:mod:`repro.analysis.sanitizer`); the merged violation report is
        embedded in the bench JSON under ``"sanitizer"``.
    kill_worker:
        Fault-injection spec ``STAGE:TASK@INTERVAL`` (topology workloads
        only): SIGKILL that worker the first time its stage handles the
        interval.  Requires checkpointing; a run-scoped temporary
        checkpoint root is created (and removed) when ``checkpoint_dir``
        is unset.
    scale_at:
        Elasticity spec ``INTERVAL:STAGE:±N`` (topology workloads only):
        grow/shrink the stage's process group at that interval boundary
        via live key migration.
    checkpoint_dir:
        Checkpoint root; enables periodic per-task KeyedState checkpoints
        and supervised worker recovery.  Each strategy run writes under
        its own subdirectory so runs never restore each other's state.
    checkpoint_every:
        Checkpoint at every N-th interval boundary (default 1).
    """

    workload: str = "wordcount"
    strategies: Sequence[str] = DEFAULT_STRATEGIES
    parallelism: int = 4
    scale: Union[str, ExperimentScale] = "tiny"
    overrides: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    service_time_us: float = 50.0
    batch_size: int = 256
    queue_capacity: int = 8
    shed_timeout_seconds: Optional[float] = None
    stage_parallelism: Mapping[str, int] = field(default_factory=dict)
    calibrate_pacing: bool = False
    offered_rate: Optional[float] = None
    rate_sweep: Optional[Sequence[float]] = None
    sanitize: bool = False
    kill_worker: Optional[str] = None
    scale_at: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if (
            self.workload not in BENCH_WORKLOADS
            and self.workload not in BENCH_TOPOLOGY_WORKLOADS
        ):
            raise KeyError(
                f"unknown bench workload {self.workload!r}; known: "
                f"{sorted(BENCH_WORKLOADS) + sorted(BENCH_TOPOLOGY_WORKLOADS)}"
            )
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.offered_rate is not None and self.offered_rate <= 0:
            raise ValueError("offered_rate must be positive (or None)")
        if self.rate_sweep is not None:
            rates = [float(rate) for rate in self.rate_sweep]
            if len(rates) < 2:
                # A one-point "sweep" has no knee; the CLI and the report
                # validator (scripts/validate_bench.py) require >= 2 too.
                raise ValueError("rate_sweep needs at least two rates")
            if any(rate <= 0 for rate in rates):
                raise ValueError("rate_sweep rates must be positive")
            if any(b <= a for a, b in zip(rates, rates[1:])):
                raise ValueError("rate_sweep rates must be strictly ascending")
            if self.offered_rate is not None:
                raise ValueError(
                    "offered_rate and rate_sweep are mutually exclusive"
                )
            object.__setattr__(self, "rate_sweep", rates)
        object.__setattr__(self, "strategies", list(self.strategies))
        # Fail fast on typos: a bad strategy or scale must not surface as a
        # crash after earlier strategies already ran for minutes.
        for name in self.strategies:
            if not has_strategy(name):
                raise KeyError(
                    f"unknown strategy {name!r}; known: {strategy_names()}"
                )
        object.__setattr__(
            self, "stage_parallelism", dict(self.stage_parallelism)
        )
        if self.stage_parallelism:
            topology = BENCH_TOPOLOGY_WORKLOADS.get(self.workload)
            if topology is None:
                raise ValueError(
                    f"stage_parallelism only applies to topology workloads, "
                    f"not {self.workload!r}"
                )
            for stage, count in self.stage_parallelism.items():
                if stage not in topology.stages:
                    raise KeyError(
                        f"unknown stage {stage!r} for {self.workload!r}; "
                        f"stages: {list(topology.stages)}"
                    )
                if not isinstance(count, int) or count <= 0:
                    raise ValueError(
                        f"stage parallelism for {stage!r} must be a positive "
                        f"integer, got {count!r}"
                    )
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.kill_worker is not None or self.scale_at is not None:
            topology = BENCH_TOPOLOGY_WORKLOADS.get(self.workload)
            if topology is None:
                raise ValueError(
                    f"kill_worker / scale_at only apply to topology "
                    f"workloads, not {self.workload!r}"
                )
            # Parse and normalise now so a typo fails before any strategy
            # runs, and the stored spec round-trips in canonical form.
            if self.kill_worker is not None:
                directive = parse_kill_spec(self.kill_worker)
                if directive.stage not in topology.stages:
                    raise KeyError(
                        f"unknown stage {directive.stage!r} in kill spec; "
                        f"stages: {list(topology.stages)}"
                    )
                object.__setattr__(self, "kill_worker", directive.spec())
            if self.scale_at is not None:
                directive = parse_scale_spec(self.scale_at)
                if directive.stage not in topology.stages:
                    raise KeyError(
                        f"unknown stage {directive.stage!r} in scale spec; "
                        f"stages: {list(topology.stages)}"
                    )
                object.__setattr__(self, "scale_at", directive.spec())
        self.resolve_scale()  # raises on an unknown preset or override field
        object.__setattr__(
            self,
            "overrides",
            {**BENCH_DEFAULT_OVERRIDES, **dict(self.overrides)},
        )

    def resolve_scale(self) -> ExperimentScale:
        scale = get_scale(self.scale)
        return scale.scaled(**dict(self.overrides)) if self.overrides else scale

    def scale_label(self) -> str:
        return self.scale if isinstance(self.scale, str) else self.scale.name

    def runtime_config(self, **overrides: Any) -> RuntimeConfig:
        params: Dict[str, Any] = dict(
            parallelism=self.parallelism,
            batch_size=self.batch_size,
            queue_capacity=self.queue_capacity,
            service_time_us=self.service_time_us,
            shed_timeout_seconds=self.shed_timeout_seconds,
            calibrate_pacing=self.calibrate_pacing,
            offered_rate=self.offered_rate,
            sanitize=self.sanitize,
            checkpoint_every=self.checkpoint_every,
        )
        if self.kill_worker is not None:
            directive = parse_kill_spec(self.kill_worker)
            params["kill_worker"] = (
                directive.stage,
                directive.task,
                directive.interval,
            )
        if self.scale_at is not None:
            scale = parse_scale_spec(self.scale_at)
            params["scale_at"] = (scale.interval, scale.stage, scale.delta)
        params.update(overrides)  # e.g. per-rate configs of a rate sweep
        return RuntimeConfig(**params)

    def is_topology(self) -> bool:
        return self.workload in BENCH_TOPOLOGY_WORKLOADS

    # -- (de)serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        scale: Any = self.scale
        if isinstance(scale, ExperimentScale):
            scale = dataclasses.asdict(scale)
        payload = {
            "workload": self.workload,
            "strategies": list(self.strategies),
            "parallelism": self.parallelism,
            "scale": scale,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "service_time_us": self.service_time_us,
            "batch_size": self.batch_size,
            "queue_capacity": self.queue_capacity,
            "shed_timeout_seconds": self.shed_timeout_seconds,
            "stage_parallelism": dict(self.stage_parallelism),
            "calibrate_pacing": self.calibrate_pacing,
            "offered_rate": self.offered_rate,
            "rate_sweep": list(self.rate_sweep) if self.rate_sweep else None,
            "sanitize": self.sanitize,
            "kill_worker": self.kill_worker,
            "scale_at": self.scale_at,
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_every": self.checkpoint_every,
        }
        return json.loads(json.dumps(payload))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RuntimeSpec":
        scale = payload.get("scale", "tiny")
        if isinstance(scale, Mapping):
            scale = ExperimentScale(**scale)
        return cls(
            workload=payload.get("workload", "wordcount"),
            strategies=list(payload.get("strategies", DEFAULT_STRATEGIES)),
            parallelism=int(payload.get("parallelism", 4)),
            scale=scale,
            overrides=dict(payload.get("overrides", {})),
            seed=int(payload.get("seed", 0)),
            service_time_us=float(payload.get("service_time_us", 50.0)),
            batch_size=int(payload.get("batch_size", 256)),
            queue_capacity=int(payload.get("queue_capacity", 8)),
            shed_timeout_seconds=payload.get("shed_timeout_seconds"),
            stage_parallelism={
                str(stage): int(count)
                for stage, count in dict(
                    payload.get("stage_parallelism", {})
                ).items()
            },
            calibrate_pacing=bool(payload.get("calibrate_pacing", False)),
            offered_rate=payload.get("offered_rate"),
            rate_sweep=payload.get("rate_sweep"),
            sanitize=bool(payload.get("sanitize", False)),
            kill_worker=payload.get("kill_worker"),
            scale_at=payload.get("scale_at"),
            checkpoint_dir=payload.get("checkpoint_dir"),
            checkpoint_every=int(payload.get("checkpoint_every", 1)),
        )


# -- workload adapters -------------------------------------------------------------


def _expand_snapshots(
    snapshots: Sequence[Mapping[Key, float]],
    rng: np.random.Generator,
    value: Any = None,
    value_fn: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
) -> List[List[Tuple[Key, Any]]]:
    """Expand ``{key: count}`` snapshots into shuffled per-interval tuple lists.

    ``value_fn(rng, count)`` samples one value per tuple (e.g. lineitem
    revenue); without it every tuple carries the constant ``value``.
    """
    stream: List[List[Tuple[Key, Any]]] = []
    for snapshot in snapshots:
        keys = np.array(list(snapshot.keys()), dtype=object)
        counts = np.array([int(round(count)) for count in snapshot.values()])
        expanded = np.repeat(keys, counts)
        rng.shuffle(expanded)
        if value_fn is not None:
            values = value_fn(rng, expanded.size)
            stream.append(
                [
                    (key, float(sample))
                    for key, sample in zip(expanded.tolist(), values)
                ]
            )
        else:
            stream.append([(key, value) for key in expanded.tolist()])
    return stream


def _wordcount_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=parallelism,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng)
    return WordCountOperator(window=scale.window, emit_updates=False), stream


def _windowed_aggregate_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=parallelism,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng, value=1.0)
    return WindowedAggregate(window=scale.window), stream


def _tpch_q5_stream(
    scale: ExperimentScale, parallelism: int, seed: int
) -> Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]]:
    """The Q5 stage-1 stream: lineitems keyed by (Zipf-skewed) order key.

    The operator under study is the windowed per-order-key state of the first
    join stage — the stage whose imbalance the Fig. 16 experiment measures;
    the downstream joins are out of scope for the single-stage runtime bench.
    """
    dataset = _q5_dataset(scale, seed)
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        change_every=max(2, scale.sim_intervals // 3),
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    stream = _expand_snapshots(workload.take(scale.sim_intervals), rng, value=1.0)
    return WindowedAggregate(window=scale.window), stream


#: ``workload name -> builder(scale, parallelism, seed) -> (logic, stream)``.
BENCH_WORKLOADS: Dict[
    str,
    Callable[
        [ExperimentScale, int, int],
        Tuple[OperatorLogic, List[List[Tuple[Key, Any]]]],
    ],
] = {
    "wordcount": _wordcount_stream,
    "windowed_aggregate": _windowed_aggregate_stream,
    "tpch_q5": _tpch_q5_stream,
}


# -- multi-stage topology workloads ------------------------------------------------

#: Builds a registry strategy for one stage: ``(strategy name, parallelism)``.
StrategyBuilder = Callable[[str, int], Partitioner]

#: The three stages of the continuous Q5 chain, in pipeline order.
Q5_CHAIN_STAGES: Tuple[str, ...] = ("order-join", "customer-join", "revenue-agg")

#: The revenue aggregation re-keys to the 25-nation domain; plain hashing is
#: the natural choice there (the paper studies the skewed join stages).
Q5_AGG_STRATEGY = "storm"


@dataclass(frozen=True)
class TopologyBenchWorkload:
    """A multi-stage bench workload: a stream plus a topology factory.

    ``build_stream(scale, seed)`` materialises the per-interval tuple lists
    once (shared across all strategies of a bench run);
    ``build_topology(scale, spec, strategy, build)`` assembles the
    :class:`~repro.runtime.topology.TopologySpec` with ``strategy`` routing
    the stages under study (``build`` constructs a registry strategy for a
    given stage parallelism).  ``default_strategies`` overrides the global
    :data:`DEFAULT_STRATEGIES` when the user names none — the diamond
    defaults to comparing ``pkg`` as well, since key splitting is the very
    thing its topology exercises.
    """

    stages: Tuple[str, ...]
    build_stream: Callable[[ExperimentScale, int], List[List[Tuple[Key, Any]]]]
    build_topology: Callable[
        [ExperimentScale, "RuntimeSpec", str, StrategyBuilder], TopologySpec
    ]
    default_strategies: Optional[Tuple[str, ...]] = None


@functools.lru_cache(maxsize=4)
def _q5_dataset_cached(tpch_scale: float, seed: int) -> TPCHDataset:
    return generate_tpch(scale=tpch_scale, seed=seed)


def _q5_dataset(scale: ExperimentScale, seed: int) -> TPCHDataset:
    # Cached: one bench run needs the identical dataset for the stream and
    # for every strategy's topology (paper scale regenerates ~6M lineitems).
    return _q5_dataset_cached(max(0.001, scale.num_keys / 1_500_000), seed)


def _q5_chain_stream(
    scale: ExperimentScale, seed: int
) -> List[List[Tuple[Key, Any]]]:
    """Synthetic Q5 arrivals: Zipf-skewed order keys carrying revenue values.

    The stream regime mirrors Fig. 16: sustained foreign-key skew with a
    periodic partial rotation of the hot order set (the "triggered
    distribution change"), gentle enough that rebalancing pays.
    """
    dataset = _q5_dataset(scale, seed)
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=scale.tuples_per_interval,
        skew=scale.skew,
        change_every=max(4, scale.sim_intervals // 2),
        change_fraction=0.25,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    return _expand_snapshots(
        workload.take(scale.sim_intervals), rng, value_fn=draw_lineitem_revenue
    )


def _q5_trace_stream(
    scale: ExperimentScale, seed: int
) -> List[List[Tuple[Key, Any]]]:
    """Replayed-trace variant: the generated lineitem rows in arrival order."""
    dataset = _q5_dataset(scale, seed)
    trace = TPCHLineitemTrace(
        dataset,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
    )
    return trace.take()


def _q5_chain_topology(
    scale: ExperimentScale,
    spec: "RuntimeSpec",
    strategy: str,
    build: StrategyBuilder,
) -> TopologySpec:
    """Assemble order-join → customer-join → revenue-agg for the runtime.

    The two join stages get the strategy under test (they carry the
    foreign-key skew); the revenue aggregation keeps plain hashing over its
    25-nation key domain.  Output re-keying between stages uses the
    dataset's foreign-key mappings, as the fluid
    :func:`~repro.operators.tpch_q5.build_q5_topology` does.
    """
    dataset = _q5_dataset(scale, spec.seed)
    # Slim, picklable lookups: workers need the foreign-key dicts, not the
    # whole dataset (bound methods would drag the lineitem table along).
    customer_of_order = ForeignKeyLookup(
        dataset.order_customer, dataset.num_customers
    )
    nation_of_customer = ForeignKeyLookup(dataset.customer_nation, 25)
    overrides = spec.stage_parallelism
    order_p = overrides.get("order-join", spec.parallelism)
    customer_p = overrides.get("customer-join", spec.parallelism)
    agg_p = overrides.get("revenue-agg", max(1, min(spec.parallelism, 5)))
    # Per-tuple costs make the customer-join the service bottleneck: the
    # order→customer re-keying compounds the foreign-key Zipf skew (many hot
    # orders map to few hot customers), so that stage carries the strongest
    # sustained imbalance — the chain's wall clock is then driven by the
    # stage whose imbalance the experiment studies, its starvation
    # propagating both upstream (backpressure) and downstream (staleness).
    stages = [
        StageSpec(
            name="order-join",
            logic=DimensionJoin(
                lookup=customer_of_order,
                window=scale.window,
                cost_per_tuple=0.75,
            ),
            partitioner=build(strategy, order_p),
            key_mapper=customer_of_order,
        ),
        StageSpec(
            name="customer-join",
            logic=DimensionJoin(
                lookup=nation_of_customer,
                window=scale.window,
                cost_per_tuple=1.5,
            ),
            partitioner=build(strategy, customer_p),
            key_mapper=nation_of_customer,
        ),
        StageSpec(
            name="revenue-agg",
            logic=WindowedAggregate(
                reducer=q5_revenue_reducer,
                window=scale.window,
                cost_per_tuple=0.25,
                state_per_tuple=0.1,
            ),
            partitioner=build(Q5_AGG_STRATEGY, agg_p),
        ),
    ]
    return TopologySpec("tpch-q5-chain", stages)


#: The diamond's stages: two split-aggregate branches fanning out from the
#: source, fanning back into one merge stage.
DIAMOND_STAGES: Tuple[str, ...] = ("split-agg-a", "split-agg-b", "merge")

#: Every partial of a key must meet at one merger task, so the merge stage
#: always routes by plain hashing regardless of the strategy under test.
DIAMOND_MERGE_STRATEGY = "storm"


def _diamond_stream(
    scale: ExperimentScale, seed: int
) -> List[List[Tuple[Key, Any]]]:
    """Zipf-skewed unit-value arrivals: a hot-key stream worth splitting."""
    workload = ZipfWorkload(
        num_keys=scale.num_keys,
        skew=scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=scale.fluctuation,
        num_tasks=1,
        intervals=scale.sim_intervals,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    return _expand_snapshots(workload.take(scale.sim_intervals), rng, value=1.0)


def _diamond_topology(
    scale: ExperimentScale,
    spec: "RuntimeSpec",
    strategy: str,
    build: StrategyBuilder,
) -> TopologySpec:
    """Assemble source → split-agg ×2 → merge for the runtime.

    Both branch stages pin ``upstream=()`` to the source, which round-robins
    its chunks across them; each runs a :class:`PartialWindowedAggregate`
    under the strategy under test, tagging its partials with the branch name
    so the two branches' task ids cannot collide at the merger.  The merge
    stage fans in from both branches (interval k closes only once every
    producer of *both* marked it), re-keyed implicitly — partials keep their
    original key — and hashed key-contiguously so all of a key's partials
    meet at one task.
    """
    overrides = spec.stage_parallelism
    branch_a_p = overrides.get("split-agg-a", spec.parallelism)
    branch_b_p = overrides.get("split-agg-b", spec.parallelism)
    merge_p = overrides.get("merge", max(1, min(spec.parallelism, 4)))
    stages = [
        StageSpec(
            name="split-agg-a",
            logic=PartialWindowedAggregate(
                window=scale.window, source_tag="a"
            ),
            partitioner=build(strategy, branch_a_p),
            upstream=(),
        ),
        StageSpec(
            name="split-agg-b",
            logic=PartialWindowedAggregate(
                window=scale.window, source_tag="b"
            ),
            partitioner=build(strategy, branch_b_p),
            upstream=(),
        ),
        StageSpec(
            name="merge",
            logic=MergeOperator(window=scale.window, cost_per_partial=0.5),
            partitioner=build(DIAMOND_MERGE_STRATEGY, merge_p),
            upstream=("split-agg-a", "split-agg-b"),
        ),
    ]
    return TopologySpec("diamond", stages)


#: Multi-stage bench workloads, run through :class:`TopologyRuntime`.
BENCH_TOPOLOGY_WORKLOADS: Dict[str, TopologyBenchWorkload] = {
    "tpch_q5_chain": TopologyBenchWorkload(
        stages=Q5_CHAIN_STAGES,
        build_stream=_q5_chain_stream,
        build_topology=_q5_chain_topology,
    ),
    "tpch_q5_trace": TopologyBenchWorkload(
        stages=Q5_CHAIN_STAGES,
        build_stream=_q5_trace_stream,
        build_topology=_q5_chain_topology,
    ),
    "diamond": TopologyBenchWorkload(
        stages=DIAMOND_STAGES,
        build_stream=_diamond_stream,
        build_topology=_diamond_topology,
        default_strategies=("pkg", "storm", "mixed"),
    ),
}


# -- the bench runner --------------------------------------------------------------


def _build_strategy(
    name: str,
    spec: RuntimeSpec,
    scale: ExperimentScale,
    parallelism: Optional[int] = None,
):
    return get_strategy(name).build(
        spec.parallelism if parallelism is None else parallelism,
        theta_max=scale.theta_max,
        max_table_size=scale.max_table_size,
        beta=scale.beta,
        window=scale.window,
        seed=spec.seed,
    )


def _result_row(name: str, outcome: RuntimeResult) -> Dict[str, Any]:
    row: Dict[str, Any] = {"strategy": name}
    row.update(outcome.summary())
    row["mean_skewness"] = outcome.metrics.mean_skewness
    return row


def _rate_sweep_rows(
    name: str, swept: Mapping[float, Any]
) -> List[Dict[str, Any]]:
    """One row per offered rate (ascending): the measured saturation knee."""
    rows: List[Dict[str, Any]] = []
    for rate in sorted(swept):
        outcome = swept[rate]
        row: Dict[str, Any] = {"strategy": name, "offered_rate": rate}
        if isinstance(outcome, TopologyResult):
            row["stage"] = "chain"
        row.update(outcome.summary())
        rows.append(row)
    return rows


def _topology_rows(name: str, outcome: TopologyResult) -> List[Dict[str, Any]]:
    """One ``chain`` row (end-to-end) plus one row per stage."""
    chain: Dict[str, Any] = {"strategy": name, "stage": "chain"}
    chain.update(outcome.summary())
    chain["mean_skewness"] = max(
        (stage.metrics.mean_skewness for stage in outcome.stages.values()),
        default=0.0,
    )
    rows = [chain]
    for stage_name, stage in outcome.stages.items():
        row: Dict[str, Any] = {"strategy": name, "stage": stage_name}
        row.update(stage.summary())
        row["mean_skewness"] = stage.metrics.mean_skewness
        # DAG shape: ≥ 2 marks a fan-in consumer (validators require its
        # sanitized runs to have exercised the fan-in checks).
        row["upstreams"] = stage.upstreams
        if stage.split_stats is not None:
            row["split_keys"] = stage.split_stats["split_keys"]
            row["total_partials"] = stage.split_stats["total_partials"]
            row["max_partials_per_key"] = stage.split_stats[
                "max_partials_per_key"
            ]
        rows.append(row)
    return rows


def run_bench(
    spec: RuntimeSpec,
    *,
    store: Optional[Any] = None,
    output_path: Optional[Union[str, Path]] = DEFAULT_BENCH_REPORT,
    on_result: Optional[Callable[[str, Any], None]] = None,
) -> Tuple[ExperimentRun, Dict[str, Any]]:
    """Run every strategy of ``spec`` on the same stream; measure wall clock.

    Returns the persisted-shape :class:`ExperimentRun` (metadata tagged
    ``engine="process"``) and the raw per-strategy outcomes —
    :class:`~repro.runtime.local.RuntimeResult` for single-stage workloads,
    :class:`~repro.runtime.topology.TopologyResult` for topology workloads
    (whose rows carry one ``chain`` record plus one record per stage).
    When ``store`` is given the run is saved with the per-strategy
    :class:`~repro.engine.metrics.MetricsCollector` and latency histogram as
    artifacts; when ``output_path`` is given the standalone JSON report is
    written there (``None`` disables it).
    """
    scale = spec.resolve_scale()
    topology = BENCH_TOPOLOGY_WORKLOADS.get(spec.workload)

    # Resilience: every strategy run (and every rate of a sweep) checkpoints
    # under its own subdirectory, so no run can restore a sibling's state.
    # A kill without an explicit checkpoint root gets a temporary run-scoped
    # one, removed afterwards — the report carries the measured numbers.
    checkpoint_root = spec.checkpoint_dir
    temp_checkpoint_root: Optional[str] = None
    if checkpoint_root is None and spec.kill_worker is not None:
        temp_checkpoint_root = tempfile.mkdtemp(prefix="repro-checkpoints-")
        checkpoint_root = temp_checkpoint_root

    def strategy_config(name: str, tag: str = "", **overrides: Any) -> RuntimeConfig:
        if checkpoint_root is not None:
            subdir = f"{name}-{tag}" if tag else name
            overrides.setdefault(
                "checkpoint_dir", os.path.join(checkpoint_root, subdir)
            )
        return spec.runtime_config(**overrides)

    if topology is not None:
        stream = topology.build_stream(scale, spec.seed)
        logic = None
    else:
        logic, stream = BENCH_WORKLOADS[spec.workload](
            scale, spec.parallelism, spec.seed
        )

    def run_strategy(name: str, config: RuntimeConfig) -> Any:
        """One fresh run: strategies are stateful, so rebuild every time."""
        if topology is not None:
            def build(strategy_name: str, parallelism: int) -> Partitioner:
                return _build_strategy(
                    strategy_name, spec, scale, parallelism=parallelism
                )

            topo_spec = topology.build_topology(scale, spec, name, build)
            return TopologyRuntime(topo_spec, config, label=name).run(stream)
        partitioner = _build_strategy(name, spec, scale)
        return LocalRuntime(logic, partitioner, config, label=name).run(stream)

    started = time.perf_counter()
    outcomes: Dict[str, Any] = {}
    try:
        for name in spec.strategies:
            if spec.rate_sweep:
                # Open-loop sweep toward saturation: one run per offered rate
                # on the same stream — the measured Fig. 13 knee.
                swept: Dict[float, Any] = {}
                for rate in spec.rate_sweep:
                    swept[rate] = run_strategy(
                        name,
                        strategy_config(name, f"{rate:g}", offered_rate=rate),
                    )
                    if on_result is not None:
                        on_result(f"{name}@{rate:g}/s", swept[rate])
                outcomes[name] = swept
            else:
                outcome = run_strategy(name, strategy_config(name))
                outcomes[name] = outcome
                if on_result is not None:
                    on_result(name, outcome)
    finally:
        if temp_checkpoint_root is not None:
            shutil.rmtree(temp_checkpoint_root, ignore_errors=True)
    wall_time = time.perf_counter() - started

    result = ExperimentResult(
        figure="bench",
        title=(
            f"process-runtime wall-clock benchmark — {spec.workload} "
            f"@ parallelism {spec.parallelism}"
        ),
        parameters={
            "workload": spec.workload,
            "parallelism": spec.parallelism,
            "scale": spec.scale_label(),
            "service_time_us": (
                "auto" if spec.calibrate_pacing else spec.service_time_us
            ),
            "intervals": scale.sim_intervals,
            "tuples_per_interval": scale.tuples_per_interval,
            "num_keys": scale.num_keys,
            "skew": scale.skew,
            **(
                {
                    "stages": ",".join(topology.stages),
                    "offered_rate": spec.offered_rate or "closed-loop",
                }
                if topology is not None
                else {}
            ),
            **(
                {"rate_sweep": list(spec.rate_sweep)} if spec.rate_sweep else {}
            ),
            **({"kill_worker": spec.kill_worker} if spec.kill_worker else {}),
            **({"scale_at": spec.scale_at} if spec.scale_at else {}),
        },
        notes=(
            "measured on live worker processes (bounded queues, paced service); "
            "latency percentiles from merged per-worker histograms"
            + (
                "; chain rows report end-to-end (source-offer to final-stage) latency"
                if topology is not None
                else ""
            )
        ),
    )
    for name in spec.strategies:
        if spec.rate_sweep:
            for row in _rate_sweep_rows(name, outcomes[name]):
                result.add_row(**row)
        elif topology is not None:
            for row in _topology_rows(name, outcomes[name]):
                result.add_row(**row)
        else:
            result.add_row(**_result_row(name, outcomes[name]))

    from repro import __version__

    stamp = datetime.now(timezone.utc)
    metadata = RunMetadata(
        run_id=f"bench-{spec.workload}-{stamp.strftime('%Y%m%d-%H%M%S-%f')}-s{spec.seed}",
        experiment=f"bench_{spec.workload}",
        figure="bench",
        scale=spec.scale_label(),
        seed=spec.seed,
        wall_time_seconds=wall_time,
        created_at=stamp.isoformat(timespec="microseconds"),
        git_rev=git_revision(),
        repro_version=__version__,
        engine="process",
        host_cpu_count=os.cpu_count(),
    )
    # Reuse the ExperimentSpec envelope so the run persists/reloads through
    # the ordinary ResultsStore; the RuntimeSpec rides in params.
    envelope = ExperimentSpec(
        experiment=f"bench_{spec.workload}",
        scale=spec.scale_label() if isinstance(spec.scale, str) else spec.scale,
        seed=spec.seed,
        params={"runtime_spec": spec.to_dict()},
    )
    run = ExperimentRun(spec=envelope, result=result, metadata=metadata)

    if store is not None:
        artifacts: Dict[str, Any] = {}
        for name, outcome in outcomes.items():
            if isinstance(outcome, dict):  # rate sweep: {rate: outcome}
                artifacts[f"{name}.rate_sweep"] = [
                    {"offered_rate": rate, **outcome[rate].summary()}
                    for rate in sorted(outcome)
                ]
            elif isinstance(outcome, TopologyResult):
                for stage_name, stage in outcome.stages.items():
                    artifacts[f"{name}.{stage_name}.metrics"] = stage.metrics
                    artifacts[f"{name}.{stage_name}.latency"] = stage.latency
                artifacts[f"{name}.e2e_latency"] = outcome.e2e_latency
                artifacts[f"{name}.migrations"] = [
                    report.to_dict() for report in outcome.migrations
                ]
            else:
                artifacts[f"{name}.metrics"] = outcome.metrics
                artifacts[f"{name}.latency"] = outcome.latency
                artifacts[f"{name}.migrations"] = [
                    report.to_dict() for report in outcome.migrations
                ]
        store.save(run, artifacts=artifacts)

    if output_path is not None:
        write_bench_report(run, outcomes, output_path)
    return run, outcomes


def _stage_report(stage: RuntimeResult) -> Dict[str, Any]:
    report = {
        "summary": stage.summary(),
        "shed_by_task": {
            str(task): shed for task, shed in stage.shed_by_task.items()
        },
        "migrations": [report.to_dict() for report in stage.migrations],
        "calibrated_service_time_us": stage.calibrated_service_time_us,
    }
    if stage.resilience is not None:
        report["resilience"] = stage.resilience
    return report


def _strategy_report(outcome: Any) -> Dict[str, Any]:
    if isinstance(outcome, dict):  # rate sweep: {rate: outcome}
        return {
            "rate_sweep": [
                {"offered_rate": rate, **_strategy_report(outcome[rate])}
                for rate in sorted(outcome)
            ]
        }
    if isinstance(outcome, TopologyResult):
        report = {
            "summary": outcome.summary(),
            "stages": {
                name: _stage_report(stage)
                for name, stage in outcome.stages.items()
            },
        }
        if outcome.resilience is not None:
            report["resilience"] = outcome.resilience
        return report
    return _stage_report(outcome)


def _iter_sanitizer_reports(outcome: Any) -> List[Dict[str, Any]]:
    if isinstance(outcome, dict):  # rate sweep: {rate: outcome}
        return [
            report
            for nested in outcome.values()
            for report in _iter_sanitizer_reports(nested)
        ]
    report = getattr(outcome, "sanitizer", None)
    return [report] if report else []


def merged_sanitizer_report(outcomes: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """Fold every run's sanitizer report into one dict (None = sanitizer off)."""
    reports = [
        report
        for outcome in outcomes.values()
        for report in _iter_sanitizer_reports(outcome)
    ]
    if not reports:
        return None
    checks: Dict[str, int] = {}
    violations: List[Dict[str, Any]] = []
    for report in reports:
        for check, count in report.get("checks", {}).items():
            checks[check] = checks.get(check, 0) + count
        violations.extend(report.get("violations", []))
    return {
        "enabled": True,
        "ok": not violations,
        "checks": checks,
        "violations": violations,
    }


def write_bench_report(
    run: ExperimentRun,
    outcomes: Mapping[str, Any],
    path: Union[str, Path] = DEFAULT_BENCH_REPORT,
) -> Path:
    """Write the standalone ``BENCH_runtime.json`` benchmark report."""
    payload = {
        "metadata": run.metadata.to_dict(),
        "spec": run.spec.params.get("runtime_spec", {}),
        "rows": [dict(row) for row in run.result.rows],
        "per_strategy": {
            name: _strategy_report(outcome) for name, outcome in outcomes.items()
        },
    }
    sanitizer = merged_sanitizer_report(outcomes)
    if sanitizer is not None:
        payload["sanitizer"] = sanitizer
    target = Path(path)
    target.write_text(json.dumps(payload, indent=1))
    return target
