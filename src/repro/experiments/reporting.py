"""Result containers and plain-text reporting for the figure drivers.

The original figures are plots; since this reproduction is judged on the shape
of the series rather than on pixels, every driver returns an
:class:`ExperimentResult` — a list of row dictionaries plus metadata — that can
be rendered as an aligned text table (the "rows/series the paper reports").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "mean"]

#: Rendering of "not a number" aggregates (e.g. an average over zero
#: rebalances) in text reports.
NAN_GLYPH = "—"


def mean(values: Iterable[float], *, empty: float = math.nan) -> float:
    """Arithmetic mean of ``values``; ``empty`` (NaN by default) when empty.

    The NaN default deliberately distinguishes "nothing was measured" (e.g. a
    run that never rebalanced) from a true 0.0 average; :func:`format_table`
    renders it as ``—``.
    """
    values = list(values)
    return sum(values) / len(values) if values else empty


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return NAN_GLYPH
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.5f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[List[str]] = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[idx]) for line in rendered))
        for idx, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


@dataclass
class ExperimentResult:
    """The output of one figure driver."""

    figure: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one data point."""
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Extract a column across all rows (missing values become ``None``)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching every ``column=value`` criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]

    def series(self, group_column: str, x_column: str, y_column: str) -> Dict[Any, List[tuple]]:
        """Group rows into ``{group: [(x, y), …]}`` series (figure-style view)."""
        grouped: Dict[Any, List[tuple]] = {}
        for row in self.rows:
            grouped.setdefault(row.get(group_column), []).append(
                (row.get(x_column), row.get(y_column))
            )
        return grouped

    def to_text(self) -> str:
        """Human-readable report: header, parameters, table, notes."""
        lines = [f"{self.figure}: {self.title}"]
        if self.parameters:
            params = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            lines.append(f"parameters: {params}")
        lines.append(format_table(self.rows))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the ResultsStore)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "parameters": dict(self.parameters),
            "notes": self.notes,
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            figure=payload["figure"],
            title=payload["title"],
            rows=[dict(row) for row in payload.get("rows", [])],
            notes=payload.get("notes", ""),
            parameters=dict(payload.get("parameters", {})),
        )

    def __len__(self) -> int:
        return len(self.rows)
