"""One experiment per figure of the paper's evaluation and appendix (Figs. 7–21).

Every figure is registered with
:func:`~repro.experiments.specs.register_experiment` under its id
(``"fig07"`` … ``"fig21"``), so it can be run declaratively::

    from repro.experiments import ExperimentSpec, run
    outcome = run(ExperimentSpec("fig08", scale="tiny"))
    print(outcome.result.to_text())

or from the command line (``python -m repro run fig08 --scale tiny``).  The
builders lean on the shared sweep helpers in
:mod:`repro.experiments.sweeps`; each returns an
:class:`~repro.experiments.reporting.ExperimentResult` whose rows are the
data points of the corresponding figure.  The ``scale`` preset (see
:mod:`repro.experiments.config`) sizes the workloads — "tiny" and "small"
preserve the shape of the curves at laptop runtimes, "paper" matches Tab. II.

The historical driver functions (``fig07_hash_skewness`` …) survive as thin
wrappers that build an :class:`~repro.experiments.specs.ExperimentSpec` and
run it; new code should construct specs directly.
"""

from typing import Dict, List, Optional, Sequence

from repro.core.load import load_from_costs, max_skewness
from repro.core.strategy import get_strategy
from repro.experiments.config import ExperimentScale
from repro.experiments.harness import run_planner_sequence
from repro.experiments.reporting import ExperimentResult
from repro.experiments.specs import ExperimentSpec, register_experiment
from repro.experiments.sweeps import (
    percentile_points,
    planner_sweep,
    simulate,
    zipf_workload,
)
from repro.operators import WindowedSelfJoin, WordCountOperator, build_q5_topology
from repro.workloads import (
    SocialFeedWorkload,
    StockExchangeWorkload,
    TPCHStreamWorkload,
    generate_tpch,
)

__all__ = [
    "fig07_hash_skewness",
    "fig08_vary_task_instances",
    "fig09_vary_theta",
    "fig10_vary_key_domain",
    "fig11_discretization",
    "fig12_vary_fluctuation",
    "fig13_throughput_latency",
    "fig14_real_world_throughput",
    "fig15_scale_out",
    "fig16_tpch_q5",
    "fig17_table_cap",
    "fig18_table_growth",
    "fig19_window_size",
    "fig20_beta_table_size",
    "fig21_beta_migration",
    "ALL_FIGURES",
]

_PERCENTILES = (20, 40, 60, 80, 100)


def _legacy(experiment: str, scale, seed: int, **params) -> ExperimentResult:
    """Run a figure through the spec runner with legacy keyword arguments."""
    return ExperimentSpec(experiment, scale=scale, seed=seed, params=params).run().result


# ---------------------------------------------------------------------------
# Fig. 7 — workload skewness of pure hashing
# ---------------------------------------------------------------------------


@register_experiment(
    "fig07",
    description="CDF of per-interval workload skewness under hash routing",
)
def _fig07(
    scale: ExperimentScale,
    *,
    task_counts: Sequence[int] = (5, 10, 20, 40),
    key_domains: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 7(a)/(b): CDF of per-interval workload skewness under hashing.

    (a) varies the number of task instances at the default key-domain size;
    (b) varies the key-domain size at the default task count.
    """
    if key_domains is None:
        key_domains = (
            max(scale.num_keys // 20, 100),
            max(scale.num_keys // 10, 200),
            scale.num_keys,
            scale.num_keys * 10,
        )
    result = ExperimentResult(
        figure="Fig. 7",
        title="Cumulative distribution of workload skewness under hash-based routing",
        parameters={"skew_z": scale.skew, "intervals": scale.intervals, "scale": scale.name},
    )

    def skew_samples(num_keys: int, num_tasks: int) -> List[float]:
        partitioner = get_strategy("storm").build(num_tasks, seed=seed)
        return [
            max_skewness(load_from_costs(snapshot, partitioner.route, num_tasks))
            for snapshot in zipf_workload(
                scale, num_keys=num_keys, num_tasks=num_tasks, fluctuation=0.5, seed=seed
            )
        ]

    for num_tasks in task_counts:
        samples = skew_samples(scale.num_keys, num_tasks)
        for percentile, skewness in percentile_points(samples, _PERCENTILES):
            result.add_row(
                panel="a",
                series=f"ND={num_tasks}",
                percentile=percentile,
                skewness=skewness,
            )
    for num_keys in key_domains:
        samples = skew_samples(num_keys, scale.num_tasks)
        for percentile, skewness in percentile_points(samples, _PERCENTILES):
            result.add_row(
                panel="b",
                series=f"K={num_keys}",
                percentile=percentile,
                skewness=skewness,
            )
    result.notes = (
        "Expected shape: skewness grows with the number of task instances and "
        "shrinks as the key domain grows."
    )
    return result


def fig07_hash_skewness(
    scale="small",
    *,
    task_counts: Sequence[int] = (5, 10, 20, 40),
    key_domains: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig07`` experiment."""
    return _legacy("fig07", scale, seed, task_counts=task_counts, key_domains=key_domains)


# ---------------------------------------------------------------------------
# Figs. 8-10 — planner sweeps over N_D, theta_max and K (Mixed vs MinTable)
# ---------------------------------------------------------------------------


def _planner_metric_columns(run) -> Dict[str, float]:
    return {
        "avg_generation_time_ms": run.avg_generation_time * 1e3,
        "migration_cost_pct": run.avg_migration_fraction * 100,
        "avg_table_size": run.avg_table_size,
        "rebalances": run.rebalances,
    }


def _nd_theta_k_sweep(
    scale: ExperimentScale,
    result: ExperimentResult,
    *,
    strategies: Sequence[str],
    windows: Sequence[int],
    sweep_name: str,
    sweep_values: Sequence,
    num_tasks_of=None,
    theta_of=None,
    num_keys_of=None,
    seed: int = 0,
) -> ExperimentResult:
    """Shared Figs. 8–10 shape: one workload axis crossed with the window axis."""

    def _num_tasks(axis):
        return num_tasks_of(axis[sweep_name]) if num_tasks_of else scale.num_tasks

    result.rows.extend(
        planner_sweep(
            axes={sweep_name: sweep_values, "window": windows},
            algorithms=strategies,
            workload=lambda axis: zipf_workload(
                scale,
                num_keys=num_keys_of(axis[sweep_name]) if num_keys_of else scale.num_keys,
                num_tasks=_num_tasks(axis),
                seed=seed,
            ),
            planner_kwargs=lambda axis: dict(
                num_tasks=_num_tasks(axis),
                theta_max=theta_of(axis[sweep_name]) if theta_of else scale.theta_max,
                max_table_size=scale.max_table_size,
                beta=scale.beta,
                window=axis["window"],
            ),
            row=lambda run, axis: _planner_metric_columns(run),
            seed=seed,
        )
    )
    return result


@register_experiment(
    "fig08",
    description="plan-generation time and migration cost vs task instances N_D",
)
def _fig08(
    scale: ExperimentScale,
    *,
    task_counts: Sequence[int] = (5, 10, 20, 30, 40),
    windows: Sequence[int] = (1, 5),
    strategies: Sequence[str] = ("mixed", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8(a)/(b): plan-generation time and migration cost vs ``N_D``."""
    result = ExperimentResult(
        figure="Fig. 8",
        title="Scheduling efficiency and migration cost with varying number of task instances",
        parameters={"theta_max": scale.theta_max, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: Mixed pays slightly more generation time than MinTable "
            "but much lower migration cost until the table cap forces it towards "
            "MinTable behaviour at large N_D."
        ),
    )
    return _nd_theta_k_sweep(
        scale,
        result,
        strategies=strategies,
        windows=windows,
        sweep_name="num_tasks",
        sweep_values=task_counts,
        num_tasks_of=lambda value: value,
        seed=seed,
    )


def fig08_vary_task_instances(
    scale="small",
    *,
    task_counts: Sequence[int] = (5, 10, 20, 30, 40),
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig08`` experiment."""
    return _legacy("fig08", scale, seed, task_counts=task_counts, windows=windows)


@register_experiment(
    "fig09",
    description="plan-generation time and migration cost vs theta_max",
)
def _fig09(
    scale: ExperimentScale,
    *,
    thetas: Sequence[float] = (0.02, 0.05, 0.08, 0.11, 0.14, 0.2, 0.3, 0.5),
    windows: Sequence[int] = (1, 5),
    strategies: Sequence[str] = ("mixed", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9(a)/(b): plan-generation time and migration cost vs ``θ_max``."""
    result = ExperimentResult(
        figure="Fig. 9",
        title="Scheduling efficiency and migration cost with varying theta_max",
        parameters={"N_D": scale.num_tasks, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: both metrics shrink as theta_max is relaxed; MinTable "
            "pays roughly 3x Mixed's migration cost at tight theta_max."
        ),
    )
    return _nd_theta_k_sweep(
        scale,
        result,
        strategies=strategies,
        windows=windows,
        sweep_name="theta_max",
        sweep_values=thetas,
        theta_of=lambda value: value,
        seed=seed,
    )


def fig09_vary_theta(
    scale="small",
    *,
    thetas: Sequence[float] = (0.02, 0.05, 0.08, 0.11, 0.14, 0.2, 0.3, 0.5),
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig09`` experiment."""
    return _legacy("fig09", scale, seed, thetas=thetas, windows=windows)


@register_experiment(
    "fig10",
    description="plan-generation time and migration cost vs key-domain size K",
)
def _fig10(
    scale: ExperimentScale,
    *,
    key_domains: Optional[Sequence[int]] = None,
    windows: Sequence[int] = (1, 5),
    strategies: Sequence[str] = ("mixed", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 10(a)/(b): plan-generation time and migration cost vs ``K``."""
    if key_domains is None:
        key_domains = (
            max(scale.num_keys // 20, 100),
            max(scale.num_keys // 10, 200),
            scale.num_keys,
            scale.num_keys * 10,
        )
    result = ExperimentResult(
        figure="Fig. 10",
        title="Scheduling efficiency and migration cost under different key-domain sizes",
        parameters={"N_D": scale.num_tasks, "theta_max": scale.theta_max, "scale": scale.name},
        notes=(
            "Expected shape: generation time grows with K; Mixed's migration cost "
            "stays well below MinTable's across domain sizes."
        ),
    )
    return _nd_theta_k_sweep(
        scale,
        result,
        strategies=strategies,
        windows=windows,
        sweep_name="num_keys",
        sweep_values=key_domains,
        num_keys_of=lambda value: value,
        seed=seed,
    )


def fig10_vary_key_domain(
    scale="small",
    *,
    key_domains: Optional[Sequence[int]] = None,
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig10`` experiment."""
    return _legacy("fig10", scale, seed, key_domains=key_domains, windows=windows)


# ---------------------------------------------------------------------------
# Fig. 11 — compact representation / discretisation degree R
# ---------------------------------------------------------------------------


@register_experiment(
    "fig11",
    description="compact representation: planning time and estimation error vs R",
)
def _fig11(
    scale: ExperimentScale,
    *,
    degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    thetas: Sequence[float] = (0.0, 0.02, 0.08, 0.15),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(a)/(b): planning time and load-estimation error vs degree ``R``.

    Panel (a) includes the "original key space" point (no compaction) the paper
    contrasts against; panel (b) reports the load-estimation error for several
    ``θ_max`` values.
    """
    result = ExperimentResult(
        figure="Fig. 11",
        title="Compact representation: planning efficiency and load-estimation error vs R",
        parameters={"N_D": scale.num_tasks, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: generation time drops by roughly an order of magnitude "
            "from the original key space to moderate R; the estimation error grows "
            "with R but stays below 1%."
        ),
    )
    workload = zipf_workload(scale, seed=seed)

    def compact_run(degree: Optional[int], theta: float, force: bool = False):
        return run_planner_sequence(
            "mixed",
            workload,
            num_tasks=scale.num_tasks,
            theta_max=theta,
            max_table_size=scale.max_table_size,
            window=scale.window,
            use_compact=True,
            discretization_degree=degree,
            force_every_interval=force,
            seed=seed,
        )

    # Panel (a): generation time vs R (plus the uncompacted baseline).
    for degree in (None, *degrees):
        run = compact_run(degree, scale.theta_max)
        result.add_row(
            panel="a",
            degree="original-key-space" if degree is None else degree,
            avg_generation_time_ms=run.avg_generation_time * 1e3,
            load_estimation_error_pct=run.avg_load_estimation_error * 100,
        )

    # Panel (b): estimation error vs R for several theta_max values.
    for theta in thetas:
        for degree in degrees:
            run = compact_run(degree, theta, force=True)
            result.add_row(
                panel="b",
                theta_max=theta,
                degree=degree,
                load_estimation_error_pct=run.avg_load_estimation_error * 100,
            )
    return result


def fig11_discretization(
    scale="small",
    *,
    degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    thetas: Sequence[float] = (0.0, 0.02, 0.08, 0.15),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig11`` experiment."""
    return _legacy("fig11", scale, seed, degrees=degrees, thetas=thetas)


# ---------------------------------------------------------------------------
# Fig. 12 — planner comparison under varying fluctuation rate f
# ---------------------------------------------------------------------------


@register_experiment(
    "fig12",
    description="generation time and migration cost vs distribution fluctuation f",
)
def _fig12(
    scale: ExperimentScale,
    *,
    fluctuations: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    strategies: Sequence[str] = ("mixed", "mintable", "readj", "mixedbf"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 12(a)/(b): generation time and migration cost vs fluctuation ``f``."""
    result = ExperimentResult(
        figure="Fig. 12",
        title="Scheduling efficiency and migration cost with varying distribution change frequency",
        parameters={"theta_max": 0.08, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: Readj and MixedBF generation times are orders of "
            "magnitude above Mixed/MinTable; Mixed's migration cost grows slowest "
            "with f."
        ),
    )
    result.rows.extend(
        planner_sweep(
            axes={"fluctuation": fluctuations},
            algorithms=strategies,
            workload=lambda axis: zipf_workload(
                scale, fluctuation=axis["fluctuation"], seed=seed
            ),
            planner_kwargs=lambda axis: dict(
                num_tasks=scale.num_tasks,
                theta_max=0.08,
                max_table_size=scale.max_table_size,
                beta=scale.beta,
                window=scale.window,
            ),
            row=lambda run, axis: {
                "avg_generation_time_ms": run.avg_generation_time * 1e3,
                "migration_cost_pct": run.avg_migration_fraction * 100,
                "rebalances": run.rebalances,
            },
            seed=seed,
        )
    )
    return result


def fig12_vary_fluctuation(
    scale="small",
    *,
    fluctuations: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    algorithms: Sequence[str] = ("mixed", "mintable", "readj", "mixedbf"),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig12`` experiment."""
    return _legacy("fig12", scale, seed, fluctuations=fluctuations, strategies=algorithms)


# ---------------------------------------------------------------------------
# Fig. 13 — throughput and latency vs fluctuation rate (simulation)
# ---------------------------------------------------------------------------


@register_experiment(
    "fig13",
    description="simulated throughput and latency vs distribution fluctuation f",
)
def _fig13(
    scale: ExperimentScale,
    *,
    fluctuations: Sequence[float] = (0.1, 0.5, 0.9, 1.3, 1.7, 2.0),
    strategies: Sequence[str] = ("storm", "readj", "mixed", "ideal"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 13(a)/(b): simulated throughput and latency vs fluctuation ``f``."""
    result = ExperimentResult(
        figure="Fig. 13",
        title="Throughput and latency with varying distribution change frequency",
        parameters={"theta_max": scale.theta_max, "scale": scale.name},
        notes=(
            "Expected shape: Ideal bounds everything from above; Mixed stays close "
            "to Ideal while Readj and Storm degrade as f grows."
        ),
    )
    for fluctuation in fluctuations:
        workload = zipf_workload(
            scale,
            fluctuation=fluctuation,
            intervals=scale.sim_intervals,
            seed=seed,
        )
        for strategy in strategies:
            collector = simulate(
                scale,
                strategy,
                workload,
                WordCountOperator(window=scale.window),
                seed=seed,
            )
            result.add_row(
                fluctuation=fluctuation,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
                skewness=collector.mean_skewness,
            )
    return result


def fig13_throughput_latency(
    scale="small",
    *,
    fluctuations: Sequence[float] = (0.1, 0.5, 0.9, 1.3, 1.7, 2.0),
    strategies: Sequence[str] = ("storm", "readj", "mixed", "ideal"),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig13`` experiment."""
    return _legacy("fig13", scale, seed, fluctuations=fluctuations, strategies=strategies)


# ---------------------------------------------------------------------------
# Fig. 14 — throughput on the Social and Stock workloads vs theta_max
# ---------------------------------------------------------------------------


@register_experiment(
    "fig14",
    description="throughput on Social/Stock surrogate workloads vs theta_max",
)
def _fig14(
    scale: ExperimentScale,
    *,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    social_strategies: Sequence[str] = ("storm", "readj", "mixed", "pkg", "mintable"),
    stock_strategies: Sequence[str] = ("storm", "readj", "mixed", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 14(a)/(b): throughput on Social (word count) and Stock (self-join)."""
    result = ExperimentResult(
        figure="Fig. 14",
        title="Throughput on real-world surrogate workloads vs theta_max",
        parameters={"N_D": scale.num_tasks, "scale": scale.name},
        notes=(
            "Expected shape: Mixed leads on both workloads (best at the tightest "
            "theta_max); PKG (Social only) is theta-insensitive but below Mixed; "
            "Readj only catches up under loose balance requirements; MinTable "
            "loses throughput to its migration volume."
        ),
    )
    social = SocialFeedWorkload(
        num_words=scale.num_keys,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        seed=seed,
    ).take(scale.sim_intervals)
    stock = StockExchangeWorkload(
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        seed=seed,
    ).take(scale.sim_intervals)

    for theta in thetas:
        for strategy in social_strategies:
            collector = simulate(
                scale,
                strategy,
                social,
                WordCountOperator(window=scale.window),
                theta_max=theta,
                seed=seed,
            )
            result.add_row(
                panel="a-social",
                theta_max=theta,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
            )
        for strategy in stock_strategies:
            collector = simulate(
                scale,
                strategy,
                stock,
                WindowedSelfJoin(window=max(scale.window, 2)),
                theta_max=theta,
                window=max(scale.window, 2),
                seed=seed,
            )
            result.add_row(
                panel="b-stock",
                theta_max=theta,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
            )
    return result


def fig14_real_world_throughput(
    scale="small",
    *,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig14`` experiment."""
    return _legacy("fig14", scale, seed, thetas=thetas)


# ---------------------------------------------------------------------------
# Fig. 15 — throughput over time during scale-out
# ---------------------------------------------------------------------------


@register_experiment(
    "fig15",
    description="throughput dynamics while one task instance is added",
)
def _fig15(
    scale: ExperimentScale,
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "pkg", "storm"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 15(a)/(b): throughput over time when one task instance is added."""
    intervals = max(scale.sim_intervals, 12)
    add_at = intervals // 3
    result = ExperimentResult(
        figure="Fig. 15",
        title="Throughput dynamics during system scale-out (one task added)",
        parameters={
            "N_D": scale.num_tasks,
            "added_at_interval": add_at,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: Mixed re-balances onto the new instance within one "
            "planning round; Readj takes much longer; Storm never uses the new "
            "instance for existing keys."
        ),
    )
    social = SocialFeedWorkload(
        num_words=scale.num_keys,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=intervals,
        seed=seed,
    ).take(intervals)
    stock = StockExchangeWorkload(
        tuples_per_interval=scale.tuples_per_interval,
        intervals=intervals,
        seed=seed,
    ).take(intervals)

    for panel, workload, logic, panel_strategies in (
        ("a-social", social, WordCountOperator(window=scale.window), strategies),
        (
            "b-stock",
            stock,
            WindowedSelfJoin(window=max(scale.window, 2)),
            tuple(s for s in strategies if s != "pkg"),
        ),
    ):
        for theta in thetas:
            for strategy in panel_strategies:
                if not get_strategy(strategy).theta_sensitive and theta != thetas[0]:
                    continue  # theta-insensitive strategies: one curve suffices
                collector = simulate(
                    scale,
                    strategy,
                    workload,
                    logic,
                    theta_max=theta,
                    window=logic.window,
                    seed=seed,
                    scale_out_at={add_at: scale.num_tasks + 1},
                )
                for record in collector:
                    result.add_row(
                        panel=panel,
                        theta_max=theta,
                        strategy=strategy,
                        interval=record.interval,
                        throughput=record.throughput,
                        rebalanced=record.rebalanced,
                    )
    return result


def fig15_scale_out(
    scale="small",
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "pkg", "storm"),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig15`` experiment."""
    return _legacy("fig15", scale, seed, thetas=thetas, strategies=strategies)


# ---------------------------------------------------------------------------
# Fig. 16 — continuous TPC-H Q5 throughput over time
# ---------------------------------------------------------------------------


@register_experiment(
    "fig16",
    description="continuous TPC-H Q5 pipeline throughput over time",
)
def _fig16(
    scale: ExperimentScale,
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "storm", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 16(a)/(b): throughput of the continuous Q5 pipeline over time."""
    from repro.engine import PipelineSimulator, SimulationConfig

    intervals = max(scale.sim_intervals, 12)
    change_every = max(3, intervals // 4)
    dataset = generate_tpch(scale=0.002 if scale.name != "paper" else 0.05, seed=seed)
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=scale.tuples_per_interval // 2,
        intervals=intervals,
        change_every=change_every,
        seed=seed,
    ).take(intervals)

    result = ExperimentResult(
        figure="Fig. 16",
        title="Dynamic adjustment on TPC-H data for continuous Q5",
        parameters={
            "z": 0.8,
            "window": 5,
            "change_every": change_every,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: Mixed recovers quickly after every triggered "
            "distribution change and sustains the best throughput; Storm has no "
            "balancing and stays lowest."
        ),
    )
    q5_window = 5
    for theta in thetas:
        for strategy in strategies:
            spec = get_strategy(strategy)

            def factory(stage_name: str, parallelism: int, _spec=spec, _theta=theta):
                return _spec.build(
                    parallelism,
                    theta_max=_theta,
                    max_table_size=scale.max_table_size,
                    window=q5_window,
                    seed=seed,
                )

            topology = build_q5_topology(
                dataset,
                factory,
                parallelism=scale.num_tasks,
                window=q5_window,
            )
            simulator = PipelineSimulator(
                topology, SimulationConfig(capacity_factor=1.1)
            )
            run = simulator.run(workload)
            for record in run.pipeline:
                result.add_row(
                    theta_max=theta,
                    strategy=strategy,
                    interval=record.interval,
                    throughput=record.throughput,
                    latency_ms=record.latency_ms,
                )
    return result


def fig16_tpch_q5(
    scale="small",
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "storm", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig16`` experiment."""
    return _legacy("fig16", scale, seed, thetas=thetas, strategies=strategies)


# ---------------------------------------------------------------------------
# Figs. 17-21 — appendix parameter studies
# ---------------------------------------------------------------------------


@register_experiment(
    "fig17",
    description="migration cost of Mixed vs the routing-table cap N_A",
)
def _fig17(
    scale: ExperimentScale,
    *,
    cap_exponents: Sequence[int] = (1, 3, 5, 7, 9, 11, 13),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 17: Mixed's migration cost vs the routing table cap ``N_A = 2^i``."""
    result = ExperimentResult(
        figure="Fig. 17",
        title="Migration cost of Mixed under different routing-table caps",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: tight caps force Mixed to behave like MinTable "
            "(high migration cost); relaxing the cap past the needed size drops "
            "the cost sharply, earlier for looser theta_max."
        ),
    )
    workload = zipf_workload(scale, seed=seed)
    result.rows.extend(
        planner_sweep(
            axes={"theta_max": thetas, "cap_exponent": cap_exponents},
            algorithms=("mixed",),
            include_algorithm=False,
            workload=lambda axis: workload,
            planner_kwargs=lambda axis: dict(
                num_tasks=scale.num_tasks,
                theta_max=axis["theta_max"],
                max_table_size=2 ** axis["cap_exponent"],
                beta=scale.beta,
                window=scale.window,
            ),
            row=lambda run, axis: {
                "table_cap": 2 ** axis["cap_exponent"],
                "migration_cost_pct": run.avg_migration_fraction * 100,
                "avg_table_size": run.avg_table_size,
            },
            seed=seed,
        )
    )
    return result


def fig17_table_cap(
    scale="small",
    *,
    cap_exponents: Sequence[int] = (1, 3, 5, 7, 9, 11, 13),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig17`` experiment."""
    return _legacy("fig17", scale, seed, cap_exponents=cap_exponents, thetas=thetas)


@register_experiment(
    "fig18",
    description="routing-table growth of MinMig along successive adjustments",
)
def _fig18(
    scale: ExperimentScale,
    *,
    adjustments: Optional[int] = None,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 18: MinMig's routing-table size as adjustments accumulate."""
    adjustments = adjustments if adjustments is not None else max(scale.intervals, 12)
    result = ExperimentResult(
        figure="Fig. 18",
        title="Routing table growth of MinMig along successive adjustments",
        parameters={
            "K": scale.num_keys,
            "adjustments": adjustments,
            "convergence_bound": (scale.num_tasks - 1) / scale.num_tasks * scale.num_keys,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: the table grows fastest for the tightest theta_max and "
            "converges towards (N_D-1)/N_D * K entries because MinMig never cleans."
        ),
    )
    result.rows.extend(
        planner_sweep(
            axes={"theta_max": thetas},
            algorithms=("minmig",),
            include_algorithm=False,
            workload=lambda axis: zipf_workload(scale, intervals=adjustments, seed=seed),
            planner_kwargs=lambda axis: dict(
                num_tasks=scale.num_tasks,
                theta_max=axis["theta_max"],
                max_table_size=None,
                beta=scale.beta,
                window=scale.window,
            ),
            row=lambda run, axis: [
                {"adjustment": adjustment, "routing_table_size": size}
                for adjustment, size in enumerate(run.table_sizes, start=1)
            ],
            force_every_interval=True,
            seed=seed,
        )
    )
    return result


def fig18_table_growth(
    scale="small",
    *,
    adjustments: Optional[int] = None,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig18`` experiment."""
    return _legacy("fig18", scale, seed, adjustments=adjustments, thetas=thetas)


@register_experiment(
    "fig19",
    description="migration cost vs state window size w",
)
def _fig19(
    scale: ExperimentScale,
    *,
    windows: Sequence[int] = (1, 3, 5, 7, 9, 11, 13, 15),
    strategies: Sequence[str] = ("mixed", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 19: migration cost vs state window size ``w`` (Mixed vs MinTable)."""
    result = ExperimentResult(
        figure="Fig. 19",
        title="Migration cost with varying window size",
        parameters={"theta_max": scale.theta_max, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: larger windows give Mixed more low-cost migration "
            "candidates, so its cost stays below MinTable's at every w."
        ),
    )
    result.rows.extend(
        planner_sweep(
            axes={"window": windows},
            algorithms=strategies,
            workload=lambda axis: zipf_workload(
                scale, intervals=max(scale.intervals, axis["window"] + 3), seed=seed
            ),
            planner_kwargs=lambda axis: dict(
                num_tasks=scale.num_tasks,
                theta_max=scale.theta_max,
                max_table_size=scale.max_table_size,
                beta=scale.beta,
                window=axis["window"],
            ),
            row=lambda run, axis: {
                "migration_cost_pct": run.avg_migration_fraction * 100
            },
            seed=seed,
        )
    )
    return result


def fig19_window_size(
    scale="small",
    *,
    windows: Sequence[int] = (1, 3, 5, 7, 9, 11, 13, 15),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig19`` experiment."""
    return _legacy("fig19", scale, seed, windows=windows)


def _beta_sweep(
    scale: ExperimentScale,
    betas: Sequence[float],
    thetas: Sequence[float],
    seed: int,
) -> List[Dict[str, float]]:
    """Shared Figs. 20/21 sweep: MinMig over β × θ_max, forced every interval."""
    workload = zipf_workload(scale, seed=seed)
    return planner_sweep(
        axes={"theta_max": thetas, "beta": betas},
        algorithms=("minmig",),
        include_algorithm=False,
        workload=lambda axis: workload,
        planner_kwargs=lambda axis: dict(
            num_tasks=scale.num_tasks,
            theta_max=axis["theta_max"],
            max_table_size=None,
            beta=axis["beta"],
            window=scale.window,
        ),
        row=lambda run, axis: {
            "routing_table_size": run.avg_table_size,
            "migration_cost_pct": run.avg_migration_fraction * 100,
        },
        force_every_interval=True,
        seed=seed,
    )


@register_experiment(
    "fig20",
    description="MinMig routing-table size vs the gamma weight beta",
)
def _fig20(
    scale: ExperimentScale,
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 20: routing-table size vs the γ weight β (MinMig)."""
    result = ExperimentResult(
        figure="Fig. 20",
        title="Routing table size for different beta",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: larger beta prefers heavy keys, so fewer entries are "
            "needed; the size stabilises for beta in [1.5, 2.0]."
        ),
    )
    for row in _beta_sweep(scale, betas, thetas, seed):
        result.add_row(
            theta_max=row["theta_max"],
            beta=row["beta"],
            routing_table_size=row["routing_table_size"],
        )
    return result


def fig20_beta_table_size(
    scale="small",
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig20`` experiment."""
    return _legacy("fig20", scale, seed, betas=betas, thetas=thetas)


@register_experiment(
    "fig21",
    description="MinMig migration cost vs the gamma weight beta",
)
def _fig21(
    scale: ExperimentScale,
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 21: migration cost vs the γ weight β (MinMig)."""
    result = ExperimentResult(
        figure="Fig. 21",
        title="Migration cost for different beta",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: migration cost grows with beta (heavier keys carry "
            "more state); tight theta_max pays more at every beta."
        ),
    )
    for row in _beta_sweep(scale, betas, thetas, seed):
        result.add_row(
            theta_max=row["theta_max"],
            beta=row["beta"],
            migration_cost_pct=row["migration_cost_pct"],
        )
    return result


def fig21_beta_migration(
    scale="small",
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Legacy-signature wrapper for the ``fig21`` experiment."""
    return _legacy("fig21", scale, seed, betas=betas, thetas=thetas)


#: Legacy registry kept for the benchmark harness and old scripts: figure id ->
#: legacy-signature driver.  New code should use the experiment registry
#: (`repro.experiments.specs.experiment_names`) instead.
ALL_FIGURES = {
    "fig07": fig07_hash_skewness,
    "fig08": fig08_vary_task_instances,
    "fig09": fig09_vary_theta,
    "fig10": fig10_vary_key_domain,
    "fig11": fig11_discretization,
    "fig12": fig12_vary_fluctuation,
    "fig13": fig13_throughput_latency,
    "fig14": fig14_real_world_throughput,
    "fig15": fig15_scale_out,
    "fig16": fig16_tpch_q5,
    "fig17": fig17_table_cap,
    "fig18": fig18_table_growth,
    "fig19": fig19_window_size,
    "fig20": fig20_beta_table_size,
    "fig21": fig21_beta_migration,
}
