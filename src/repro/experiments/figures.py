"""One driver per figure of the paper's evaluation and appendix (Figs. 7–21).

Every driver returns an :class:`~repro.experiments.reporting.ExperimentResult`
whose rows are the data points of the corresponding figure.  The ``scale``
argument selects a workload-size preset (see
:mod:`repro.experiments.config`) — the "tiny" and "small" presets preserve the
shape of the curves at laptop runtimes, the "paper" preset matches Tab. II.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines import HashPartitioner
from repro.core.load import load_from_costs, max_skewness
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import run_planner_sequence, run_simulation
from repro.experiments.reporting import ExperimentResult
from repro.operators import WindowedSelfJoin, WordCountOperator, build_q5_topology
from repro.workloads import (
    SocialFeedWorkload,
    StockExchangeWorkload,
    TPCHStreamWorkload,
    ZipfWorkload,
    generate_tpch,
)

__all__ = [
    "fig07_hash_skewness",
    "fig08_vary_task_instances",
    "fig09_vary_theta",
    "fig10_vary_key_domain",
    "fig11_discretization",
    "fig12_vary_fluctuation",
    "fig13_throughput_latency",
    "fig14_real_world_throughput",
    "fig15_scale_out",
    "fig16_tpch_q5",
    "fig17_table_cap",
    "fig18_table_growth",
    "fig19_window_size",
    "fig20_beta_table_size",
    "fig21_beta_migration",
    "ALL_FIGURES",
]

_PERCENTILES = (20, 40, 60, 80, 100)


def _zipf_workload(
    scale: ExperimentScale,
    *,
    num_keys: Optional[int] = None,
    num_tasks: Optional[int] = None,
    fluctuation: Optional[float] = None,
    intervals: Optional[int] = None,
    skew: Optional[float] = None,
    seed: int = 0,
) -> List[Dict[int, float]]:
    """Materialise a Zipf workload with the scale's defaults and overrides."""
    workload = ZipfWorkload(
        num_keys=num_keys if num_keys is not None else scale.num_keys,
        skew=skew if skew is not None else scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=fluctuation if fluctuation is not None else scale.fluctuation,
        num_tasks=num_tasks if num_tasks is not None else scale.num_tasks,
        intervals=intervals if intervals is not None else scale.intervals,
        seed=seed,
    )
    return workload.take(intervals if intervals is not None else scale.intervals)


# ---------------------------------------------------------------------------
# Fig. 7 — workload skewness of pure hashing
# ---------------------------------------------------------------------------


def fig07_hash_skewness(
    scale: str | ExperimentScale = "small",
    *,
    task_counts: Sequence[int] = (5, 10, 20, 40),
    key_domains: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 7(a)/(b): CDF of per-interval workload skewness under hashing.

    (a) varies the number of task instances at the default key-domain size;
    (b) varies the key-domain size at the default task count.
    """
    scale = get_scale(scale)
    if key_domains is None:
        key_domains = (
            max(scale.num_keys // 20, 100),
            max(scale.num_keys // 10, 200),
            scale.num_keys,
            scale.num_keys * 10,
        )
    result = ExperimentResult(
        figure="Fig. 7",
        title="Cumulative distribution of workload skewness under hash-based routing",
        parameters={"skew_z": scale.skew, "intervals": scale.intervals, "scale": scale.name},
    )

    def skew_samples(num_keys: int, num_tasks: int) -> List[float]:
        partitioner = HashPartitioner(num_tasks, seed=seed)
        samples: List[float] = []
        for snapshot in _zipf_workload(
            scale, num_keys=num_keys, num_tasks=num_tasks, fluctuation=0.5, seed=seed
        ):
            loads = load_from_costs(snapshot, partitioner.route, num_tasks)
            samples.append(max_skewness(loads))
        return samples

    for num_tasks in task_counts:
        samples = sorted(skew_samples(scale.num_keys, num_tasks))
        for percentile in _PERCENTILES:
            index = max(0, int(np.ceil(percentile / 100 * len(samples))) - 1)
            result.add_row(
                panel="a",
                series=f"ND={num_tasks}",
                percentile=percentile,
                skewness=samples[index],
            )
    for num_keys in key_domains:
        samples = sorted(skew_samples(num_keys, scale.num_tasks))
        for percentile in _PERCENTILES:
            index = max(0, int(np.ceil(percentile / 100 * len(samples))) - 1)
            result.add_row(
                panel="b",
                series=f"K={num_keys}",
                percentile=percentile,
                skewness=samples[index],
            )
    result.notes = (
        "Expected shape: skewness grows with the number of task instances and "
        "shrinks as the key domain grows."
    )
    return result


# ---------------------------------------------------------------------------
# Figs. 8-10 — planner sweeps over N_D, theta_max and K (Mixed vs MinTable)
# ---------------------------------------------------------------------------


def _planner_sweep(
    scale: ExperimentScale,
    result: ExperimentResult,
    *,
    algorithms: Sequence[str],
    windows: Sequence[int],
    sweep_name: str,
    sweep_values: Sequence,
    num_tasks_of=None,
    theta_of=None,
    num_keys_of=None,
    seed: int = 0,
) -> ExperimentResult:
    for value in sweep_values:
        num_tasks = num_tasks_of(value) if num_tasks_of else scale.num_tasks
        theta = theta_of(value) if theta_of else scale.theta_max
        num_keys = num_keys_of(value) if num_keys_of else scale.num_keys
        for window in windows:
            workload = _zipf_workload(
                scale, num_keys=num_keys, num_tasks=num_tasks, seed=seed
            )
            for algorithm in algorithms:
                run = run_planner_sequence(
                    algorithm,
                    workload,
                    num_tasks=num_tasks,
                    theta_max=theta,
                    max_table_size=scale.max_table_size,
                    beta=scale.beta,
                    window=window,
                    seed=seed,
                )
                result.add_row(
                    **{sweep_name: value},
                    window=window,
                    algorithm=algorithm,
                    avg_generation_time_ms=run.avg_generation_time * 1e3,
                    migration_cost_pct=run.avg_migration_fraction * 100,
                    avg_table_size=run.avg_table_size,
                    rebalances=run.rebalances,
                )
    return result


def fig08_vary_task_instances(
    scale: str | ExperimentScale = "small",
    *,
    task_counts: Sequence[int] = (5, 10, 20, 30, 40),
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8(a)/(b): plan-generation time and migration cost vs ``N_D``."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 8",
        title="Scheduling efficiency and migration cost with varying number of task instances",
        parameters={"theta_max": scale.theta_max, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: Mixed pays slightly more generation time than MinTable "
            "but much lower migration cost until the table cap forces it towards "
            "MinTable behaviour at large N_D."
        ),
    )
    return _planner_sweep(
        scale,
        result,
        algorithms=("mixed", "mintable"),
        windows=windows,
        sweep_name="num_tasks",
        sweep_values=task_counts,
        num_tasks_of=lambda value: value,
        seed=seed,
    )


def fig09_vary_theta(
    scale: str | ExperimentScale = "small",
    *,
    thetas: Sequence[float] = (0.02, 0.05, 0.08, 0.11, 0.14, 0.2, 0.3, 0.5),
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9(a)/(b): plan-generation time and migration cost vs ``θ_max``."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 9",
        title="Scheduling efficiency and migration cost with varying theta_max",
        parameters={"N_D": scale.num_tasks, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: both metrics shrink as theta_max is relaxed; MinTable "
            "pays roughly 3x Mixed's migration cost at tight theta_max."
        ),
    )
    return _planner_sweep(
        scale,
        result,
        algorithms=("mixed", "mintable"),
        windows=windows,
        sweep_name="theta_max",
        sweep_values=thetas,
        theta_of=lambda value: value,
        seed=seed,
    )


def fig10_vary_key_domain(
    scale: str | ExperimentScale = "small",
    *,
    key_domains: Optional[Sequence[int]] = None,
    windows: Sequence[int] = (1, 5),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 10(a)/(b): plan-generation time and migration cost vs ``K``."""
    scale = get_scale(scale)
    if key_domains is None:
        key_domains = (
            max(scale.num_keys // 20, 100),
            max(scale.num_keys // 10, 200),
            scale.num_keys,
            scale.num_keys * 10,
        )
    result = ExperimentResult(
        figure="Fig. 10",
        title="Scheduling efficiency and migration cost under different key-domain sizes",
        parameters={"N_D": scale.num_tasks, "theta_max": scale.theta_max, "scale": scale.name},
        notes=(
            "Expected shape: generation time grows with K; Mixed's migration cost "
            "stays well below MinTable's across domain sizes."
        ),
    )
    return _planner_sweep(
        scale,
        result,
        algorithms=("mixed", "mintable"),
        windows=windows,
        sweep_name="num_keys",
        sweep_values=key_domains,
        num_keys_of=lambda value: value,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Fig. 11 — compact representation / discretisation degree R
# ---------------------------------------------------------------------------


def fig11_discretization(
    scale: str | ExperimentScale = "small",
    *,
    degrees: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    thetas: Sequence[float] = (0.0, 0.02, 0.08, 0.15),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 11(a)/(b): planning time and load-estimation error vs degree ``R``.

    Panel (a) includes the "original key space" point (no compaction) the paper
    contrasts against; panel (b) reports the load-estimation error for several
    ``θ_max`` values.
    """
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 11",
        title="Compact representation: planning efficiency and load-estimation error vs R",
        parameters={"N_D": scale.num_tasks, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: generation time drops by roughly an order of magnitude "
            "from the original key space to moderate R; the estimation error grows "
            "with R but stays below 1%."
        ),
    )
    workload = _zipf_workload(scale, seed=seed)

    # Panel (a): generation time vs R (plus the uncompacted baseline).
    baseline = run_planner_sequence(
        "mixed",
        workload,
        num_tasks=scale.num_tasks,
        theta_max=scale.theta_max,
        max_table_size=scale.max_table_size,
        window=scale.window,
        use_compact=True,
        discretization_degree=None,
        seed=seed,
    )
    result.add_row(
        panel="a",
        degree="original-key-space",
        avg_generation_time_ms=baseline.avg_generation_time * 1e3,
        load_estimation_error_pct=baseline.avg_load_estimation_error * 100,
    )
    for degree in degrees:
        run = run_planner_sequence(
            "mixed",
            workload,
            num_tasks=scale.num_tasks,
            theta_max=scale.theta_max,
            max_table_size=scale.max_table_size,
            window=scale.window,
            use_compact=True,
            discretization_degree=degree,
            seed=seed,
        )
        result.add_row(
            panel="a",
            degree=degree,
            avg_generation_time_ms=run.avg_generation_time * 1e3,
            load_estimation_error_pct=run.avg_load_estimation_error * 100,
        )

    # Panel (b): estimation error vs R for several theta_max values.
    for theta in thetas:
        for degree in degrees:
            run = run_planner_sequence(
                "mixed",
                workload,
                num_tasks=scale.num_tasks,
                theta_max=theta,
                max_table_size=scale.max_table_size,
                window=scale.window,
                use_compact=True,
                discretization_degree=degree,
                force_every_interval=True,
                seed=seed,
            )
            result.add_row(
                panel="b",
                theta_max=theta,
                degree=degree,
                load_estimation_error_pct=run.avg_load_estimation_error * 100,
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 12 — planner comparison under varying fluctuation rate f
# ---------------------------------------------------------------------------


def fig12_vary_fluctuation(
    scale: str | ExperimentScale = "small",
    *,
    fluctuations: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    algorithms: Sequence[str] = ("mixed", "mintable", "readj", "mixedbf"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 12(a)/(b): generation time and migration cost vs fluctuation ``f``."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 12",
        title="Scheduling efficiency and migration cost with varying distribution change frequency",
        parameters={"theta_max": 0.08, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: Readj and MixedBF generation times are orders of "
            "magnitude above Mixed/MinTable; Mixed's migration cost grows slowest "
            "with f."
        ),
    )
    for fluctuation in fluctuations:
        workload = _zipf_workload(scale, fluctuation=fluctuation, seed=seed)
        for algorithm in algorithms:
            run = run_planner_sequence(
                algorithm,
                workload,
                num_tasks=scale.num_tasks,
                theta_max=0.08,
                max_table_size=scale.max_table_size,
                beta=scale.beta,
                window=scale.window,
                seed=seed,
            )
            result.add_row(
                fluctuation=fluctuation,
                algorithm=algorithm,
                avg_generation_time_ms=run.avg_generation_time * 1e3,
                migration_cost_pct=run.avg_migration_fraction * 100,
                rebalances=run.rebalances,
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 13 — throughput and latency vs fluctuation rate (simulation)
# ---------------------------------------------------------------------------


def fig13_throughput_latency(
    scale: str | ExperimentScale = "small",
    *,
    fluctuations: Sequence[float] = (0.1, 0.5, 0.9, 1.3, 1.7, 2.0),
    strategies: Sequence[str] = ("storm", "readj", "mixed", "ideal"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 13(a)/(b): simulated throughput and latency vs fluctuation ``f``."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 13",
        title="Throughput and latency with varying distribution change frequency",
        parameters={"theta_max": scale.theta_max, "scale": scale.name},
        notes=(
            "Expected shape: Ideal bounds everything from above; Mixed stays close "
            "to Ideal while Readj and Storm degrade as f grows."
        ),
    )
    for fluctuation in fluctuations:
        workload = _zipf_workload(
            scale,
            fluctuation=fluctuation,
            intervals=scale.sim_intervals,
            seed=seed,
        )
        for strategy in strategies:
            collector = run_simulation(
                strategy,
                workload,
                WordCountOperator(window=scale.window),
                num_tasks=scale.num_tasks,
                theta_max=scale.theta_max,
                max_table_size=scale.max_table_size,
                window=scale.window,
                seed=seed,
            )
            result.add_row(
                fluctuation=fluctuation,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
                skewness=collector.mean_skewness,
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 14 — throughput on the Social and Stock workloads vs theta_max
# ---------------------------------------------------------------------------


def fig14_real_world_throughput(
    scale: str | ExperimentScale = "small",
    *,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 14(a)/(b): throughput on Social (word count) and Stock (self-join)."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 14",
        title="Throughput on real-world surrogate workloads vs theta_max",
        parameters={"N_D": scale.num_tasks, "scale": scale.name},
        notes=(
            "Expected shape: Mixed leads on both workloads (best at the tightest "
            "theta_max); PKG (Social only) is theta-insensitive but below Mixed; "
            "Readj only catches up under loose balance requirements; MinTable "
            "loses throughput to its migration volume."
        ),
    )
    social = SocialFeedWorkload(
        num_words=scale.num_keys,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        seed=seed,
    ).take(scale.sim_intervals)
    stock = StockExchangeWorkload(
        tuples_per_interval=scale.tuples_per_interval,
        intervals=scale.sim_intervals,
        seed=seed,
    ).take(scale.sim_intervals)

    social_strategies = ("storm", "readj", "mixed", "pkg", "mintable")
    stock_strategies = ("storm", "readj", "mixed", "mintable")
    for theta in thetas:
        for strategy in social_strategies:
            collector = run_simulation(
                strategy,
                social,
                WordCountOperator(window=scale.window),
                num_tasks=scale.num_tasks,
                theta_max=theta,
                max_table_size=scale.max_table_size,
                window=scale.window,
                seed=seed,
            )
            result.add_row(
                panel="a-social",
                theta_max=theta,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
            )
        for strategy in stock_strategies:
            collector = run_simulation(
                strategy,
                stock,
                WindowedSelfJoin(window=max(scale.window, 2)),
                num_tasks=scale.num_tasks,
                theta_max=theta,
                max_table_size=scale.max_table_size,
                window=max(scale.window, 2),
                seed=seed,
            )
            result.add_row(
                panel="b-stock",
                theta_max=theta,
                strategy=strategy,
                throughput=collector.mean_throughput,
                latency_ms=collector.mean_latency_ms,
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 15 — throughput over time during scale-out
# ---------------------------------------------------------------------------


def fig15_scale_out(
    scale: str | ExperimentScale = "small",
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "pkg", "storm"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 15(a)/(b): throughput over time when one task instance is added."""
    scale = get_scale(scale)
    intervals = max(scale.sim_intervals, 12)
    add_at = intervals // 3
    result = ExperimentResult(
        figure="Fig. 15",
        title="Throughput dynamics during system scale-out (one task added)",
        parameters={
            "N_D": scale.num_tasks,
            "added_at_interval": add_at,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: Mixed re-balances onto the new instance within one "
            "planning round; Readj takes much longer; Storm never uses the new "
            "instance for existing keys."
        ),
    )
    social = SocialFeedWorkload(
        num_words=scale.num_keys,
        tuples_per_interval=scale.tuples_per_interval,
        intervals=intervals,
        seed=seed,
    ).take(intervals)
    stock = StockExchangeWorkload(
        tuples_per_interval=scale.tuples_per_interval,
        intervals=intervals,
        seed=seed,
    ).take(intervals)

    for panel, workload, logic, panel_strategies in (
        ("a-social", social, WordCountOperator(window=scale.window), strategies),
        (
            "b-stock",
            stock,
            WindowedSelfJoin(window=max(scale.window, 2)),
            tuple(s for s in strategies if s != "pkg"),
        ),
    ):
        for theta in thetas:
            for strategy in panel_strategies:
                if strategy in ("storm", "pkg") and theta != thetas[0]:
                    continue  # theta-insensitive strategies: one curve suffices
                collector = run_simulation(
                    strategy,
                    workload,
                    logic,
                    num_tasks=scale.num_tasks,
                    theta_max=theta,
                    max_table_size=scale.max_table_size,
                    window=logic.window,
                    seed=seed,
                    scale_out_at={add_at: scale.num_tasks + 1},
                )
                for record in collector:
                    result.add_row(
                        panel=panel,
                        theta_max=theta,
                        strategy=strategy,
                        interval=record.interval,
                        throughput=record.throughput,
                        rebalanced=record.rebalanced,
                    )
    return result


# ---------------------------------------------------------------------------
# Fig. 16 — continuous TPC-H Q5 throughput over time
# ---------------------------------------------------------------------------


def fig16_tpch_q5(
    scale: str | ExperimentScale = "small",
    *,
    thetas: Sequence[float] = (0.1, 0.2),
    strategies: Sequence[str] = ("mixed", "readj", "storm", "mintable"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 16(a)/(b): throughput of the continuous Q5 pipeline over time."""
    from repro.engine import PipelineSimulator, SimulationConfig
    from repro.experiments.harness import build_partitioner

    scale = get_scale(scale)
    intervals = max(scale.sim_intervals, 12)
    change_every = max(3, intervals // 4)
    dataset = generate_tpch(scale=0.002 if scale.name != "paper" else 0.05, seed=seed)
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=scale.tuples_per_interval // 2,
        intervals=intervals,
        change_every=change_every,
        seed=seed,
    ).take(intervals)

    result = ExperimentResult(
        figure="Fig. 16",
        title="Dynamic adjustment on TPC-H data for continuous Q5",
        parameters={
            "z": 0.8,
            "window": 5,
            "change_every": change_every,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: Mixed recovers quickly after every triggered "
            "distribution change and sustains the best throughput; Storm has no "
            "balancing and stays lowest."
        ),
    )
    q5_window = 5
    for theta in thetas:
        for strategy in strategies:
            def factory(stage_name: str, parallelism: int, _strategy=strategy, _theta=theta):
                return build_partitioner(
                    _strategy,
                    parallelism,
                    theta_max=_theta,
                    max_table_size=scale.max_table_size,
                    window=q5_window,
                    seed=seed,
                )

            topology = build_q5_topology(
                dataset,
                factory,
                parallelism=scale.num_tasks,
                window=q5_window,
            )
            simulator = PipelineSimulator(
                topology, SimulationConfig(capacity_factor=1.1)
            )
            run = simulator.run(workload)
            for record in run.pipeline:
                result.add_row(
                    theta_max=theta,
                    strategy=strategy,
                    interval=record.interval,
                    throughput=record.throughput,
                    latency_ms=record.latency_ms,
                )
    return result


# ---------------------------------------------------------------------------
# Figs. 17-21 — appendix parameter studies
# ---------------------------------------------------------------------------


def fig17_table_cap(
    scale: str | ExperimentScale = "small",
    *,
    cap_exponents: Sequence[int] = (1, 3, 5, 7, 9, 11, 13),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 17: Mixed's migration cost vs the routing table cap ``N_A = 2^i``."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 17",
        title="Migration cost of Mixed under different routing-table caps",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: tight caps force Mixed to behave like MinTable "
            "(high migration cost); relaxing the cap past the needed size drops "
            "the cost sharply, earlier for looser theta_max."
        ),
    )
    workload = _zipf_workload(scale, seed=seed)
    for theta in thetas:
        for exponent in cap_exponents:
            cap = 2 ** exponent
            run = run_planner_sequence(
                "mixed",
                workload,
                num_tasks=scale.num_tasks,
                theta_max=theta,
                max_table_size=cap,
                beta=scale.beta,
                window=scale.window,
                seed=seed,
            )
            result.add_row(
                theta_max=theta,
                cap_exponent=exponent,
                table_cap=cap,
                migration_cost_pct=run.avg_migration_fraction * 100,
                avg_table_size=run.avg_table_size,
            )
    return result


def fig18_table_growth(
    scale: str | ExperimentScale = "small",
    *,
    adjustments: Optional[int] = None,
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 18: MinMig's routing-table size as adjustments accumulate."""
    scale = get_scale(scale)
    adjustments = adjustments if adjustments is not None else max(scale.intervals, 12)
    result = ExperimentResult(
        figure="Fig. 18",
        title="Routing table growth of MinMig along successive adjustments",
        parameters={
            "K": scale.num_keys,
            "adjustments": adjustments,
            "convergence_bound": (scale.num_tasks - 1) / scale.num_tasks * scale.num_keys,
            "scale": scale.name,
        },
        notes=(
            "Expected shape: the table grows fastest for the tightest theta_max and "
            "converges towards (N_D-1)/N_D * K entries because MinMig never cleans."
        ),
    )
    for theta in thetas:
        workload = ZipfWorkload(
            num_keys=scale.num_keys,
            skew=scale.skew,
            tuples_per_interval=scale.tuples_per_interval,
            fluctuation=scale.fluctuation,
            num_tasks=scale.num_tasks,
            intervals=adjustments,
            seed=seed,
        ).take(adjustments)
        run = run_planner_sequence(
            "minmig",
            workload,
            num_tasks=scale.num_tasks,
            theta_max=theta,
            max_table_size=None,
            beta=scale.beta,
            window=scale.window,
            force_every_interval=True,
            seed=seed,
        )
        for adjustment, table_size in enumerate(run.table_sizes, start=1):
            result.add_row(
                theta_max=theta,
                adjustment=adjustment,
                routing_table_size=table_size,
            )
    return result


def fig19_window_size(
    scale: str | ExperimentScale = "small",
    *,
    windows: Sequence[int] = (1, 3, 5, 7, 9, 11, 13, 15),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 19: migration cost vs state window size ``w`` (Mixed vs MinTable)."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 19",
        title="Migration cost with varying window size",
        parameters={"theta_max": scale.theta_max, "K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: larger windows give Mixed more low-cost migration "
            "candidates, so its cost stays below MinTable's at every w."
        ),
    )
    for window in windows:
        workload = _zipf_workload(scale, intervals=max(scale.intervals, window + 3), seed=seed)
        for algorithm in ("mixed", "mintable"):
            run = run_planner_sequence(
                algorithm,
                workload,
                num_tasks=scale.num_tasks,
                theta_max=scale.theta_max,
                max_table_size=scale.max_table_size,
                beta=scale.beta,
                window=window,
                seed=seed,
            )
            result.add_row(
                window=window,
                algorithm=algorithm,
                migration_cost_pct=run.avg_migration_fraction * 100,
            )
    return result


def _beta_sweep(
    scale: ExperimentScale,
    betas: Sequence[float],
    thetas: Sequence[float],
    seed: int,
) -> List[Dict[str, float]]:
    rows: List[Dict[str, float]] = []
    workload = _zipf_workload(scale, seed=seed)
    for theta in thetas:
        for beta in betas:
            run = run_planner_sequence(
                "minmig",
                workload,
                num_tasks=scale.num_tasks,
                theta_max=theta,
                max_table_size=None,
                beta=beta,
                window=scale.window,
                force_every_interval=True,
                seed=seed,
            )
            rows.append(
                {
                    "theta_max": theta,
                    "beta": beta,
                    "routing_table_size": run.avg_table_size,
                    "migration_cost_pct": run.avg_migration_fraction * 100,
                }
            )
    return rows


def fig20_beta_table_size(
    scale: str | ExperimentScale = "small",
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 20: routing-table size vs the γ weight β (MinMig)."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 20",
        title="Routing table size for different beta",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: larger beta prefers heavy keys, so fewer entries are "
            "needed; the size stabilises for beta in [1.5, 2.0]."
        ),
    )
    for row in _beta_sweep(scale, betas, thetas, seed):
        result.add_row(
            theta_max=row["theta_max"],
            beta=row["beta"],
            routing_table_size=row["routing_table_size"],
        )
    return result


def fig21_beta_migration(
    scale: str | ExperimentScale = "small",
    *,
    betas: Sequence[float] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0),
    thetas: Sequence[float] = (0.02, 0.08, 0.15, 0.3),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 21: migration cost vs the γ weight β (MinMig)."""
    scale = get_scale(scale)
    result = ExperimentResult(
        figure="Fig. 21",
        title="Migration cost for different beta",
        parameters={"K": scale.num_keys, "scale": scale.name},
        notes=(
            "Expected shape: migration cost grows with beta (heavier keys carry "
            "more state); tight theta_max pays more at every beta."
        ),
    )
    for row in _beta_sweep(scale, betas, thetas, seed):
        result.add_row(
            theta_max=row["theta_max"],
            beta=row["beta"],
            migration_cost_pct=row["migration_cost_pct"],
        )
    return result


#: Registry used by the benchmark harness and the `examples/reproduce_all.py`
#: script: figure id -> driver.
ALL_FIGURES = {
    "fig07": fig07_hash_skewness,
    "fig08": fig08_vary_task_instances,
    "fig09": fig09_vary_theta,
    "fig10": fig10_vary_key_domain,
    "fig11": fig11_discretization,
    "fig12": fig12_vary_fluctuation,
    "fig13": fig13_throughput_latency,
    "fig14": fig14_real_world_throughput,
    "fig15": fig15_scale_out,
    "fig16": fig16_tpch_q5,
    "fig17": fig17_table_cap,
    "fig18": fig18_table_growth,
    "fig19": fig19_window_size,
    "fig20": fig20_beta_table_size,
    "fig21": fig21_beta_migration,
}
